#!/usr/bin/env python
"""Quickstart: train FedHiSyn on a Non-IID synthetic MNIST-role task and
compare it with FedAvg — as a two-cell campaign.

Run:  python examples/quickstart.py
"""

from repro import ExperimentSpec
from repro.campaign import Campaign, sweep


def main() -> None:
    # One config object describes the whole experiment: dataset, partition,
    # device fleet, model and algorithm.
    spec = ExperimentSpec(
        method="fedhisyn",
        dataset="mnist_like",          # synthetic MNIST stand-in (10 classes)
        num_samples=2000,
        num_devices=20,                # the paper uses 100; scaled for CPU
        partition="dirichlet",         # the paper's Non-IID setting
        beta=0.3,                      # smaller beta = more label skew
        units_low=1, units_high=10,    # heterogeneity: [5, 50] epochs/round
        rounds=12,
        local_epochs=1,                # epochs per ring hop (paper: 5)
        lr=0.1,
        batch_size=50,
    )

    # A sweep expands a grid of field overrides into concrete specs; the
    # same seed means the two methods see the identical dataset, split,
    # heterogeneity draw and model init — differences are algorithmic.
    specs = sweep(
        spec,
        {"method": ["fedhisyn", "fedavg"]},
        method_kwargs={"fedhisyn": {"num_classes": 5}},  # K capacity clusters
    )
    result = Campaign(specs).run(progress=print)

    target = 0.90
    print()
    print(result.to_table(target=target, title="fedhisyn vs fedavg"))
    print(
        "\ncost@target = server model-transfers to reach the target accuracy,"
        "\nrelative to one FedAvg round (the paper's Table 1 metric)."
    )


if __name__ == "__main__":
    main()
