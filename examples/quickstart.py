#!/usr/bin/env python
"""Quickstart: train FedHiSyn on a Non-IID synthetic MNIST-role task and
compare it with FedAvg.

Run:  python examples/quickstart.py
"""

from repro import ExperimentSpec, run_experiment
from repro.utils.logging import RunLogger


def main() -> None:
    # One config object describes the whole experiment: dataset, partition,
    # device fleet, model and algorithm.
    spec = ExperimentSpec(
        method="fedhisyn",
        dataset="mnist_like",          # synthetic MNIST stand-in (10 classes)
        num_samples=2000,
        num_devices=20,                # the paper uses 100; scaled for CPU
        partition="dirichlet",         # the paper's Non-IID setting
        beta=0.3,                      # smaller beta = more label skew
        units_low=1, units_high=10,    # heterogeneity: [5, 50] epochs/round
        rounds=12,
        local_epochs=1,                # epochs per ring hop (paper: 5)
        lr=0.1,
        batch_size=50,
        method_kwargs={"num_classes": 5},  # K capacity clusters
    )

    print("Training FedHiSyn ...")
    logger = RunLogger("fedhisyn", verbose=True)
    fedhisyn = run_experiment(spec, logger=logger)

    print("\nTraining FedAvg on the identical setup ...")
    fedavg = run_experiment(spec.with_method("fedavg"))

    target = 0.90
    print(f"\n{'':14s}{'final acc':>10s}{'best acc':>10s}{'cost@'+format(target, '.0%'):>12s}")
    for res in (fedhisyn, fedavg):
        cost = res.cost_to_target(target)
        print(
            f"{res.method:14s}{res.final_accuracy:>10.3f}{res.best_accuracy:>10.3f}"
            f"{'X' if cost is None else format(cost, '.1f'):>12s}"
        )
    print(
        "\ncost@target = server model-transfers to reach the target accuracy,"
        "\nrelative to one FedAvg round (the paper's Table 1 metric)."
    )


if __name__ == "__main__":
    main()
