#!/usr/bin/env python
"""Straggler study: how resource heterogeneity affects each FL family.

Sweeps the heterogeneity ratio H = l_max / l_min (Eq. 13 of the paper) and
compares a strictly synchronous method (TFedAvg — pays the full straggler
penalty), a fully asynchronous one (TAFedAvg — never waits but trains on
stale models), and FedHiSyn (clusters same-speed devices so nobody waits
and nothing goes stale).

The whole study is one campaign: a 4x3 grid over het_ratio x method,
expanded by ``sweep`` and executed (optionally in parallel — pass a worker
count as argv[1]) with every run cached under ``.repro-cache``, so
re-running the script after an interruption only pays for missing cells.

Run:  python examples/straggler_study.py [workers]
"""

import sys

from repro import ExperimentSpec
from repro.campaign import Campaign, sweep

METHODS = ["fedhisyn", "tfedavg", "tafedavg"]


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    base = ExperimentSpec(
        method="fedhisyn",
        dataset="cifar10_like",
        num_samples=1500,
        num_devices=20,
        partition="dirichlet",
        beta=0.3,
        rounds=12,
        local_epochs=1,
        model_family="mlp",
    )
    specs = sweep(
        base,
        {"het_ratio": [2.0, 5.0, 10.0, 20.0], "method": METHODS},
        method_kwargs={"fedhisyn": {"num_classes": 5}},
    )
    result = Campaign(specs, cache_dir=".repro-cache").run(
        workers=workers, progress=print
    )

    print()
    print(result.to_table(title="final accuracy on cifar10_like, "
                                "Dirichlet(0.3), 20 devices"))
    print(
        "\nReading: as H grows, the synchronous baseline stalls (every round"
        "\nas slow as the slowest device, one unit of work each), while"
        "\nFedHiSyn converts the fast devices' idle time into ring hops."
    )


if __name__ == "__main__":
    main()
