#!/usr/bin/env python
"""Straggler study: how resource heterogeneity affects each FL family.

Sweeps the heterogeneity ratio H = l_max / l_min (Eq. 13 of the paper) and
compares a strictly synchronous method (TFedAvg — pays the full straggler
penalty), a fully asynchronous one (TAFedAvg — never waits but trains on
stale models), and FedHiSyn (clusters same-speed devices so nobody waits
and nothing goes stale).

Run:  python examples/straggler_study.py
"""

from repro import ExperimentSpec, run_experiment

METHODS = ("fedhisyn", "tfedavg", "tafedavg")


def main() -> None:
    print("Final accuracy on cifar10_like, Dirichlet(0.3), 20 devices:\n")
    header = f"{'H':>4s}" + "".join(f"{m:>12s}" for m in METHODS)
    print(header)
    print("-" * len(header))
    for h in (2, 5, 10, 20):
        row = f"{h:>4d}"
        for method in METHODS:
            spec = ExperimentSpec(
                method=method,
                dataset="cifar10_like",
                num_samples=1500,
                num_devices=20,
                partition="dirichlet",
                beta=0.3,
                het_ratio=float(h),
                rounds=12,
                local_epochs=1,
                model_family="mlp",
                method_kwargs={"num_classes": 5} if method == "fedhisyn" else {},
            )
            result = run_experiment(spec)
            row += f"{result.final_accuracy:>12.3f}"
        print(row)
    print(
        "\nReading: as H grows, the synchronous baseline stalls (every round"
        "\nas slow as the slowest device, one unit of work each), while"
        "\nFedHiSyn converts the fast devices' idle time into ring hops."
    )


if __name__ == "__main__":
    main()
