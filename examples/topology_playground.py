#!/usr/bin/env python
"""Topology playground: the low-level API behind FedHiSyn.

Builds a device fleet by hand, clusters it, constructs rings, runs one
event-driven ring round, and inspects what each device's model saw —
useful for understanding (and extending) the framework internals.

Run:  python examples/topology_playground.py
"""

import numpy as np

from repro.core.clustering import cluster_by_capacity
from repro.core.ring import build_rings
from repro.datasets import dirichlet_partition, make_dataset, train_test_split
from repro.device import LocalTrainer, make_devices, unit_times_from_counts
from repro.device.heterogeneity import heterogeneity_ratio, sample_unit_counts
from repro.experiments import build_model
from repro.nn.serialization import get_flat_params, set_flat_params
from repro.simulation.engine import RingRoundEngine


def main() -> None:
    # --- substrate -------------------------------------------------------
    ds = make_dataset("mnist_like", num_samples=1200, seed=0)
    train_set, test_set = train_test_split(ds, 0.2, seed=1)
    parts = dirichlet_partition(train_set, 12, beta=0.3, seed=2)
    model = build_model(test_set, "mlp", "small", seed=3)
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=4)

    counts = sample_unit_counts(12, 1, 10, seed=5)  # units per round
    unit_times = unit_times_from_counts(counts)
    devices = make_devices(train_set, parts, unit_times, trainer)
    print(f"fleet of {len(devices)} devices, H = "
          f"{heterogeneity_ratio(unit_times):.1f}")

    # --- the server's per-round steps, spelled out ------------------------
    ids = [d.device_id for d in devices]
    classes = cluster_by_capacity(unit_times, k=3)
    print("\ncapacity classes (fastest first):")
    for i, cls in enumerate(classes):
        print(f"  class {i}: devices {[ids[j] for j in cls]}, "
              f"unit times {np.round(unit_times[cls], 2).tolist()}")

    rings = build_rings(classes, ids, unit_times, order="small_to_large")
    print(f"\nrings: {rings}")

    engine = RingRoundEngine(devices, epochs_per_unit=1)
    w0 = get_flat_params(model)
    duration = float(unit_times.max())
    stats = engine.run_round(rings, w0, duration, round_idx=0)

    print(f"\nround of duration {duration:.2f}:")
    print(f"  peer model hops: {stats.peer_sends}")
    for dev in devices:
        units = stats.units_completed[dev.device_id]
        set_flat_params(model, dev.weights)
        acc = model.accuracy(test_set.x, test_set.y)
        print(f"  device {dev.device_id:2d}: {units:2d} units "
              f"(t={dev.unit_time:.2f}) -> upload accuracy {acc:.3f}")

    agg = np.stack([d.weights for d in devices]).mean(axis=0)
    set_flat_params(model, agg)
    print(f"\naggregated global model accuracy after one round: "
          f"{model.accuracy(test_set.x, test_set.y):.3f}")


if __name__ == "__main__":
    main()
