#!/usr/bin/env python
"""Non-IID study: label skew, the Eq. (4) divergence, and what ring
communication buys back.

For a range of Dirichlet concentrations beta this script reports

* the label divergence D of Eq. (4) across device shards,
* mean per-device model accuracy with and without ring communication
  (the paper's Observation 1 / Figure 2 proxy), and
* FedHiSyn vs FedAvg final accuracy under the same split.

Run:  python examples/noniid_study.py
"""

import numpy as np

from repro.analysis.divergence import label_divergence
from repro.analysis.observations import communication_mode_experiment
from repro.campaign import Campaign, sweep
from repro.datasets import dirichlet_partition, label_distribution, make_dataset, train_test_split
from repro.device import LocalTrainer, make_devices
from repro.experiments import ExperimentSpec, build_model
from repro.nn.serialization import get_flat_params

BETAS = (100.0, 0.8, 0.3, 0.1)


def main() -> None:
    num_devices = 16
    ds = make_dataset("cifar10_like", num_samples=1500, seed=0)
    train_set, test_set = train_test_split(ds, 0.2, seed=1)

    # Full frameworks under the same split statistics, as one campaign:
    # a beta x method grid sharing every other knob.
    base = ExperimentSpec(
        method="fedavg", dataset="cifar10_like", num_samples=1500,
        num_devices=num_devices, partition="dirichlet",
        rounds=10, local_epochs=1, model_family="mlp", seed=5,
    )
    specs = sweep(base, {"beta": list(BETAS), "method": ["fedavg", "fedhisyn"]},
                  method_kwargs={"fedhisyn": {"num_classes": 4}})
    campaign = Campaign(specs).run()
    final = {(e.spec.beta, e.spec.method): e.result.final_accuracy
             for e in campaign}

    print(f"{'beta':>6s}{'Eq.4 D':>9s}{'no-comm':>9s}{'ring':>9s}"
          f"{'fedavg':>9s}{'fedhisyn':>10s}")
    for beta in BETAS:
        parts = dirichlet_partition(train_set, num_devices, beta=beta, seed=2)
        div = label_divergence(label_distribution(train_set, parts))

        # Observation 1: decentralized device accuracy with/without ring.
        model = build_model(test_set, "mlp", "small", seed=3)
        trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=4)
        devices = make_devices(train_set, parts, np.ones(num_devices), trainer)
        w0 = get_flat_params(model)
        none = communication_mode_experiment(
            "none", devices, test_set, w0, rounds=10)
        ring = communication_mode_experiment(
            "ring", devices, test_set, w0, rounds=10)

        print(f"{beta:>6.1f}{div:>9.2f}{none.final:>9.3f}{ring.final:>9.3f}"
              f"{final[(beta, 'fedavg')]:>9.3f}{final[(beta, 'fedhisyn')]:>10.3f}")

    print(
        "\nReading: as beta falls, shards drift from the global label"
        "\ndistribution (D grows) and isolated training collapses; ring"
        "\ncommunication recovers most of the loss, and the full framework"
        "\n(ring + periodic server sync) recovers the rest."
    )


if __name__ == "__main__":
    main()
