#!/usr/bin/env python
"""Environment study: how the world outside the algorithm changes the race.

The paper evaluates every method in an ideal world — instant lossless
links, always-on devices.  This study re-runs the headline comparison
(FedHiSyn vs synchronous and asynchronous FedAvg) across the environment
presets of :mod:`repro.env`: the paper's ``ideal``, a lossy ``wan``, and
a ``flaky_mobile`` fleet where slow devices churn out of rounds and 5% of
messages vanish.  Because `env` is an ordinary :class:`ExperimentSpec`
field, the whole study is one campaign grid.

Two things to watch in the output:

* **virtual time** — non-ideal networks charge transfer time into the
  round clock, so the same 12 rounds take longer on the wall clock;
* **robustness** — FedHiSyn's ring keeps training through lost messages
  (a lost hop just means the successor continues its own model, Eq. 7),
  while a synchronous round simply loses the affected participants.

Run:  python examples/environment_study.py [workers]
"""

import sys

from repro import ExperimentSpec
from repro.campaign import Campaign, sweep

ENVS = ["ideal", "wan", "flaky_mobile"]
METHODS = ["fedhisyn", "tfedavg", "tafedavg"]


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    base = ExperimentSpec(
        method="fedhisyn",
        dataset="mnist_like",
        num_samples=1500,
        num_devices=20,
        partition="dirichlet",
        beta=0.3,
        rounds=12,
        local_epochs=1,
    )
    specs = sweep(
        base,
        {"env": ENVS, "method": METHODS},
        method_kwargs={"fedhisyn": {"num_classes": 5}},
    )
    result = Campaign(specs, cache_dir=".repro-cache").run(
        workers=workers, progress=print
    )

    print()
    print(result.to_table(title="final accuracy by environment, "
                                "mnist_like, Dirichlet(0.3), 20 devices"))

    # Virtual-time cost of the same 12 rounds per environment.
    print("\nvirtual time of 12 rounds (fedhisyn):")
    for entry in result:
        if entry.spec.method == "fedhisyn":
            t = entry.result.history.times[-1]
            print(f"  {entry.spec.env:<13} {t:8.2f}")


if __name__ == "__main__":
    main()
