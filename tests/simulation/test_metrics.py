"""Tests for transmission metering and metrics history."""

import numpy as np
import pytest

from repro.simulation.metrics import MetricsHistory, TransmissionMeter


class TestTransmissionMeter:
    def test_counts_accumulate(self):
        m = TransmissionMeter()
        m.record_download(3)
        m.record_upload(2)
        m.record_peer(7)
        assert m.server_down == 3
        assert m.server_up == 2
        assert m.peer == 7
        assert m.server_total == 5

    def test_model_units_scaling(self):
        m = TransmissionMeter()
        m.record_upload(4, model_units=2.0)  # SCAFFOLD-style
        assert m.server_up == 8.0

    def test_negative_raises(self):
        m = TransmissionMeter()
        with pytest.raises(ValueError):
            m.record_download(-1)
        with pytest.raises(ValueError):
            m.record_upload(1, model_units=-0.5)

    def test_snapshot(self):
        m = TransmissionMeter()
        m.record_download(1)
        snap = m.snapshot()
        assert snap["server_total"] == 1.0
        assert snap["peer"] == 0.0


class TestMetricsHistory:
    def make_history(self):
        h = MetricsHistory()
        h.record(1, 1.0, 10.0, 0.3)
        h.record(2, 2.0, 20.0, 0.55)
        h.record(3, 3.0, 30.0, 0.5)
        h.record(4, 4.0, 40.0, 0.7)
        return h

    def test_final_and_best(self):
        h = self.make_history()
        assert h.final_accuracy == 0.7
        assert h.best_accuracy == 0.7
        h2 = MetricsHistory()
        h2.record(1, 1.0, 1.0, 0.9)
        h2.record(2, 2.0, 2.0, 0.4)
        assert h2.best_accuracy == 0.9

    def test_rounds_to_target(self):
        h = self.make_history()
        assert h.rounds_to_target(0.5) == 2
        assert h.rounds_to_target(0.69) == 4
        assert h.rounds_to_target(0.9) is None

    def test_transfers_to_target(self):
        h = self.make_history()
        assert h.transfers_to_target(0.5) == 20.0
        assert h.transfers_to_target(0.99) is None

    def test_relative_cost(self):
        h = self.make_history()
        assert h.relative_cost_to_target(0.5, per_round_unit=10.0) == 2.0
        assert h.relative_cost_to_target(0.99, per_round_unit=10.0) is None

    def test_relative_cost_bad_unit_raises(self):
        with pytest.raises(ValueError):
            self.make_history().relative_cost_to_target(0.5, 0.0)

    def test_monotone_round_enforced(self):
        h = MetricsHistory()
        h.record(2, 1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            h.record(2, 2.0, 2.0, 0.2)

    def test_monotone_transfers_enforced(self):
        h = MetricsHistory()
        h.record(1, 1.0, 5.0, 0.1)
        with pytest.raises(ValueError):
            h.record(2, 2.0, 4.0, 0.2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MetricsHistory().final_accuracy

    def test_as_arrays(self):
        arrays = self.make_history().as_arrays()
        np.testing.assert_array_equal(arrays["rounds"], [1, 2, 3, 4])
        assert arrays["accuracies"].dtype == np.float64


class TestTimeCheckpoints:
    def make_history(self):
        h = MetricsHistory()
        h.record(1, 2.0, 10.0, 0.4)
        h.record(2, 4.0, 20.0, 0.7)
        h.record_time_checkpoint(0.5, 5.0, 0.2)
        h.record_time_checkpoint(1.5, 5.0, 0.55)
        h.record_time_checkpoint(3.0, 15.0, 0.6)
        return h

    def test_checkpoint_series_recorded(self):
        h = self.make_history()
        assert h.checkpoint_times == [0.5, 1.5, 3.0]
        assert h.checkpoint_accuracies == [0.2, 0.55, 0.6]

    def test_equal_checkpoint_times_allowed(self):
        """Several checkpoints can mature inside one synchronous round's
        clock jump and share its evaluation time."""
        h = MetricsHistory()
        h.record_time_checkpoint(1.0, 1.0, 0.1)
        h.record_time_checkpoint(1.0, 1.0, 0.1)
        assert h.checkpoint_times == [1.0, 1.0]

    def test_decreasing_checkpoint_time_raises(self):
        h = self.make_history()
        with pytest.raises(ValueError):
            h.record_time_checkpoint(2.0, 20.0, 0.8)

    def test_decreasing_checkpoint_transfers_raises(self):
        h = self.make_history()
        with pytest.raises(ValueError):
            h.record_time_checkpoint(5.0, 1.0, 0.8)

    def test_time_to_target_merges_both_series(self):
        h = self.make_history()
        # 0.55 first appears in the checkpoint series at t=1.5, earlier
        # than the round series' 0.7 at t=4.0.
        assert h.time_to_target(0.5) == 1.5
        # 0.65 is only ever reached by the round series (t=4.0).
        assert h.time_to_target(0.65) == 4.0
        assert h.time_to_target(0.95) is None

    def test_time_to_target_empty_history(self):
        assert MetricsHistory().time_to_target(0.1) is None

    def test_round_trip_preserves_checkpoints(self):
        h = self.make_history()
        restored = MetricsHistory.from_dict(h.to_dict())
        assert restored.to_dict() == h.to_dict()

    def test_from_dict_tolerates_legacy_payloads(self):
        """Payloads written before the checkpoint series existed (old
        campaign caches, pre-refactor goldens) must still load."""
        d = self.make_history().to_dict()
        for key in list(d):
            if key.startswith("checkpoint_"):
                del d[key]
        restored = MetricsHistory.from_dict(d)
        assert restored.checkpoint_times == []
        assert restored.rounds == [1, 2]
