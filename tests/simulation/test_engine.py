"""Ring-engine semantics tests.

A ``LineageTrainer`` replaces SGD with ``w += e_{device}`` so the final
weight vector literally counts which devices trained each model — making
Algorithm 1's choreography (rotation, budgets, delays, Eq. 7 fallback)
directly assertable.
"""

import numpy as np
import pytest

from repro.datasets.core import ClassificationDataset
from repro.device.device import Device
from repro.device.network import UniformDelay
from repro.simulation.engine import RingRoundEngine, async_upload_schedule


class LineageTrainer:
    """Fake LocalTrainer: training by device d adds one to coordinate d."""

    def __init__(self, dim: int) -> None:
        self.dim = dim

    def train(self, weights, shard, epochs, stream_key=(0,), **kwargs):
        device_id = stream_key[0]
        out = np.asarray(weights, dtype=float).copy()
        out[device_id] += 1.0
        return out, epochs


def make_fleet(unit_times, dim=None):
    dim = dim if dim is not None else len(unit_times)
    trainer = LineageTrainer(dim)
    shard = ClassificationDataset(np.zeros((2, 1)), np.zeros(2, dtype=int), 1)
    return [
        Device(i, shard, float(t), trainer) for i, t in enumerate(unit_times)
    ]


class TestRingRotation:
    def test_homogeneous_three_ring_full_rotation(self):
        """3 devices, t=1, duration=3: every final model was trained once by
        each device (the model walked the whole ring)."""
        devices = make_fleet([1.0, 1.0, 1.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        stats = engine.run_round([[0, 1, 2]], np.zeros(3), duration=3.0)
        assert stats.units_completed == {0: 3, 1: 3, 2: 3}
        for d in devices:
            np.testing.assert_allclose(sorted(d.weights), [1.0, 1.0, 1.0])

    def test_two_units_partial_rotation(self):
        """Duration 2: each model saw its own device and its predecessor."""
        devices = make_fleet([1.0, 1.0, 1.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        engine.run_round([[0, 1, 2]], np.zeros(3), duration=2.0)
        # device 1's model: trained by 0 (unit 1) then by 1 (unit 2).
        np.testing.assert_allclose(devices[1].weights, [1.0, 1.0, 0.0])
        np.testing.assert_allclose(devices[0].weights, [1.0, 0.0, 1.0])

    def test_singleton_ring_trains_alone(self):
        """Eq. (7): no incoming models -> keep training the own model."""
        devices = make_fleet([0.25])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        stats = engine.run_round([[0]], np.zeros(1), duration=1.0)
        assert stats.peer_sends == 0
        np.testing.assert_allclose(devices[0].weights, [4.0])

    def test_large_delay_isolates_devices(self):
        """Deliveries landing after the round end never get trained: every
        device keeps training its own line (Eq. 7 fallback)."""
        devices = make_fleet([1.0, 1.0])
        engine = RingRoundEngine(devices, delay_model=UniformDelay(100.0),
                                 epochs_per_unit=1)
        engine.run_round([[0, 1]], np.zeros(2), duration=3.0)
        np.testing.assert_allclose(devices[0].weights, [3.0, 0.0])
        np.testing.assert_allclose(devices[1].weights, [0.0, 3.0])


class TestUnitBudgets:
    def test_floor_of_duration_over_time(self):
        devices = make_fleet([1.0, 0.5, 0.25])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        stats = engine.run_round([[0], [1], [2]], np.zeros(3), duration=1.0)
        assert stats.units_completed == {0: 1, 1: 2, 2: 4}

    def test_minimum_one_unit_for_straggler(self):
        """A device slower than the round still completes one unit
        (Algorithm 1 line 11 always enters the loop)."""
        devices = make_fleet([5.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        stats = engine.run_round([[0]], np.zeros(1), duration=1.0)
        assert stats.units_completed == {0: 1}
        assert stats.end_time == 5.0

    def test_peer_sends_equals_units_in_multi_rings(self):
        devices = make_fleet([1.0, 1.0, 0.5, 0.5])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        stats = engine.run_round([[0, 1], [2, 3]], np.zeros(4), duration=1.0)
        # ring sizes > 1: every completed unit sends once.
        assert stats.peer_sends == sum(stats.units_completed.values())


class TestEngineValidation:
    def test_duplicate_device_raises(self):
        devices = make_fleet([1.0, 1.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        with pytest.raises(ValueError):
            engine.run_round([[0, 1], [0]], np.zeros(2), duration=1.0)

    def test_nonpositive_duration_raises(self):
        devices = make_fleet([1.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        with pytest.raises(ValueError):
            engine.run_round([[0]], np.zeros(1), duration=0.0)

    def test_bad_combine_raises(self):
        with pytest.raises(ValueError):
            RingRoundEngine(make_fleet([1.0]), combine="sum")

    def test_bad_epochs_raises(self):
        with pytest.raises(ValueError):
            RingRoundEngine(make_fleet([1.0]), epochs_per_unit=0)


class TestCombineModes:
    def test_average_mode_differs_from_direct(self):
        """Fig. 2 ablation: averaging the received model with the own model
        yields a different (blended) lineage."""
        for mode in ("direct", "average"):
            devices = make_fleet([1.0, 1.0])
            engine = RingRoundEngine(devices, epochs_per_unit=1, combine=mode)
            engine.run_round([[0, 1]], np.zeros(2), duration=2.0)
            if mode == "direct":
                direct = devices[0].weights.copy()
            else:
                averaged = devices[0].weights.copy()
        assert not np.allclose(direct, averaged)
        # direct: trained by 1 then 0 -> [1, 1]
        np.testing.assert_allclose(direct, [1.0, 1.0])
        # average: 0.5*(recv + own) + e_0 -> [1.5, 0.5]
        np.testing.assert_allclose(averaged, [1.5, 0.5])


class TestAsyncUploadSchedule:
    def test_counts_per_device(self):
        sched = async_upload_schedule({0: 1.0, 1: 0.5}, horizon=1.0)
        by_dev = {}
        for t, d in sched:
            by_dev.setdefault(d, []).append(t)
        assert by_dev[0] == [1.0]
        assert by_dev[1] == [0.5, 1.0]

    def test_sorted_by_time(self):
        sched = async_upload_schedule({0: 0.3, 1: 0.4, 2: 0.9}, horizon=1.0)
        times = [t for t, _ in sched]
        assert times == sorted(times)

    def test_straggler_gets_one_upload(self):
        sched = async_upload_schedule({0: 5.0}, horizon=1.0)
        assert sched == [(5.0, 0)]

    def test_sequence_input(self):
        sched = async_upload_schedule([1.0, 1.0], horizon=1.0)
        assert {d for _, d in sched} == {0, 1}

    def test_empty(self):
        assert async_upload_schedule({}, horizon=1.0) == []

    def test_bad_horizon_raises(self):
        with pytest.raises(ValueError):
            async_upload_schedule({0: 1.0}, horizon=0.0)

    def test_bad_unit_time_raises(self):
        with pytest.raises(ValueError):
            async_upload_schedule({0: 0.0}, horizon=1.0)
