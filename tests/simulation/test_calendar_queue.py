"""Property tests pinning the CalendarQueue to the heap reference.

The calendar queue's only contract is *exact* dispatch-order equality
with :class:`~repro.simulation.events.EventQueue` — bucket width, wheel
size and overflow handling are performance details that must never be
observable.  These tests drive both engines through identical random
schedules (pushes, lagged pushes, cancels, batched events, interleaved
pops, ``finish_at`` horizons) and compare element for element.
"""

import numpy as np
import pytest

from repro.simulation.events import (
    ENGINES,
    CalendarQueue,
    EventQueue,
    make_queue,
)
from repro.simulation.scheduler import (
    DEFAULT_ENGINE,
    UNIT_COMPLETE,
    Scheduler,
)


def drain(queue):
    out = []
    while queue:
        ev = queue.pop()
        out.append((ev.time, ev.seq, ev.kind, ev.payload))
    return out


class TestQueueBasics:
    def test_make_queue_dispatch(self):
        assert isinstance(make_queue("calendar"), CalendarQueue)
        assert isinstance(make_queue("heap"), EventQueue)
        with pytest.raises(ValueError):
            make_queue("btree")
        assert DEFAULT_ENGINE in ENGINES

    def test_negative_time_rejected(self):
        for engine in ENGINES:
            with pytest.raises(ValueError):
                make_queue(engine).push(-0.1, "k")

    def test_empty_pop_and_peek_raise(self):
        q = CalendarQueue()
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()
        # ...also after the wheel has been initialized and drained.
        q.push(1.0, "k")
        q.pop()
        with pytest.raises(IndexError):
            q.pop()

    def test_len_spans_all_tiers(self):
        q = CalendarQueue(num_buckets=4)
        for t in (5.0, 0.25, 1000.0, 0.5):
            q.push(t, "k")
        assert len(q) == 4
        q.peek()  # forces width init + tier routing
        q.push(0.0, "lagged")  # front tier
        q.push(2000.0, "far")  # overflow tier
        assert len(q) == 6
        assert [q.pop().time for _ in range(6)] == [
            0.0, 0.25, 0.5, 5.0, 1000.0, 2000.0,
        ]
        assert not q

    def test_bad_bucket_count(self):
        with pytest.raises(ValueError):
            CalendarQueue(num_buckets=0)

    def test_same_time_ties_break_by_insertion(self):
        q = CalendarQueue()
        for payload in range(20):
            q.push(1.0, "k", payload)
        assert [q.pop().payload for _ in range(20)] == list(range(20))


class TestOrderEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules_match_heap(self, seed):
        """Pure pushes at random times (clustered, uniform, identical,
        degenerate spans) drain identically from both engines."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        style = seed % 4
        if style == 0:
            times = rng.uniform(0, 100, n)
        elif style == 1:
            times = rng.choice([0.5, 1.0, 2.5], n)  # heavy ties
        elif style == 2:
            times = rng.exponential(0.01, n)  # tiny span
        else:
            times = np.concatenate(
                [rng.uniform(0, 1, n // 2 + 1), rng.uniform(1e4, 1e6, n // 2)]
            )[:n]  # bimodal: wheel + deep overflow
        heap, cal = EventQueue(), CalendarQueue(num_buckets=16)
        for i, t in enumerate(times):
            heap.push(float(t), "k", i)
            cal.push(float(t), "k", i)
        assert drain(cal) == drain(heap)

    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_push_pop_cancel(self, seed):
        """Random interleaving of pushes (including lagged pushes at or
        before the last popped time), pops and cancels stays element-for-
        element identical — the full protocol the Scheduler exercises."""
        rng = np.random.default_rng(100 + seed)
        heap, cal = EventQueue(), CalendarQueue(num_buckets=8)
        handles = []  # parallel (heap_ev, cal_ev) pairs
        popped = []
        last_time = 0.0
        for step in range(600):
            op = rng.random()
            if op < 0.55:
                # Push; 1 in 5 is lagged (at or before the current front).
                if rng.random() < 0.2:
                    t = max(0.0, last_time - float(rng.exponential(1.0)))
                else:
                    t = last_time + float(rng.exponential(2.0))
                handles.append(
                    (heap.push(t, "k", step), cal.push(t, "k", step))
                )
            elif op < 0.8 and heap:
                h, c = heap.pop(), cal.pop()
                assert (h.time, h.seq, h.payload) == (c.time, c.seq, c.payload)
                last_time = h.time
                popped.append(h.seq)
            elif handles:
                h, c = handles[int(rng.integers(len(handles)))]
                h.cancelled = True
                c.cancelled = True
        # Cancellation is lazy (scheduler-level): both engines still hold
        # the cancelled entries, in the same order.
        tail_heap = [e for e in drain(heap) if True]
        tail_cal = [e for e in drain(cal) if True]
        assert tail_cal == tail_heap

    @pytest.mark.parametrize("seed", range(6))
    def test_scheduler_dispatch_trace_matches(self, seed):
        """Two Schedulers on different engines, fed the same random mix of
        at/at_many/after/cancel from inside handlers, dispatch the same
        (time, kind, payload) sequence and agree on every counter —
        including under a finish_at horizon."""
        rng_seed = 200 + seed

        def run(engine):
            rng = np.random.default_rng(rng_seed)
            sched = Scheduler(engine=engine)
            seen = []
            cancellable = []

            def handler(ev):
                payload = ev.payload
                if isinstance(payload, np.ndarray):
                    seen.append((ev.time, ev.kind, payload.tolist()))
                else:
                    seen.append((ev.time, ev.kind, payload))
                draw = rng.random()
                if draw < 0.35:
                    cancellable.append(
                        sched.at(
                            ev.time + float(rng.exponential(1.0)),
                            UNIT_COMPLETE,
                            int(rng.integers(100)),
                        )
                    )
                elif draw < 0.5:
                    ids = rng.integers(0, 100, int(rng.integers(1, 6)))
                    sched.at_many(
                        ev.time + float(rng.exponential(1.0)),
                        UNIT_COMPLETE,
                        ids.astype(np.int32),
                    )
                elif draw < 0.6 and cancellable:
                    sched.cancel(
                        cancellable.pop(int(rng.integers(len(cancellable))))
                    )

            sched.on(UNIT_COMPLETE, handler)
            for i in range(40):
                sched.at(float(rng.uniform(0, 10)), UNIT_COMPLETE, i)
            if seed % 2:
                sched.finish_at(12.0)
            sched.run(max_events=500)
            return seen, sched.events_processed, sched.pending(), sched.now

        assert run("calendar") == run("heap")


class TestBatchedEvents:
    def test_at_many_counts_members(self):
        sched = Scheduler()
        ev = sched.at_many(1.0, UNIT_COMPLETE, np.arange(5))
        assert ev.members == 5
        assert sched.pending() == 5
        assert sched.pending(UNIT_COMPLETE) == 5
        assert bool(sched)
        sched.step()
        assert sched.events_processed == 5
        assert sched.pending() == 0
        assert not sched

    def test_at_many_payload_dtype_and_validation(self):
        sched = Scheduler()
        ev = sched.at_many(1.0, UNIT_COMPLETE, np.array([3, 1, 2], dtype=np.intp))
        assert ev.payload.dtype == np.int32
        with pytest.raises(ValueError):
            sched.at_many(1.0, UNIT_COMPLETE, np.empty(0, dtype=np.int32))
        with pytest.raises(ValueError):
            sched.at_many(1.0, UNIT_COMPLETE, np.zeros((2, 2), dtype=np.int32))

    def test_at_many_composite_payload(self):
        """A composite payload rides the entry while members still come
        from the id array's length."""
        sched = Scheduler()
        ids = np.array([7, 8], dtype=np.int32)
        ev = sched.at_many(1.0, UNIT_COMPLETE, ids, payload=(ids, ["a", "b"]))
        assert ev.members == 2
        assert ev.payload[1] == ["a", "b"]
        assert sched.pending(UNIT_COMPLETE) == 2

    def test_cancel_batched_restores_member_count(self):
        sched = Scheduler()
        ev = sched.at_many(1.0, UNIT_COMPLETE, np.arange(4))
        sched.at(2.0, UNIT_COMPLETE, 9)
        sched.cancel(ev)
        assert sched.pending() == 1
        assert sched.pending_except(UNIT_COMPLETE) == 0

    def test_trace_tag_fingerprints_id_arrays(self):
        """Satellite fix: ndarray payloads used to fingerprint as None,
        hiding batched membership from determinism traces."""
        sched = Scheduler(record_trace=True)
        sched.at_many(1.0, UNIT_COMPLETE, np.array([4, 5, 6]))
        sched.at(2.0, UNIT_COMPLETE, 7)
        sched.run()
        assert sched.trace == [
            (1.0, UNIT_COMPLETE, (3, 4, 6)),
            (2.0, UNIT_COMPLETE, 7),
        ]

    def test_trace_tag_composite_batched_payload(self):
        sched = Scheduler(record_trace=True)
        ids = np.array([1, 2], dtype=np.int32)
        sched.at_many(1.0, UNIT_COMPLETE, ids, payload=(ids, ["x", "y"]))
        sched.run()
        assert sched.trace == [(1.0, UNIT_COMPLETE, (2, 1, 2))]
