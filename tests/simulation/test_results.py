"""Tests for RunResult."""

import numpy as np

from repro.simulation.metrics import MetricsHistory
from repro.simulation.results import RunResult


def make_result(accs=(0.3, 0.6, 0.8), transfers=(10.0, 20.0, 30.0)):
    h = MetricsHistory()
    for i, (a, t) in enumerate(zip(accs, transfers), start=1):
        h.record(i, float(i), t, a)
    return RunResult(
        method="m", dataset="d", history=h,
        final_weights=np.zeros(3), per_round_unit=10.0,
    )


class TestRunResult:
    def test_final_and_best(self):
        r = make_result()
        assert r.final_accuracy == 0.8
        assert r.best_accuracy == 0.8

    def test_cost_to_target(self):
        r = make_result()
        assert r.cost_to_target(0.6) == 2.0  # 20 transfers / 10 per round
        assert r.cost_to_target(0.95) is None

    def test_table_cell_reached(self):
        assert make_result().table_cell(0.6) == "2.0(80.00%)"

    def test_table_cell_unreached_x(self):
        assert make_result().table_cell(0.95) == "X(80.00%)"

    def test_summary_keys(self):
        s = make_result().summary()
        assert s["method"] == "m"
        assert s["rounds"] == 3
        assert s["total_server_transfers"] == 30.0
