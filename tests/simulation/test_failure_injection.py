"""Failure-injection tests: lost ring hops must never break liveness."""

import numpy as np
import pytest

from repro.simulation.engine import RingRoundEngine

from tests.simulation.test_engine import make_fleet


class TestDropInjection:
    def test_drop_prob_validation(self):
        with pytest.raises(ValueError):
            RingRoundEngine(make_fleet([1.0]), drop_prob=1.0)
        with pytest.raises(ValueError):
            RingRoundEngine(make_fleet([1.0]), drop_prob=-0.1)

    def test_all_drops_degenerates_to_isolation(self):
        """drop_prob ~ 1: every hop lost, devices train alone (Eq. 7)."""
        devices = make_fleet([1.0, 1.0, 1.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1, drop_prob=0.999,
                                 drop_seed=0)
        stats = engine.run_round([[0, 1, 2]], np.zeros(3), duration=3.0)
        # peer sends attempted but (almost surely) all dropped
        assert stats.peer_sends == 9
        assert engine.dropped_sends == 9
        for d in devices:
            np.testing.assert_allclose(d.weights.sum(), 3.0)
            assert d.weights.max() == 3.0  # all own-training

    def test_no_drops_by_default(self):
        devices = make_fleet([1.0, 1.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1)
        engine.run_round([[0, 1]], np.zeros(2), duration=2.0)
        assert engine.dropped_sends == 0

    def test_partial_drops_keep_progress(self):
        """With 50% loss, every device still completes its unit budget."""
        devices = make_fleet([1.0, 0.5, 0.25, 1.0])
        engine = RingRoundEngine(devices, epochs_per_unit=1, drop_prob=0.5,
                                 drop_seed=1)
        stats = engine.run_round([[0, 1], [2, 3]], np.zeros(4), duration=1.0)
        assert stats.units_completed == {0: 1, 1: 2, 2: 4, 3: 1}
        assert 0 < engine.dropped_sends <= stats.peer_sends

    def test_drop_seed_reproducible(self):
        def run(seed):
            devices = make_fleet([1.0, 1.0, 1.0])
            engine = RingRoundEngine(devices, epochs_per_unit=1,
                                     drop_prob=0.5, drop_seed=seed)
            engine.run_round([[0, 1, 2]], np.zeros(3), duration=4.0)
            return engine.dropped_sends, [d.weights.copy() for d in devices]

        d1, w1 = run(7)
        d2, w2 = run(7)
        assert d1 == d2
        for a, b in zip(w1, w2):
            np.testing.assert_array_equal(a, b)

    def test_fedhisyn_learns_under_drops(self, tiny_devices, tiny_split):
        """End-to-end: the full framework still converges with lossy links."""
        from repro.core.fedhisyn import FedHiSynConfig, FedHiSynServer

        _, test_set = tiny_split
        srv = FedHiSynServer(
            tiny_devices, test_set,
            FedHiSynConfig(rounds=6, num_classes=3, local_epochs=1),
        )
        srv.engine.drop_prob = 0.3
        result = srv.fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes


class TestEngineEnvPrecedence:
    def test_env_supplies_drop_prob(self):
        from repro.env import make_environment

        engine = RingRoundEngine(make_fleet([1.0]),
                                 env=make_environment("flaky_mobile"))
        assert engine.drop_prob == 0.05
        assert engine.delay_model is not None

    def test_explicit_zero_overrides_lossy_env(self):
        """drop_prob=0.0 must pin a lossless ring even under a lossy env."""
        from repro.env import make_environment

        engine = RingRoundEngine(make_fleet([1.0]), drop_prob=0.0,
                                 env=make_environment("flaky_mobile"))
        assert engine.drop_prob == 0.0

    def test_explicit_delay_model_overrides_env(self):
        from repro.device.network import UniformDelay
        from repro.env import make_environment

        pinned = UniformDelay(0.7)
        engine = RingRoundEngine(make_fleet([1.0]), delay_model=pinned,
                                 env=make_environment("satellite"))
        assert engine.delay_model is pinned
