"""Tests for the shared discrete-event Scheduler and its timing helpers."""

import numpy as np
import pytest

from repro.simulation.scheduler import (
    AVAILABILITY_CHANGE,
    EVAL_CHECKPOINT,
    UNIT_COMPLETE,
    Scheduler,
    completed_units,
    completed_units_array,
)


class TestCompletedUnits:
    def test_exact_division(self):
        assert completed_units(4.0, 1.0) == 4

    def test_epsilon_guard(self):
        """0.3 / 0.1 is 2.9999...: the epsilon must recover the third unit."""
        assert completed_units(0.3, 0.1) == 3
        assert completed_units(0.7, 0.1) == 7

    def test_minimum_one(self):
        assert completed_units(0.5, 2.0) == 1

    def test_matches_array_form(self):
        times = np.array([0.1, 0.25, 0.5, 1.0, 3.0, 1 / 3])
        horizon = 1.0
        scalars = [completed_units(horizon, float(t)) for t in times]
        np.testing.assert_array_equal(
            completed_units_array(horizon, times), scalars
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            completed_units(0.0, 1.0)
        with pytest.raises(ValueError):
            completed_units(1.0, 0.0)
        with pytest.raises(ValueError):
            completed_units_array(0.0, np.ones(2))


class TestSchedulerOrdering:
    def test_dispatch_in_time_order(self):
        sched = Scheduler()
        seen = []
        sched.on("a", lambda ev: seen.append(ev.time))
        sched.at(3.0, "a")
        sched.at(1.0, "a")
        sched.at(2.0, "a")
        sched.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_equal_timestamps_pop_in_insertion_order(self):
        sched = Scheduler()
        seen = []
        for tag in ("first", "second", "third"):
            sched.at(1.0, "k", tag)
        sched.on("k", lambda ev: seen.append(ev.payload))
        sched.run()
        assert seen == ["first", "second", "third"]

    def test_interleaved_push_pop_preserves_total_order(self):
        """Events scheduled from inside handlers keep the global order."""
        sched = Scheduler()
        seen = []

        def handler(ev):
            seen.append((ev.time, ev.payload))
            if ev.payload == "early":
                sched.at(2.0, "k", "mid")  # lands between pending events

        sched.on("k", handler)
        sched.at(5.0, "k", "late")
        sched.at(1.0, "k", "early")
        sched.run()
        assert seen == [(1.0, "early"), (2.0, "mid"), (5.0, "late")]

    def test_clock_advances_to_events(self):
        sched = Scheduler()
        sched.at(2.5, "k")
        sched.run()
        assert sched.now == 2.5

    def test_lagged_event_fires_without_clock_reversal(self):
        """An event scheduled in the clock's past (sync rounds jump the
        clock) fires at the current now, keeping its nominal time."""
        sched = Scheduler()
        sched.at(10.0, "jump")
        fired = []
        sched.on("jump", lambda ev: sched.at(3.0, "lagged"))
        sched.on("lagged", lambda ev: fired.append((ev.time, sched.now)))
        sched.run()
        assert fired == [(3.0, 10.0)]

    def test_after_is_relative_to_now(self):
        sched = Scheduler()
        sched.at(2.0, "k")
        times = []

        def handler(ev):
            if ev.payload is None:
                sched.after(1.5, "k", "second")
            times.append(sched.now)

        sched.on("k", handler)
        sched.run()
        assert times == [2.0, 3.5]


class TestSchedulerControl:
    def test_cancel_skips_event(self):
        sched = Scheduler()
        seen = []
        sched.on("k", lambda ev: seen.append(ev.payload))
        keep = sched.at(1.0, "k", "keep")  # noqa: F841
        drop = sched.at(2.0, "k", "drop")
        sched.cancel(drop)
        assert sched.pending("k") == 1
        sched.run()
        assert seen == ["keep"]

    def test_stop_halts_immediately(self):
        sched = Scheduler()
        seen = []

        def handler(ev):
            seen.append(ev.payload)
            sched.stop()

        sched.on("k", handler)
        sched.at(1.0, "k", 1)
        sched.at(2.0, "k", 2)
        sched.run()
        assert seen == [1]
        assert sched.pending() == 1  # the undelivered event stays queued

    def test_finish_at_drains_matured_only(self):
        sched = Scheduler()
        seen = []
        sched.on("k", lambda ev: seen.append(ev.time))
        sched.at(1.0, "k")
        sched.at(2.0, "k")
        sched.at(5.0, "k")
        sched.finish_at(2.0)
        sched.run()
        assert seen == [1.0, 2.0]
        assert sched.now == 2.0  # the future event never dragged the clock

    def test_max_events_bounds_run(self):
        sched = Scheduler()
        sched.on("k", lambda ev: sched.after(1.0, "k"))
        sched.at(0.0, "k")
        assert sched.run(max_events=10) == 10

    def test_pending_counters(self):
        sched = Scheduler()
        sched.at(1.0, UNIT_COMPLETE)
        sched.at(2.0, UNIT_COMPLETE)
        sched.at(3.0, EVAL_CHECKPOINT)
        assert sched.pending() == 3
        assert sched.pending(UNIT_COMPLETE) == 2
        assert sched.pending_except(EVAL_CHECKPOINT) == 2
        assert bool(sched)
        sched.run()
        assert not sched

    def test_events_processed_counts(self):
        sched = Scheduler()
        for t in (1.0, 2.0, 3.0):
            sched.at(t, "k")
        sched.run()
        assert sched.events_processed == 3

    def test_next_batch_pops_equal_timestamps(self):
        sched = Scheduler()
        sched.at(1.0, "a", 0)
        sched.at(1.0, "b", 1)
        sched.at(2.0, "a", 2)
        batch = sched.next_batch()
        assert [(ev.kind, ev.payload) for ev in batch] == [("a", 0), ("b", 1)]
        assert sched.now == 1.0
        assert [ev.payload for ev in sched.next_batch()] == [2]
        assert sched.next_batch() == []


class TestEventTraces:
    def test_trace_disabled_by_default(self):
        sched = Scheduler()
        sched.at(1.0, "k")
        sched.run()
        assert sched.trace is None

    def test_trace_records_time_kind_tag(self):
        sched = Scheduler(record_trace=True)
        sched.at(1.0, UNIT_COMPLETE, 7)
        sched.at(2.0, AVAILABILITY_CHANGE, 1)
        sched.run()
        assert sched.trace == [
            (1.0, UNIT_COMPLETE, 7),
            (2.0, AVAILABILITY_CHANGE, 1),
        ]

    def test_identically_seeded_async_runs_have_identical_traces(
        self, tiny_devices, tiny_split
    ):
        """The determinism contract of the async runtime: same seed, same
        event trace, event for event — under churn and message drops."""
        from repro.baselines.fedasync import FedAsyncConfig, FedAsyncServer
        from repro.env.registry import make_environment

        _, test_set = tiny_split
        # One shared trainer model serves both runs (and evaluate() swaps
        # its parameters), so the start weights are pinned explicitly.
        start = {}

        def run():
            srv = FedAsyncServer(
                tiny_devices,
                test_set,
                FedAsyncConfig(rounds=6, local_epochs=1, seed=3),
                env=make_environment("churn", drop_prob=0.1),
            )
            srv.record_trace = True
            w0 = start.setdefault("w0", srv.global_weights.copy())
            result = srv.fit(initial_weights=w0)
            return srv.scheduler.trace, result

        trace_a, result_a = run()
        trace_b, result_b = run()
        assert trace_a == trace_b
        assert len(trace_a) > 0
        np.testing.assert_array_equal(
            result_a.final_weights, result_b.final_weights
        )


class TestCancellableTimers:
    """The fault subsystem's timer contract: cancel is O(1), idempotent,
    and a no-op on handles held past their dispatch."""

    def test_cancel_skips_event_and_updates_pending(self):
        sched = Scheduler()
        fired = []
        sched.on("timer", lambda ev: fired.append(ev.payload))
        keep = sched.at(1.0, "timer", "keep")
        drop = sched.at(2.0, "timer", "drop")
        sched.cancel(drop)
        assert sched.pending("timer") == 1
        sched.run()
        assert fired == ["keep"]
        assert sched.pending("timer") == 0

    def test_cancel_after_fire_is_noop(self):
        """Holding a timer handle past its dispatch (an ack racing its
        own timeout) must not corrupt the pending counters."""
        sched = Scheduler()
        handle = sched.at(1.0, "timer")
        other = sched.at(2.0, "timer")
        sched.step()  # dispatches `handle`
        assert handle.fired
        sched.cancel(handle)  # late cancel: must not double-decrement
        assert sched.pending("timer") == 1
        sched.cancel(handle)
        assert sched.pending("timer") == 1
        sched.run()
        assert sched.pending("timer") == 0

    def test_cancel_is_idempotent_before_fire(self):
        sched = Scheduler()
        sched.at(0.5, "timer")
        handle = sched.at(1.0, "timer")
        sched.cancel(handle)
        sched.cancel(handle)
        assert sched.pending("timer") == 1

    def test_pending_counter_never_negative(self):
        """Adversarial cancel storms leave every per-kind counter >= 0."""
        sched = Scheduler()
        handles = [sched.at(float(i), "a") for i in range(5)]
        sched.step()
        sched.step()
        for h in handles * 3:  # cancel everything repeatedly, fired or not
            sched.cancel(h)
        assert sched.pending("a") == 0
        assert all(n >= 0 for n in sched._pending.values())
        assert sched.run() == 0  # nothing left to dispatch

    def test_cancelled_events_do_not_leak_queue_entries(self):
        """A cancelled event is skipped on pop: after a run the heap is
        fully drained even when most entries were revoked."""
        sched = Scheduler()
        handles = [sched.at(1.0 + i * 0.1, "timer", i) for i in range(20)]
        for h in handles[1:]:
            sched.cancel(h)
        fired = []
        sched.on("timer", lambda ev: fired.append(ev.payload))
        sched.run()
        assert fired == [0]
        assert len(sched.queue) == 0
        assert not sched

    def test_lagged_cancelled_event_never_fires(self):
        """An event scheduled in the clock's past then cancelled stays
        dead — it must not resurrect as a lagged firing."""
        sched = Scheduler()
        sched.at(5.0, "late")
        sched.step()  # clock now at 5.0
        lagged = sched.at(1.0, "lagged")  # in the past: would fire at now
        sched.cancel(lagged)
        fired = []
        sched.on("lagged", lambda ev: fired.append(ev))
        sched.run()
        assert fired == []

    def test_equal_timestamp_fault_events_order_deterministically(self):
        """Fault kinds landing on one timestamp dispatch in insertion
        order — the tie-break the retry/crash races rely on."""
        from repro.simulation.scheduler import (
            DEVICE_CRASH,
            DEVICE_RESTART,
            HEARTBEAT,
            RETRY_UPLOAD,
            SUSPECT,
            UPLOAD_TIMEOUT,
        )

        kinds = [UPLOAD_TIMEOUT, RETRY_UPLOAD, DEVICE_CRASH,
                 DEVICE_RESTART, HEARTBEAT, SUSPECT]
        for trial in range(3):
            sched = Scheduler()
            seen = []
            for k in kinds:
                sched.on(k, lambda ev, k=k: seen.append(k))
                sched.at(1.0, k)
            sched.run()
            assert seen == kinds

    def test_crash_between_schedule_and_fire_never_double_fires(self):
        """The async crash pattern: a handler cancels a sibling event at
        the same timestamp; the sibling must not run."""
        from repro.simulation.scheduler import DEVICE_CRASH, UNIT_COMPLETE

        sched = Scheduler()
        completions = []
        unit = sched.at(1.0, UNIT_COMPLETE, 7)
        sched.on(DEVICE_CRASH, lambda ev: sched.cancel(unit))
        sched.on(UNIT_COMPLETE, lambda ev: completions.append(ev.payload))
        sched.at(1.0, DEVICE_CRASH, 7)  # same time, later insertion
        # Crash inserted later fires second: completion runs once.
        assert sched.run() == 2
        assert completions == [7]

        # The reverse order: crash inserted first cancels the pending
        # completion before it dispatches.
        sched2 = Scheduler()
        completions2 = []
        holder = {}
        sched2.on(DEVICE_CRASH, lambda ev: sched2.cancel(holder["unit"]))
        sched2.on(UNIT_COMPLETE, lambda ev: completions2.append(ev.payload))
        sched2.at(1.0, DEVICE_CRASH, 7)
        holder["unit"] = sched2.at(1.0, UNIT_COMPLETE, 7)
        sched2.run()
        assert completions2 == []
