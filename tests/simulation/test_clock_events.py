"""Tests for the virtual clock and event queue."""

import pytest

from repro.simulation.clock import VirtualClock
from repro.simulation.events import EventQueue


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_to(self):
        c = VirtualClock()
        c.advance_to(3.5)
        assert c.now == 3.5

    def test_advance_by(self):
        c = VirtualClock(1.0)
        c.advance_by(0.5)
        assert c.now == 1.5

    def test_no_backwards(self):
        c = VirtualClock(2.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)

    def test_no_negative_delta(self):
        with pytest.raises(ValueError):
            VirtualClock().advance_by(-0.1)

    def test_no_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_tie_break_by_insertion(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        q.push(1.0, "third")
        assert [q.pop().kind for _ in range(3)] == ["first", "second", "third"]

    def test_payload_carried(self):
        q = EventQueue()
        q.push(0.5, "k", payload={"x": 1})
        assert q.pop().payload == {"x": 1}

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, "a")
        assert q.peek().kind == "a"
        assert len(q) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_empty_peek_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "bad")

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "a")
        assert q and len(q) == 1

    def test_interleaved_push_pop(self):
        q = EventQueue()
        q.push(5.0, "late")
        q.push(1.0, "early")
        assert q.pop().kind == "early"
        q.push(2.0, "mid")
        assert q.pop().kind == "mid"
        assert q.pop().kind == "late"
