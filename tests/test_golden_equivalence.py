"""Golden equivalence: env="ideal" reproduces pre-refactor runs bit-for-bit.

The JSON files under ``tests/golden/`` were captured at the commit *before*
the environment layer / channel API existed (see ``tests/golden/generate.py``).
Every registered method must still produce the exact same per-round metric
history — times, transfer counts, accuracies, losses — and the same final
weights under the default environment.  Any diff here means the refactor
changed training semantics, not just plumbing.
"""

import json
import pathlib

import pytest

from repro.core.registry import available_methods
from repro.experiments import ExperimentSpec, run_experiment

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))


def test_every_registered_method_has_a_golden_file():
    covered = {path.stem for path in GOLDEN_FILES}
    assert covered == set(available_methods()), (
        "golden coverage out of sync with the method registry; "
        "run tests/golden/generate.py for the new method"
    )


@pytest.mark.parametrize(
    "golden_path", GOLDEN_FILES, ids=[p.stem for p in GOLDEN_FILES]
)
def test_ideal_env_matches_pre_refactor_history(golden_path):
    gold = json.loads(golden_path.read_text())
    # codec="none" pinned explicitly: the identity codec's channel fast
    # path must stay bit-identical to the pre-compression runs for every
    # method, not just remain the spec default.  device_batching="off"
    # pinned for the same reason: goldens assert *bitwise* equality, and
    # the batched engine only guarantees that on BLAS builds whose
    # stacked-GEMM slices are exact (1e-12 elsewhere — see
    # tests/baselines/test_batched_equivalence.py for the tolerant check).
    spec = ExperimentSpec(
        **{**gold["spec"], "codec": "none", "device_batching": "off"}
    )
    assert spec.env == "ideal"  # the default must be the paper's semantics

    result = run_experiment(spec)

    history = result.history.to_dict()
    for series, want in gold["history"].items():
        assert history[series] == want, (
            f"{golden_path.stem}: '{series}' diverged from the "
            f"pre-refactor run under env='ideal'"
        )
    assert result.per_round_unit == gold["per_round_unit"]
    assert float(result.final_weights.sum()) == gold["final_weights_sum"]
