"""Tests for the campaign layer: sweep expansion, hashing, caching,
parallel execution and seed aggregation."""

import json

import numpy as np
import pytest

from repro.campaign import Campaign, CampaignResult, spec_hash, sweep
from repro.experiments import ExperimentSpec
from repro.simulation.results import RunResult


def fast_spec(**kwargs):
    base = dict(
        method="fedavg",
        dataset="mnist_like",
        num_samples=300,
        num_devices=4,
        rounds=2,
        local_epochs=1,
    )
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestSweep:
    def test_cartesian_expansion(self):
        specs = sweep(fast_spec(), {"method": ["fedavg", "tfedavg"],
                                    "seed": [0, 1, 2]})
        assert len(specs) == 6
        assert {(s.method, s.seed) for s in specs} == {
            (m, s) for m in ("fedavg", "tfedavg") for s in (0, 1, 2)
        }

    def test_per_method_kwargs(self):
        specs = sweep(
            fast_spec(),
            {"method": ["fedhisyn", "fedavg"]},
            method_kwargs={"fedhisyn": {"num_classes": 2}},
        )
        by_method = {s.method: s for s in specs}
        assert by_method["fedhisyn"].method_kwargs == {"num_classes": 2}
        assert by_method["fedavg"].method_kwargs == {}

    def test_base_method_kwargs_do_not_leak_across_methods(self):
        base = fast_spec(method="fedhisyn", method_kwargs={"num_classes": 2})
        specs = sweep(base, {"method": ["fedhisyn", "fedavg"]})
        by_method = {s.method: s for s in specs}
        assert by_method["fedhisyn"].method_kwargs == {"num_classes": 2}
        assert by_method["fedavg"].method_kwargs == {}

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown ExperimentSpec field"):
            sweep(fast_spec(), {"betamax": [0.1]})

    def test_empty_axis_raises(self):
        with pytest.raises(ValueError, match="empty"):
            sweep(fast_spec(), {"seed": []})

    def test_invalid_grid_value_fails_at_expansion(self):
        with pytest.raises(ValueError, match="participation"):
            sweep(fast_spec(), {"participation": [0.5, 2.0]})


class TestSpecHash:
    def test_stable(self):
        assert spec_hash(fast_spec()) == spec_hash(fast_spec())

    def test_any_field_changes_hash(self):
        base = spec_hash(fast_spec())
        assert spec_hash(fast_spec(seed=1)) != base
        assert spec_hash(fast_spec(method_kwargs={"mu": 0.1})) != base

    def test_json_round_trip_preserves_hash(self):
        spec = fast_spec(het_ratio=4.0, method_kwargs={"mu": 0.01})
        thawed = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert thawed == spec
        assert spec_hash(thawed) == spec_hash(spec)


class TestCampaign:
    def test_results_in_spec_order(self):
        specs = sweep(fast_spec(), {"seed": [3, 1, 2]})
        result = Campaign(specs).run()
        assert [e.spec.seed for e in result] == [3, 1, 2]
        assert all(not e.cached for e in result)

    def test_empty_campaign_raises(self):
        with pytest.raises(ValueError, match="at least one spec"):
            Campaign([])

    def test_cache_hit_on_second_run(self, tmp_path):
        specs = [fast_spec()]
        first = Campaign(specs, cache_dir=tmp_path).run()
        assert first.cache_hits == 0
        second = Campaign(specs, cache_dir=tmp_path).run()
        assert second.cache_hits == 1
        np.testing.assert_array_equal(
            first.results[0].final_weights, second.results[0].final_weights
        )
        assert (
            first.results[0].history.accuracies
            == second.results[0].history.accuracies
        )

    def test_cache_partial_superset(self, tmp_path):
        Campaign([fast_spec(seed=0)], cache_dir=tmp_path).run()
        result = Campaign(
            sweep(fast_spec(), {"seed": [0, 1]}), cache_dir=tmp_path
        ).run()
        assert [e.cached for e in result] == [True, False]

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        spec = fast_spec()
        Campaign([spec], cache_dir=tmp_path).run()
        (tmp_path / f"{spec_hash(spec)}.json").write_text("{not json")
        result = Campaign([spec], cache_dir=tmp_path).run()
        assert result.cache_hits == 0

    def test_parallel_workers_match_serial(self, tmp_path):
        specs = sweep(fast_spec(rounds=1), {"seed": [0, 1]})
        serial = Campaign(specs).run(workers=1)
        parallel = Campaign(specs).run(workers=2)
        for s, p in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(s.final_weights, p.final_weights)

    def test_bad_workers_raises(self):
        with pytest.raises(ValueError, match="workers"):
            Campaign([fast_spec()]).run(workers=0)

    def test_progress_lines(self):
        lines = []
        Campaign([fast_spec(rounds=1)]).run(progress=lines.append)
        assert len(lines) == 1 and "fedavg" in lines[0]


class TestAggregation:
    @pytest.fixture(scope="class")
    def campaign_result(self) -> CampaignResult:
        specs = sweep(fast_spec(), {"method": ["fedavg", "tfedavg"],
                                    "seed": [0, 1]})
        return Campaign(specs).run()

    def test_groups_by_non_seed_fields(self, campaign_result):
        rows = campaign_result.aggregate()
        assert len(rows) == 2
        assert all(row["seeds"] == 2 for row in rows)
        assert {row["method"] for row in rows} == {"fedavg", "tfedavg"}

    def test_mean_std_consistent(self, campaign_result):
        rows = campaign_result.aggregate()
        by_method = {row["method"]: row for row in rows}
        finals = [
            e.result.final_accuracy
            for e in campaign_result
            if e.spec.method == "fedavg"
        ]
        assert by_method["fedavg"]["final_mean"] == pytest.approx(
            float(np.mean(finals))
        )
        assert by_method["fedavg"]["final_std"] == pytest.approx(
            float(np.std(finals))
        )

    def test_table_renders(self, campaign_result):
        table = campaign_result.to_table(target=0.5, title="t")
        assert "method" in table and "cost@50%" in table

    def test_json_rows(self, campaign_result):
        rows = json.loads(campaign_result.to_json(target=0.5))
        assert len(rows) == 2 and "final_mean" in rows[0]


class TestRunResultRoundTrip:
    def test_lossless_through_json(self):
        from repro.experiments import run_experiment

        result = run_experiment(fast_spec())
        thawed = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert thawed.method == result.method
        assert thawed.dataset == result.dataset
        assert thawed.per_round_unit == result.per_round_unit
        assert thawed.config == result.config
        np.testing.assert_array_equal(thawed.final_weights, result.final_weights)
        assert thawed.final_weights.dtype == np.float64
        assert thawed.history.to_dict() == result.history.to_dict()
