"""Shared fixtures: tiny datasets, models, trainers and device fleets.

Everything here is deliberately small — tests exercise behaviour and
invariants, not benchmark-scale accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import train_test_split
from repro.datasets.synthetic import SyntheticSpec, make_synthetic
from repro.device import LocalTrainer, make_devices, make_fleet, unit_times_from_counts
from repro.datasets.partition import dirichlet_partition, iid_partition
from repro.nn.models import paper_mlp


@pytest.fixture(scope="session")
def tiny_dataset():
    """400 samples, 4 classes, 12 flat features — fast to train on."""
    spec = SyntheticSpec(
        name="tiny",
        num_classes=4,
        num_samples=400,
        latent_dim=8,
        feature_shape=(12,),
        separation=4.0,
        sigma_within=0.8,
        sigma_noise=0.3,
    )
    return make_synthetic(spec, seed=0)


@pytest.fixture(scope="session")
def tiny_image_dataset():
    """240 samples, 3 classes, (2, 4, 4) images for conv paths."""
    spec = SyntheticSpec(
        name="tiny_img",
        num_classes=3,
        num_samples=240,
        latent_dim=8,
        feature_shape=(2, 4, 4),
        separation=3.5,
        sigma_within=0.8,
        sigma_noise=0.4,
        squash=True,
    )
    return make_synthetic(spec, seed=1)


@pytest.fixture()
def tiny_split(tiny_dataset):
    return train_test_split(tiny_dataset, 0.25, seed=2)


@pytest.fixture()
def tiny_model(tiny_dataset):
    return paper_mlp(tiny_dataset.flat_features, tiny_dataset.num_classes,
                     seed=3, hidden=(16, 8))


@pytest.fixture()
def tiny_trainer(tiny_model):
    return LocalTrainer(tiny_model, lr=0.1, batch_size=32, seed=4)


@pytest.fixture()
def tiny_devices(tiny_split, tiny_trainer):
    """8 devices, Dirichlet(0.5) split, unit counts 1/2/4."""
    train_set, _ = tiny_split
    parts = dirichlet_partition(train_set, 8, beta=0.5, seed=5, min_samples=2)
    counts = np.array([1, 2, 4, 1, 2, 4, 1, 2])
    return make_devices(train_set, parts, unit_times_from_counts(counts), tiny_trainer)


@pytest.fixture()
def homogeneous_devices(tiny_split, tiny_trainer):
    """6 devices, IID split, identical speeds."""
    train_set, _ = tiny_split
    parts = iid_partition(train_set, 6, seed=6)
    return make_devices(train_set, parts, np.ones(6), tiny_trainer)


@pytest.fixture()
def tiny_fleet(tiny_split, tiny_trainer):
    """The ``tiny_devices`` population as a struct-of-arrays DeviceFleet."""
    train_set, _ = tiny_split
    parts = dirichlet_partition(train_set, 8, beta=0.5, seed=5, min_samples=2)
    counts = np.array([1, 2, 4, 1, 2, 4, 1, 2])
    return make_fleet(train_set, parts, unit_times_from_counts(counts), tiny_trainer)
