"""Tests for repro.utils.config."""

import dataclasses

import pytest

from repro.utils.config import freeze, validate_fraction, validate_non_negative, validate_positive


class TestValidateFraction:
    def test_accepts_half(self):
        assert validate_fraction(0.5, "x") == 0.5

    def test_accepts_one(self):
        assert validate_fraction(1.0, "x") == 1.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="x"):
            validate_fraction(0.0, "x")

    def test_accepts_zero_when_inclusive(self):
        assert validate_fraction(0.0, "x", inclusive_low=True) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            validate_fraction(1.01, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_fraction(-0.1, "x", inclusive_low=True)


class TestValidatePositive:
    def test_accepts_positive(self):
        assert validate_positive(3, "n") == 3

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            validate_positive(bad, "n")


class TestValidateNonNegative:
    def test_accepts_zero(self):
        assert validate_non_negative(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_non_negative(-1e-9, "n")


class TestNumericTypes:
    """Non-numbers must raise ValueError (not TypeError) so callers — e.g.
    ExperimentSpec validation of CLI --grid values — report them cleanly."""

    @pytest.mark.parametrize(
        "validator", [validate_fraction, validate_positive, validate_non_negative]
    )
    @pytest.mark.parametrize("bad", ["fast", None, [1], True])
    def test_non_numbers_rejected(self, validator, bad):
        with pytest.raises(ValueError, match="must be a number"):
            validator(bad, "n")

    def test_numpy_scalars_accepted(self):
        import numpy as np

        assert validate_positive(np.int64(3), "n") == 3
        assert validate_fraction(np.float64(0.5), "n") == 0.5


class TestFreeze:
    def test_dict_order_insensitive(self):
        assert freeze({"a": 1, "b": 2}) == freeze({"b": 2, "a": 1})

    def test_nested_hashable(self):
        frozen = freeze({"a": [1, {"b": {2, 3}}]})
        hash(frozen)  # must not raise

    def test_dataclass(self):
        @dataclasses.dataclass
        class Cfg:
            x: int
            y: list

        frozen = freeze(Cfg(x=1, y=[2, 3]))
        assert ("x", 1) in frozen
        hash(frozen)

    def test_scalars_pass_through(self):
        assert freeze(42) == 42
        assert freeze("s") == "s"
