"""Tests for terminal sparklines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sparkline import labelled_curve, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([0.1, 0.5, 0.9])) == 3

    def test_monotone_rises(self):
        s = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        assert s == "".join(sorted(s))
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_mid_height(self):
        s = sparkline([0.5, 0.5, 0.5])
        assert len(set(s)) == 1

    def test_pinned_scale(self):
        # 0.5 on a 0..1 scale sits mid-band regardless of data range.
        s = sparkline([0.5], lo=0.0, hi=1.0)
        assert s in ("▄", "▅")

    def test_clipping_out_of_range(self):
        s = sparkline([-10.0, 10.0], lo=0.0, hi=1.0)
        assert s == "▁█"

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            sparkline([0.5], lo=1.0, hi=0.0)

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_property_length_and_charset(self, values):
        s = sparkline(values, lo=0.0, hi=1.0)
        assert len(s) == len(values)
        assert all(c in "▁▂▃▄▅▆▇█" for c in s)


class TestLabelledCurve:
    def test_contains_endpoints(self):
        line = labelled_curve("acc", [0.1, 0.9])
        assert "0.100" in line and "0.900" in line
        assert line.startswith("acc")

    def test_empty(self):
        assert "(no data)" in labelled_curve("acc", [])
