"""Tests for repro.utils.logging and repro.utils.tables."""

import pytest

from repro.utils.logging import NullLogger, RunLogger
from repro.utils.tables import format_cell, format_table


class TestRunLogger:
    def test_accumulates_records(self):
        log = RunLogger("t")
        log.log(round=1, acc=0.5)
        log.log(round=2, acc=0.6)
        assert len(log) == 2

    def test_column_extraction(self):
        log = RunLogger("t")
        log.log(round=1, acc=0.5)
        log.log(round=2)
        log.log(round=3, acc=0.7)
        assert log.column("acc") == [0.5, 0.7]

    def test_last(self):
        log = RunLogger("t")
        log.log(acc=0.1)
        log.log(other=1)
        assert log.last("acc") == 0.1
        assert log.last("missing", default=-1) == -1

    def test_wall_time_recorded(self):
        log = RunLogger("t")
        log.log(x=1)
        assert "wall_s" in log.records[0]

    def test_verbose_writes_stream(self, capsys):
        import sys

        log = RunLogger("t", stream=sys.stdout, verbose=True)
        log.log(x=1)
        assert "[t]" in capsys.readouterr().out


class TestNullLogger:
    def test_drops_everything(self):
        log = NullLogger()
        log.log(x=1)
        assert len(log) == 0


class TestFormatCell:
    def test_none_blank(self):
        assert format_cell(None) == ""

    def test_float_formatted(self):
        assert format_cell(1.2345) == "1.23"

    def test_int_verbatim(self):
        assert format_cell(7) == "7"


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, None]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, sep, 2 rows
        assert "bb" in lines[0]
        assert "2.50" in out

    def test_title(self):
        out = format_table(["a"], [[1]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
