"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=20)
        b = as_generator(2).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_passthrough_generator_identity(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_streams_independent(self):
        gens = spawn_generators(7, 3)
        draws = [g.integers(0, 1_000_000, size=10) for g in gens]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 100, 5) for g in spawn_generators(3, 2)]
        b = [g.integers(0, 100, 5) for g in spawn_generators(3, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(0)
        children = spawn_generators(g, 2)
        assert len(children) == 2


class TestSeedSequenceFactory:
    def test_same_key_same_stream(self):
        f = SeedSequenceFactory(1)
        a = f.generator(3, 7).integers(0, 1_000_000, size=10)
        b = f.generator(3, 7).integers(0, 1_000_000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        f = SeedSequenceFactory(1)
        a = f.generator(3, 7).integers(0, 1_000_000, size=10)
        b = f.generator(7, 3).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_key_independent_of_creation_order(self):
        f1 = SeedSequenceFactory(5)
        _ = f1.generator(0)  # consume an unrelated key first
        a = f1.generator(9, 9).integers(0, 1_000_000, size=5)
        f2 = SeedSequenceFactory(5)
        b = f2.generator(9, 9).integers(0, 1_000_000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).generator(2).integers(0, 1_000_000, size=10)
        b = SeedSequenceFactory(2).generator(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generators_batch(self):
        f = SeedSequenceFactory(0)
        gens = f.generators([(0, 1), (0, 2)])
        assert len(gens) == 2

    def test_negative_root_raises(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)
