"""Tests for the event-driven async methods (FedAsync, FedBuff)."""

import numpy as np
import pytest

from repro.baselines.fedasync import FedAsyncConfig, FedAsyncServer
from repro.baselines.fedbuff import FedBuffConfig, FedBuffServer
from repro.core.async_server import STALENESS_DECAYS, staleness_weight
from repro.env.registry import make_environment


class TestStalenessWeight:
    def test_constant_ignores_staleness(self):
        assert staleness_weight(0, "constant") == 1.0
        assert staleness_weight(50, "constant") == 1.0

    def test_polynomial_decays(self):
        fresh = staleness_weight(0, "polynomial", exponent=0.5)
        stale = staleness_weight(8, "polynomial", exponent=0.5)
        assert fresh == 1.0
        assert stale == pytest.approx((1.0 + 8) ** -0.5)
        assert stale < fresh

    def test_hinge_grace_then_decay(self):
        assert staleness_weight(4, "hinge", exponent=1.0, hinge_delay=4) == 1.0
        assert staleness_weight(6, "hinge", exponent=1.0, hinge_delay=4) == (
            pytest.approx(1.0 / 3.0)
        )

    def test_monotone_in_staleness(self):
        for decay in STALENESS_DECAYS:
            ws = [staleness_weight(s, decay) for s in range(10)]
            assert all(a >= b for a, b in zip(ws, ws[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            staleness_weight(-1, "constant")
        with pytest.raises(ValueError):
            staleness_weight(0, "exponential")


class TestConfigs:
    def test_decay_validation(self):
        with pytest.raises(ValueError):
            FedAsyncConfig(staleness_decay="bogus")
        with pytest.raises(ValueError):
            FedAsyncConfig(staleness_exponent=-1.0)
        with pytest.raises(ValueError):
            FedAsyncConfig(hinge_delay=-1)
        with pytest.raises(ValueError):
            FedAsyncConfig(churn_period=0.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            FedAsyncConfig(alpha=0.0)
        with pytest.raises(ValueError):
            FedAsyncConfig(alpha=1.5)

    def test_buffer_validation(self):
        with pytest.raises(ValueError):
            FedBuffConfig(buffer_goal=0)
        with pytest.raises(ValueError):
            FedBuffConfig(global_lr=0.0)


class TestFedAsync:
    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=24, local_epochs=1, alpha=0.5, seed=0),
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_one_version_per_upload(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=10, local_epochs=1, seed=0),
        )
        srv.fit()
        # Exactly rounds aggregations happened; the meter counts *sent*
        # uploads, so in-flight ones at stop time may exceed the versions.
        assert srv._version == 10
        assert srv.meter.server_up >= 10

    def test_history_records_versions(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=6, local_epochs=1, eval_every=2, seed=0),
        ).fit()
        assert result.history.rounds == [2, 4, 6]

    def test_virtual_time_tracks_unit_rates(self, tiny_devices, tiny_split):
        """With n devices cycling continuously under an instant network,
        k aggregations arrive no later than k full cohort sweeps."""
        _, test_set = tiny_split
        srv = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=8, local_epochs=1, seed=0),
        )
        result = srv.fit()
        slowest = max(d.unit_time for d in tiny_devices)
        assert 0.0 < result.history.times[-1] <= 8 * slowest

    def test_staleness_decay_changes_result(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        finals = {}
        start = {}
        for decay in ("constant", "polynomial"):
            srv = FedAsyncServer(
                tiny_devices, test_set,
                FedAsyncConfig(rounds=10, local_epochs=1, alpha=0.4,
                               staleness_decay=decay, seed=0),
            )
            w0 = start.setdefault("w0", srv.global_weights.copy())
            finals[decay] = srv.fit(initial_weights=w0).final_weights
        assert not np.allclose(finals["constant"], finals["polynomial"])

    def test_uploads_arrive_after_uplink_latency(self, tiny_devices, tiny_split):
        """A latency-only network shifts every arrival by the link time —
        the run must still aggregate, and virtual time must grow."""
        _, test_set = tiny_split
        env = make_environment("lan")
        srv = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=6, local_epochs=1, seed=0),
            env=env,
        )
        ideal = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=6, local_epochs=1, seed=0),
        )
        w0 = srv.global_weights.copy()
        t_env = srv.fit(initial_weights=w0).history.times[-1]
        t_ideal = ideal.fit(initial_weights=w0).history.times[-1]
        assert t_env > t_ideal

    def test_churn_parks_and_revives_devices(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=12, local_epochs=1, seed=2),
            env=make_environment("churn"),
        )
        result = srv.fit()
        assert srv.unavailable_count > 0  # churn actually bit
        assert len(result.history.rounds) > 0  # and progress continued

    def test_drops_lose_messages_but_not_liveness(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedAsyncServer(
            tiny_devices, test_set,
            FedAsyncConfig(rounds=8, local_epochs=1, seed=3),
            env=make_environment("ideal", drop_prob=0.3),
        )
        srv.fit()
        assert srv.dropped_messages > 0
        assert srv._version == 8


class TestFedBuff:
    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = FedBuffServer(
            tiny_devices, test_set,
            FedBuffConfig(rounds=8, local_epochs=1, buffer_goal=4, seed=0),
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_buffer_goal_gates_aggregation(self, tiny_devices, tiny_split):
        """K arrived uploads per version (ideal env: nothing is dropped,
        so at least K x versions uploads were sent)."""
        _, test_set = tiny_split
        srv = FedBuffServer(
            tiny_devices, test_set,
            FedBuffConfig(rounds=5, local_epochs=1, buffer_goal=3, seed=0),
        )
        srv.fit()
        assert srv._version == 5
        assert srv.meter.server_up >= 5 * 3

    def test_buffer_smaller_than_goal_never_flushes_alone(
        self, tiny_devices, tiny_split
    ):
        _, test_set = tiny_split
        srv = FedBuffServer(
            tiny_devices, test_set,
            FedBuffConfig(rounds=2, local_epochs=1, buffer_goal=4, seed=0),
        )
        w0 = srv.global_weights.copy()
        srv.fit(initial_weights=w0)
        # Leftover buffer entries below the goal stay unapplied.
        assert len(srv._buffer) < 4

    def test_staleness_leak_weights_buffer_entries(
        self, tiny_devices, tiny_split
    ):
        _, test_set = tiny_split
        finals = {}
        start = {}
        for decay in ("constant", "polynomial"):
            srv = FedBuffServer(
                tiny_devices, test_set,
                FedBuffConfig(rounds=6, local_epochs=1, buffer_goal=4,
                              staleness_decay=decay,
                              staleness_exponent=1.0, seed=0),
            )
            w0 = start.setdefault("w0", srv.global_weights.copy())
            finals[decay] = srv.fit(initial_weights=w0).final_weights
        assert not np.allclose(finals["constant"], finals["polynomial"])

    def test_runs_on_fleet(self, tiny_fleet, tiny_split):
        _, test_set = tiny_split
        result = FedBuffServer(
            tiny_fleet, test_set,
            FedBuffConfig(rounds=4, local_epochs=1, buffer_goal=3, seed=0),
            env=make_environment("churn"),
        ).fit()
        assert len(result.history.rounds) > 0

    def test_partial_participation_cohort(self, tiny_fleet, tiny_split):
        _, test_set = tiny_split
        srv = FedBuffServer(
            tiny_fleet, test_set,
            FedBuffConfig(rounds=3, local_epochs=1, buffer_goal=2,
                          participation=0.5, seed=0),
        )
        srv.fit()
        assert 1 <= len(srv.cohort) <= len(tiny_fleet)


class TestSpecIntegration:
    def test_run_experiment_roundtrip(self):
        from repro.experiments import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            method="fedbuff", num_samples=300, num_devices=6, rounds=4,
            local_epochs=1, seed=0, buffer_goal=2,
            staleness_decay="hinge", eval_time_every=0.05,
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored == spec
        result = run_experiment(spec)
        assert result.config["buffer_goal"] == 2
        assert result.config["staleness_decay"] == "hinge"
        assert len(result.history.checkpoint_times) > 0

    def test_async_fields_ignored_by_sync_methods(self):
        from repro.experiments import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            method="fedavg", num_samples=300, num_devices=5, rounds=2,
            local_epochs=1, seed=0, buffer_goal=7, staleness_decay="constant",
        )
        result = run_experiment(spec)  # must not raise
        assert result.final_accuracy >= 0.0

    def test_spec_validates_async_fields(self):
        from repro.experiments import ExperimentSpec

        with pytest.raises(ValueError):
            ExperimentSpec(staleness_decay="bogus")
        with pytest.raises(ValueError):
            ExperimentSpec(buffer_goal=0)
        with pytest.raises(ValueError):
            ExperimentSpec(eval_time_every=-1.0)

    def test_sweepable_in_campaign_grid(self):
        from repro.campaign import sweep
        from repro.experiments import ExperimentSpec

        specs = sweep(
            ExperimentSpec(method="fedbuff", rounds=2),
            {"buffer_goal": [2, 4], "staleness_decay": ["constant", "hinge"]},
        )
        assert len(specs) == 4
        assert {s.buffer_goal for s in specs} == {2, 4}
