"""Tests for FedAvg, TFedAvg and FedProx."""

import numpy as np
import pytest

from repro.baselines.fedavg import FedAvgConfig, FedAvgServer
from repro.baselines.fedprox import FedProxConfig, FedProxServer
from repro.baselines.tfedavg import TFedAvgConfig, TFedAvgServer


class TestFedAvg:
    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedAvgServer(tiny_devices, test_set,
                           FedAvgConfig(rounds=6, local_epochs=1))
        result = srv.fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_fast_devices_train_more(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedAvgServer(tiny_devices, test_set, FedAvgConfig(local_epochs=2))
        duration = srv.round_duration(tiny_devices)
        fast = min(tiny_devices, key=lambda d: d.unit_time)
        slow = max(tiny_devices, key=lambda d: d.unit_time)
        assert srv.local_epochs_for(fast, duration) > srv.local_epochs_for(slow, duration)
        assert srv.local_epochs_for(slow, duration) == 2

    def test_transfer_accounting(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedAvgServer(tiny_devices, test_set,
                           FedAvgConfig(rounds=3, local_epochs=1))
        result = srv.fit()
        assert result.history.server_transfers[-1] == 3 * 2 * len(tiny_devices)

    def test_aggregate_is_convex_combination(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedAvgServer(tiny_devices, test_set, FedAvgConfig(local_epochs=1))
        g = srv.global_weights.copy()
        new = srv.run_round(1, tiny_devices, g)
        stack = np.stack([d.weights for d in tiny_devices])
        assert np.all(new >= stack.min(axis=0) - 1e-12)
        assert np.all(new <= stack.max(axis=0) + 1e-12)


class TestTFedAvg:
    def test_every_device_exactly_one_unit(self, tiny_devices, tiny_split):
        """Synchronous: identical local work regardless of speed."""
        _, test_set = tiny_split
        srv = TFedAvgServer(tiny_devices, test_set,
                            TFedAvgConfig(rounds=1, local_epochs=1))
        g = srv.global_weights.copy()
        srv.run_round(1, tiny_devices, g)
        # same shard sizes & epochs -> weights differ only via data/stream;
        # verify stragglers were NOT given extra epochs by re-running one
        # device manually with exactly local_epochs.
        dev = tiny_devices[2]  # the fastest in the fixture
        expected = dev.trainer.train(
            g, dev.shard, 1, stream_key=(dev.device_id, 1, 0)
        )[0]
        np.testing.assert_array_equal(dev.weights, expected)

    def test_clock_waits_for_straggler(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = TFedAvgServer(tiny_devices, test_set,
                            TFedAvgConfig(rounds=2, local_epochs=1))
        srv.fit()
        assert srv.clock.now == pytest.approx(
            2 * max(d.unit_time for d in tiny_devices)
        )

    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = TFedAvgServer(
            tiny_devices, test_set, TFedAvgConfig(rounds=6, local_epochs=1)
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes


class TestFedProx:
    def test_mu_validation(self):
        with pytest.raises(ValueError):
            FedProxConfig(mu=-0.1)

    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = FedProxServer(
            tiny_devices, test_set, FedProxConfig(rounds=6, local_epochs=1, mu=0.01)
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_large_mu_stays_near_global(self, tiny_devices, tiny_split):
        """Strong proximal term keeps local models near the broadcast."""
        _, test_set = tiny_split
        g = None
        drifts = {}
        # mu must keep eta*mu < 1 for a stable proximal pull (lr = 0.1).
        for mu in (0.0, 5.0):
            srv = FedProxServer(tiny_devices, test_set,
                                FedProxConfig(local_epochs=1, mu=mu))
            g = srv.global_weights.copy()
            srv.run_round(1, tiny_devices, g)
            drifts[mu] = np.mean(
                [np.linalg.norm(d.weights - g) for d in tiny_devices]
            )
        assert drifts[5.0] < drifts[0.0]

    def test_mu_zero_matches_fedavg(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        g0 = np.zeros(tiny_devices[0].trainer.dim)
        prox = FedProxServer(tiny_devices, test_set,
                             FedProxConfig(local_epochs=1, mu=0.0, seed=1))
        w_prox = prox.run_round(1, tiny_devices, g0)
        avg = FedAvgServer(tiny_devices, test_set,
                           FedAvgConfig(local_epochs=1, seed=1))
        w_avg = avg.run_round(1, tiny_devices, g0)
        np.testing.assert_allclose(w_prox, w_avg)
