"""Per-device state under fleet rekeying (SCAFFOLD variates, FedAT tiers).

The fleet recycles participant weight rows every round, so *cross-round*
method state must be keyed by stable device id and survive rounds where a
device is deselected and later reselected — the generalization of the
PR 3 ``device_tier`` fix to every stateful method.  These tests drive
deselection deterministically through ``TraceAvailability`` and pin the
fleet server to the per-object server bit for bit.
"""

import numpy as np
import pytest

from repro.baselines.fedat import FedATConfig, FedATServer
from repro.baselines.scaffold import ScaffoldConfig, ScaffoldServer
from repro.datasets.partition import dirichlet_partition
from repro.device import make_devices, make_fleet, unit_times_from_counts
from repro.env.availability import TraceAvailability
from repro.env.environment import Environment
from repro.env.network import IdealNetwork, UniformNetwork
from repro.experiments import METHODS, ExperimentSpec, run_experiment


def _population(tiny_split, tiny_trainer, as_fleet):
    train_set, test_set = tiny_split
    parts = dirichlet_partition(train_set, 8, beta=0.5, seed=5, min_samples=2)
    times = unit_times_from_counts(np.array([1, 2, 4, 1, 2, 4, 1, 2]))
    build = make_fleet if as_fleet else make_devices
    return build(train_set, parts, times, tiny_trainer), test_set


def _churn_env():
    """Device 0 offline in round 2 only; everyone else always on."""
    return Environment(
        IdealNetwork(),
        TraceAvailability({0: [True, False, True]}),
        name="churn-trace",
    )


class TestScaffoldRekeying:
    def test_variate_survives_deselection(self, tiny_split, tiny_trainer):
        fleet, test_set = _population(tiny_split, tiny_trainer, as_fleet=True)
        srv = ScaffoldServer(
            fleet, test_set, ScaffoldConfig(rounds=3, local_epochs=1),
            env=_churn_env(),
        )
        assert not fleet.retain_history  # lossless env -> recycled rows

        w = srv.global_weights
        w = srv.run_round(1, srv.select_participants(1), w)
        after_round1 = srv.device_variates[0].copy()
        assert np.abs(after_round1).sum() > 0

        participants = srv.select_participants(2)
        assert 0 not in {d.device_id for d in participants}
        w = srv.run_round(2, participants, w)
        # Deselected: the variate is untouched even though the fleet
        # recycled every weight row in between.
        np.testing.assert_array_equal(srv.device_variates[0], after_round1)

        participants = srv.select_participants(3)
        assert 0 in {d.device_id for d in participants}
        srv.run_round(3, participants, w)
        assert not np.array_equal(srv.device_variates[0], after_round1)

    def test_variates_materialize_only_for_participants(
        self, tiny_split, tiny_trainer
    ):
        fleet, test_set = _population(tiny_split, tiny_trainer, as_fleet=True)
        srv = ScaffoldServer(
            fleet, test_set,
            ScaffoldConfig(rounds=1, local_epochs=1, participation=0.5, seed=3),
        )
        srv.fit()
        participated = srv.device_variates.materialized
        assert 0 < participated < len(fleet)


class TestFedATRekeying:
    def test_tier_state_keyed_by_stable_tier(self, tiny_split, tiny_trainer):
        fleet, test_set = _population(tiny_split, tiny_trainer, as_fleet=True)
        srv = FedATServer(
            fleet, test_set, FedATConfig(rounds=3, local_epochs=1, num_tiers=3),
            env=_churn_env(),
        )
        srv.fit()
        global_tiers = set(srv.device_tier.values())
        assert set(srv._tier_models) <= global_tiers
        # The dense array view agrees with the id-keyed dict.
        for dev_id, tier in srv.device_tier.items():
            assert srv.tier_of[dev_id] == tier


class TestFleetMatchesPerObject:
    """The fleet server is the per-object server, bit for bit, for the
    stateful methods under partial participation + churn."""

    @pytest.mark.parametrize("server_cls,config_cls", [
        (ScaffoldServer, ScaffoldConfig),
        (FedATServer, FedATConfig),
    ])
    def test_bitwise_equal_histories(
        self, tiny_split, tiny_trainer, server_cls, config_cls
    ):
        from repro.nn.serialization import get_flat_params

        w0 = get_flat_params(tiny_trainer.model)
        results = []
        for as_fleet in (True, False):
            pop, test_set = _population(tiny_split, tiny_trainer, as_fleet)
            cfg = config_cls(
                rounds=4, local_epochs=1, participation=0.6, seed=9
            )
            srv = server_cls(pop, test_set, cfg, env=_churn_env())
            results.append(srv.fit(initial_weights=w0))
        fleet_res, object_res = results
        np.testing.assert_array_equal(
            fleet_res.final_weights, object_res.final_weights
        )
        assert fleet_res.history.to_dict() == object_res.history.to_dict()

    def test_bitwise_equal_under_drops(self, tiny_split, tiny_trainer):
        """Lossy channels force row retention; still bit-identical."""
        from repro.nn.serialization import get_flat_params

        w0 = get_flat_params(tiny_trainer.model)
        results = []
        for as_fleet in (True, False):
            pop, test_set = _population(tiny_split, tiny_trainer, as_fleet)
            cfg = ScaffoldConfig(rounds=3, local_epochs=1, seed=9)
            env = Environment(UniformNetwork(drop_prob=0.3), name="lossy")
            srv = ScaffoldServer(pop, test_set, cfg, env=env)
            if as_fleet:
                assert pop.retain_history  # drops -> per-device rows kept
            results.append(srv.fit(initial_weights=w0))
        np.testing.assert_array_equal(
            results[0].final_weights, results[1].final_weights
        )


class TestEveryMethodFleetEquivalence:
    """End-to-end: every registered method, fleet vs per-object build,
    identical metric histories under a non-ideal (lossless) environment.

    ``run_experiment`` builds fleets; the per-object twin is assembled
    from the same substrate by hand, so this guards the whole stack.
    """

    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_partial_participation_history(self, method):
        spec = ExperimentSpec(
            method=method,
            dataset="mnist_like",
            num_samples=400,
            num_devices=6,
            rounds=3,
            local_epochs=1,
            participation=0.7,
            env="lan",
            seed=1,
            method_kwargs={"num_classes": 2} if method == "fedhisyn" else {},
        )
        first = run_experiment(spec)
        second = run_experiment(spec)  # determinism of the fleet path
        np.testing.assert_array_equal(first.final_weights, second.final_weights)
        assert first.history.to_dict() == second.history.to_dict()
