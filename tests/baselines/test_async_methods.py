"""Tests for TAFedAvg and FedAT (the asynchronous baselines)."""

import numpy as np
import pytest

from repro.baselines.fedat import FedATConfig, FedATServer
from repro.baselines.tafedavg import TAFedAvgConfig, TAFedAvgServer


class TestTAFedAvg:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            TAFedAvgConfig(alpha=0.0)
        with pytest.raises(ValueError):
            TAFedAvgConfig(alpha=1.5)

    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = TAFedAvgServer(
            tiny_devices, test_set,
            TAFedAvgConfig(rounds=6, local_epochs=1, alpha=0.2),
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_more_transfers_than_sync(self, tiny_devices, tiny_split):
        """Fast devices upload several times per round — async costs more
        server traffic than one down+up per participant."""
        _, test_set = tiny_split
        srv = TAFedAvgServer(tiny_devices, test_set,
                             TAFedAvgConfig(rounds=2, local_epochs=1))
        result = srv.fit()
        sync_cost = 2 * 2 * len(tiny_devices)
        assert result.history.server_transfers[-1] > sync_cost

    def test_upload_count_matches_schedule(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        from repro.simulation.engine import async_upload_schedule

        srv = TAFedAvgServer(tiny_devices, test_set,
                             TAFedAvgConfig(rounds=1, local_epochs=1))
        srv.fit()
        duration = max(d.unit_time for d in tiny_devices)
        expected_uploads = len(
            async_upload_schedule({d.device_id: d.unit_time for d in tiny_devices},
                                  duration)
        )
        assert srv.meter.server_up == expected_uploads

    def test_mixing_moves_global(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = TAFedAvgServer(tiny_devices, test_set,
                             TAFedAvgConfig(local_epochs=1, alpha=0.5))
        g = srv.global_weights.copy()
        new = srv.run_round(1, tiny_devices, g)
        assert not np.allclose(new, g)


class TestFedAT:
    def test_tier_validation(self):
        with pytest.raises(ValueError):
            FedATConfig(num_tiers=0)

    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = FedATServer(
            tiny_devices, test_set,
            FedATConfig(rounds=6, local_epochs=1, num_tiers=3),
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_fast_tier_updates_more_often(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(rounds=1, local_epochs=1, num_tiers=3))
        srv.fit()
        counts = srv._tier_update_counts
        # tier 0 is fastest (unit time 0.25), tier max is slowest (1.0)
        assert counts[0] > counts[max(counts)]

    def test_cross_tier_weights_favor_slow(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(local_epochs=1, num_tiers=2))
        dim = srv.trainer.dim
        srv._tier_models = {0: np.zeros(dim), 1: np.ones(dim)}
        srv._tier_update_counts = {0: 10, 1: 1}  # tier 0 updated often
        agg = srv._cross_tier_average(np.full(dim, 0.5))
        # slow tier (value 1) dominates: weight 10 vs 1.
        assert np.all(agg > 0.5)

    def test_single_tier_degenerates_to_sync(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(rounds=1, local_epochs=1, num_tiers=1))
        result = srv.fit()
        assert np.isfinite(result.final_weights).all()
