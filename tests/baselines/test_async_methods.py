"""Tests for TAFedAvg and FedAT (the asynchronous baselines)."""

import numpy as np
import pytest

from repro.baselines.fedat import FedATConfig, FedATServer
from repro.baselines.tafedavg import TAFedAvgConfig, TAFedAvgServer


class TestTAFedAvg:
    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            TAFedAvgConfig(alpha=0.0)
        with pytest.raises(ValueError):
            TAFedAvgConfig(alpha=1.5)

    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = TAFedAvgServer(
            tiny_devices, test_set,
            TAFedAvgConfig(rounds=6, local_epochs=1, alpha=0.2),
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_more_transfers_than_sync(self, tiny_devices, tiny_split):
        """Fast devices upload several times per round — async costs more
        server traffic than one down+up per participant."""
        _, test_set = tiny_split
        srv = TAFedAvgServer(tiny_devices, test_set,
                             TAFedAvgConfig(rounds=2, local_epochs=1))
        result = srv.fit()
        sync_cost = 2 * 2 * len(tiny_devices)
        assert result.history.server_transfers[-1] > sync_cost

    def test_upload_count_matches_schedule(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        from repro.simulation.engine import async_upload_schedule

        srv = TAFedAvgServer(tiny_devices, test_set,
                             TAFedAvgConfig(rounds=1, local_epochs=1))
        srv.fit()
        duration = max(d.unit_time for d in tiny_devices)
        expected_uploads = len(
            async_upload_schedule({d.device_id: d.unit_time for d in tiny_devices},
                                  duration)
        )
        assert srv.meter.server_up == expected_uploads

    def test_mixing_moves_global(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = TAFedAvgServer(tiny_devices, test_set,
                             TAFedAvgConfig(local_epochs=1, alpha=0.5))
        g = srv.global_weights.copy()
        new = srv.run_round(1, tiny_devices, g)
        assert not np.allclose(new, g)


class TestFedAT:
    def test_tier_validation(self):
        with pytest.raises(ValueError):
            FedATConfig(num_tiers=0)

    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = FedATServer(
            tiny_devices, test_set,
            FedATConfig(rounds=6, local_epochs=1, num_tiers=3),
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_fast_tier_updates_more_often(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(rounds=1, local_epochs=1, num_tiers=3))
        srv.fit()
        counts = srv._tier_update_counts
        # tier 0 is fastest (unit time 0.25), tier max is slowest (1.0)
        assert counts[0] > counts[max(counts)]

    def test_cross_tier_weights_favor_slow(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(local_epochs=1, num_tiers=2))
        dim = srv.trainer.dim
        srv._tier_models = {0: np.zeros(dim), 1: np.ones(dim)}
        srv._tier_update_counts = {0: 10, 1: 1}  # tier 0 updated often
        agg = srv._cross_tier_average(np.full(dim, 0.5))
        # slow tier (value 1) dominates: weight 10 vs 1.
        assert np.all(agg > 0.5)

    def test_single_tier_degenerates_to_sync(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(rounds=1, local_epochs=1, num_tiers=1))
        result = srv.fit()
        assert np.isfinite(result.final_weights).all()


class TestFedATTierStability:
    """Regression tests for the cross-round tier-state fix.

    The seed code keyed ``_tier_models``/``_tier_update_counts`` by the
    index of a *per-round* re-clustering of the participant list, so under
    partial participation the same key could mean a different device
    population each round (a fast-only round and a slow-only round both
    wrote key 0).  Tiers are now assigned once over the whole fleet.
    """

    def test_tier_assignment_is_fleet_wide_and_stable(self, tiny_devices,
                                                      tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(rounds=1, local_epochs=1, num_tiers=3))
        # unit times 0.25 / 0.5 / 1.0 -> three clean tiers, fastest first.
        by_tier = {}
        for dev in tiny_devices:
            by_tier.setdefault(srv.device_tier[dev.device_id], set()).add(
                dev.unit_time)
        assert by_tier == {0: {0.25}, 1: {0.5}, 2: {1.0}}

    def test_disjoint_rounds_write_disjoint_tier_keys(self, tiny_devices,
                                                      tiny_split):
        """A fast-only round and a slow-only round must not share tier state."""
        _, test_set = tiny_split

        fast = [d for d in tiny_devices if d.unit_time == 0.25]
        slow = [d for d in tiny_devices if d.unit_time == 1.0]

        class AlternatingSelection:
            expected_fraction = None

            def select(self, round_idx, devices, rng):
                return fast if round_idx % 2 == 1 else slow

        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(rounds=2, local_epochs=1, num_tiers=3))
        srv.selection_policy = AlternatingSelection()
        srv.fit()
        # Pre-fix both rounds clustered their own participants and wrote
        # key 0; now they land on the fleet-wide tier ids 0 and 2.
        assert set(srv._tier_models) == {0, 2}
        assert 0 < srv._tier_update_counts[0]
        assert 0 < srv._tier_update_counts[2]

    def test_half_participation_keys_stay_in_global_range(self, tiny_devices,
                                                          tiny_split):
        _, test_set = tiny_split
        srv = FedATServer(tiny_devices, test_set,
                          FedATConfig(rounds=6, local_epochs=1, num_tiers=3,
                                      participation=0.5, seed=3))
        result = srv.fit()
        assert np.isfinite(result.final_weights).all()
        global_tiers = set(srv.device_tier.values())
        assert set(srv._tier_models) <= global_tiers
        assert set(srv._tier_update_counts) <= global_tiers
