"""Tests for TAFedAvg's staleness-damped mixing (FedAsync-style)."""

import numpy as np
import pytest

from repro.baselines.tafedavg import TAFedAvgConfig, TAFedAvgServer


class TestStalenessConfig:
    def test_default_off(self):
        assert TAFedAvgConfig().staleness_exponent == 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            TAFedAvgConfig(staleness_exponent=-0.5)


class TestStalenessBehaviour:
    def test_staleness_changes_result(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        outs = {}
        for exp in (0.0, 1.0):
            srv = TAFedAvgServer(
                tiny_devices, test_set,
                TAFedAvgConfig(local_epochs=1, alpha=0.3,
                               staleness_exponent=exp, seed=4),
            )
            g = np.zeros(srv.trainer.dim)
            outs[exp] = srv.run_round(1, tiny_devices, g)
        assert not np.allclose(outs[0.0], outs[1.0])

    def test_fresh_uploads_not_damped(self, tiny_split, tiny_trainer):
        """A single device never sees a stale global (its view is always
        the latest version), so the exponent must not change anything."""
        from repro.datasets.partition import iid_partition
        from repro.device import make_devices

        train_set, test_set = tiny_split
        parts = iid_partition(train_set, 1, seed=0)
        outs = {}
        for exp in (0.0, 3.0):
            devices = make_devices(train_set, parts, np.array([0.25]), tiny_trainer)
            srv = TAFedAvgServer(
                devices, test_set,
                TAFedAvgConfig(local_epochs=1, alpha=0.3,
                               staleness_exponent=exp, seed=4),
            )
            g = np.zeros(srv.trainer.dim)
            outs[exp] = srv.run_round(1, devices, g)
        np.testing.assert_array_equal(outs[0.0], outs[3.0])

    def test_learns_with_staleness_on(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = TAFedAvgServer(
            tiny_devices, test_set,
            TAFedAvgConfig(rounds=6, local_epochs=1, alpha=0.3,
                           staleness_exponent=0.5),
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes
