"""Batched vs sequential training at the experiment level.

``device_batching`` is an execution strategy, not a semantic knob: for every
FedAvg-family method, environment and codec combination, ``"auto"`` must
reproduce ``"off"``'s run to 1e-12 (bitwise on BLAS builds whose
stacked-GEMM slices are exact — the common case, probed by
tests/nn/test_batched_sequential.py).  Methods the engine cannot batch
(per-event async, ring topologies, CNN models) silently keep the
sequential path.
"""

import json
import math
import pathlib

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, build_experiment, run_experiment

BASE = dict(
    dataset="mnist_like",
    num_devices=10,
    num_samples=500,
    rounds=2,
    participation=0.5,
    seed=1,
)


def _pair(**overrides):
    """(auto result, off result) for one spec point."""
    auto = run_experiment(
        ExperimentSpec(**BASE, **overrides, device_batching="auto")
    )
    off = run_experiment(
        ExperimentSpec(**BASE, **overrides, device_batching="off")
    )
    return auto, off


def _assert_equivalent(auto, off):
    np.testing.assert_allclose(
        auto.final_weights, off.final_weights, rtol=1e-12, atol=1e-12
    )
    # Everything that is not weight float ops must be *identical*: the
    # engine may not perturb selection, clocks, byte metering or epochs.
    assert auto.history.times == off.history.times
    assert auto.per_round_unit == off.per_round_unit
    assert auto.transport == off.transport


@pytest.mark.parametrize("method", ["fedavg", "fedprox", "tfedavg", "scaffold"])
@pytest.mark.parametrize("env", ["ideal", "wan"])
def test_methods_and_envs(method, env):
    auto, off = _pair(method=method, env=env)
    _assert_equivalent(auto, off)


@pytest.mark.parametrize("method", ["fedavg", "scaffold"])
def test_topk_codec(method):
    # Error feedback makes the codec stateful: equal wire bytes and 1e-12
    # weights over two rounds mean the batched path fed it identical
    # updates in identical order.
    auto, off = _pair(
        method=method, env="wan", codec="topk", codec_kwargs={"fraction": 0.2}
    )
    _assert_equivalent(auto, off)


def test_fedprox_anchor_is_exercised():
    # Guard against the fast path silently dropping the proximal term.
    fedavg, _ = _pair(method="fedavg")
    fedprox, _ = _pair(method="fedprox", method_kwargs={"mu": 0.5})
    assert not np.array_equal(fedavg.final_weights, fedprox.final_weights)


def test_auto_installs_engine_on_batchable_spec():
    server = build_experiment(ExperimentSpec(method="fedavg", **BASE))
    assert server.batched_trainer is not None


def test_off_keeps_sequential_path():
    server = build_experiment(
        ExperimentSpec(method="fedavg", **BASE, device_batching="off")
    )
    assert server.batched_trainer is None


def test_cnn_falls_back_to_sequential():
    spec = ExperimentSpec(
        method="fedavg",
        dataset="cifar10_like",
        model_family="cnn",
        num_devices=4,
        num_samples=120,
        rounds=1,
        seed=1,
    )
    server = build_experiment(spec)
    assert server.batched_trainer is None  # silently sequential, not an error


def test_mlp_on_image_data_batches():
    # build_model fronts the MLP with Flatten on (C, H, W) data; the engine
    # must accept that stack and match the sequential run.
    image = dict(
        dataset="cifar10_like", num_devices=6, num_samples=240, rounds=1, seed=1
    )
    auto = run_experiment(ExperimentSpec(method="fedavg", **image))
    off = run_experiment(
        ExperimentSpec(method="fedavg", **image, device_batching="off")
    )
    np.testing.assert_allclose(
        auto.final_weights, off.final_weights, rtol=1e-12, atol=1e-12
    )


def test_spec_rejects_unknown_mode():
    with pytest.raises(ValueError, match="device_batching"):
        ExperimentSpec(method="fedavg", **BASE, device_batching="sometimes")


def test_config_records_non_default_mode_only():
    auto, off = _pair(method="fedavg")
    assert "device_batching" not in auto.config
    assert off.config["device_batching"] == "off"


def test_sweepable_axis():
    from repro.campaign import sweep

    specs = sweep(
        ExperimentSpec(method="fedavg", **BASE),
        grid={"device_batching": ["auto", "off"]},
    )
    assert [s.device_batching for s in specs] == ["auto", "off"]
    accs = [run_experiment(s).final_accuracy for s in specs]
    assert accs[0] == accs[1]


GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "golden"


def test_golden_fedavg_within_tolerance_under_auto():
    """Goldens are pinned on the sequential path; ``"auto"`` must stay
    within the documented 1e-12 of them (equal on bitwise platforms)."""
    gold = json.loads((GOLDEN_DIR / "fedavg.json").read_text())
    result = run_experiment(
        ExperimentSpec(**{**gold["spec"], "device_batching": "auto"})
    )
    assert math.isclose(
        float(result.final_weights.sum()),
        gold["final_weights_sum"],
        rel_tol=1e-9,
    )
