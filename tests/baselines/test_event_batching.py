"""Equivalence guarantees of the million-device event engine.

Two independent axes, both of which must be observationally invisible:

* **Engine** — calendar queue vs the heap reference.  Whole event traces
  (every dispatched ``(time, kind, tag)``) must be identical.
* **Batching** — id-array events vs one event per device.  Traces differ
  by construction (packing changes the entries), so the comparison is on
  run observables: final weights, history, virtual time, meters, churn
  accounting.

Both axes are crossed with {fedasync, fedbuff} x {ideal, churn,
flaky_mobile} x faults on/off — the acceptance matrix of the calendar
queue + batched-event work.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, build_experiment

MATRIX = [
    (method, env, faults)
    for method in ("fedasync", "fedbuff")
    for env in ("ideal", "churn", "flaky_mobile")
    for faults in ("none", "compound")
]


def _run(method, env, faults, *, batching, engine, trace=False):
    kwargs = dict(
        method=method, num_samples=300, num_devices=10, rounds=5,
        local_epochs=1, seed=0, participation=1.0, env=env, faults=faults,
    )
    if method == "fedbuff":
        kwargs["buffer_goal"] = 3
    server = build_experiment(ExperimentSpec(**kwargs))
    server.event_batching = batching
    server.scheduler_engine = engine
    server.record_trace = trace
    result = server.fit()
    return server, result


@pytest.mark.parametrize("method,env,faults", MATRIX)
def test_calendar_engine_trace_identical_to_heap(method, env, faults):
    s_cal, _ = _run(method, env, faults, batching=True, engine="calendar",
                    trace=True)
    s_heap, _ = _run(method, env, faults, batching=True, engine="heap",
                     trace=True)
    assert s_cal.scheduler.trace == s_heap.scheduler.trace
    assert s_cal.scheduler.events_processed == s_heap.scheduler.events_processed


@pytest.mark.parametrize("method,env,faults", MATRIX)
def test_batched_events_match_per_device_observables(method, env, faults):
    s_b, r_b = _run(method, env, faults, batching=True, engine="calendar")
    s_p, r_p = _run(method, env, faults, batching=False, engine="heap")
    np.testing.assert_array_equal(r_b.final_weights, r_p.final_weights)
    assert r_b.history.accuracies == r_p.history.accuracies
    assert r_b.history.times == r_p.history.times
    assert r_b.history.server_transfers == r_p.history.server_transfers
    assert s_b.clock.now == s_p.clock.now
    assert s_b.meter.server_down == s_p.meter.server_down
    assert s_b.meter.server_up == s_p.meter.server_up
    assert s_b.unavailable_count == s_p.unavailable_count
    assert s_b._version == s_p._version


def test_fault_machinery_forces_per_device_events():
    """Arming a fault model disables batching regardless of the knob —
    per-member timer cancellation needs per-device handles."""
    server, _ = _run("fedasync", "ideal", "compound", batching=True,
                     engine="calendar")
    assert server._fault_machinery
    assert server._batch is False


def test_clean_path_batches_by_default():
    server, _ = _run("fedasync", "ideal", "none", batching=True,
                     engine="calendar")
    assert server._batch is True
