"""Tests for the SCAFFOLD baseline."""

import numpy as np
import pytest

from repro.baselines.scaffold import ScaffoldConfig, ScaffoldServer


class TestScaffold:
    def test_global_lr_validation(self):
        with pytest.raises(ValueError):
            ScaffoldConfig(global_lr=0.0)

    def test_learns(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        result = ScaffoldServer(
            tiny_devices, test_set, ScaffoldConfig(rounds=6, local_epochs=1)
        ).fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_double_transfer_cost(self, tiny_devices, tiny_split):
        """Model + control variate = 2 model units each way (Section 6.1)."""
        _, test_set = tiny_split
        srv = ScaffoldServer(tiny_devices, test_set,
                             ScaffoldConfig(rounds=2, local_epochs=1))
        result = srv.fit()
        assert result.history.server_transfers[-1] == 2 * 2 * 2 * len(tiny_devices)

    def test_variates_initialized_zero(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = ScaffoldServer(tiny_devices, test_set, ScaffoldConfig())
        np.testing.assert_array_equal(srv.server_variate, 0.0)
        for v in srv.device_variates.values():
            np.testing.assert_array_equal(v, 0.0)

    def test_variates_update_after_round(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = ScaffoldServer(tiny_devices, test_set,
                             ScaffoldConfig(local_epochs=1))
        g = srv.global_weights.copy()
        srv.run_round(1, tiny_devices, g)
        assert np.abs(srv.server_variate).sum() > 0
        for d in tiny_devices:
            assert np.abs(srv.device_variates[d.device_id]).sum() > 0

    def test_variate_mean_invariant(self, tiny_devices, tiny_split):
        """Server variate equals the participation-weighted mean shift:
        after a full-participation round, c == mean_i(c_i)."""
        _, test_set = tiny_split
        srv = ScaffoldServer(tiny_devices, test_set,
                             ScaffoldConfig(local_epochs=1))
        g = srv.global_weights.copy()
        srv.run_round(1, tiny_devices, g)
        mean_ci = np.mean(
            [srv.device_variates[d.device_id] for d in tiny_devices], axis=0
        )
        np.testing.assert_allclose(srv.server_variate, mean_ci, rtol=1e-8, atol=1e-12)

    def test_first_round_matches_uniform_fedavg_direction(
        self, tiny_devices, tiny_split
    ):
        """With zero variates the first round is plain (uniformly averaged)
        FedAvg: corrections cancel."""
        _, test_set = tiny_split
        srv = ScaffoldServer(tiny_devices, test_set,
                             ScaffoldConfig(local_epochs=1, seed=2))
        g = np.zeros(srv.trainer.dim)
        duration = srv.round_duration(tiny_devices)
        new = srv.run_round(1, tiny_devices, g)
        stack = np.stack(
            [
                d.trainer.train(
                    g,
                    d.shard,
                    srv.local_epochs_for(d, duration),
                    stream_key=(d.device_id, 1, 0),
                )[0]
                for d in tiny_devices
            ]
        )
        np.testing.assert_allclose(new, stack.mean(axis=0), rtol=1e-8, atol=1e-12)
