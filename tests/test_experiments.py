"""Tests for the high-level experiment assembly."""

import numpy as np
import pytest

from repro.experiments import (
    METHODS,
    ExperimentSpec,
    build_experiment,
    build_model,
    run_experiment,
)
from repro.datasets.synthetic import cifar10_like, mnist_like


def fast_spec(**kwargs):
    base = dict(
        method="fedhisyn",
        dataset="mnist_like",
        num_samples=400,
        num_devices=6,
        rounds=2,
        local_epochs=1,
        method_kwargs={"num_classes": 2},
    )
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestBuildModel:
    def test_mlp_on_flat(self):
        ds = mnist_like(num_samples=100, seed=0)
        m = build_model(ds, "mlp", "small", seed=0)
        out = m.forward(ds.x[:4], train=False)
        assert out.shape == (4, 10)

    def test_mlp_on_images_gets_flatten(self):
        ds = cifar10_like(num_samples=100, seed=0)
        m = build_model(ds, "mlp", "small", seed=0)
        out = m.forward(ds.x[:4], train=False)
        assert out.shape == (4, 10)

    def test_cnn_on_images(self):
        ds = cifar10_like(num_samples=100, seed=0)
        m = build_model(ds, "cnn", "small", seed=0)
        out = m.forward(ds.x[:4], train=False)
        assert out.shape == (4, 10)

    def test_cnn_on_flat_raises(self):
        ds = mnist_like(num_samples=100, seed=0)
        with pytest.raises(ValueError):
            build_model(ds, "cnn", "small", seed=0)

    def test_paper_preset_sizes(self):
        ds = mnist_like(num_samples=100, seed=0)
        m = build_model(ds, "mlp", "paper", seed=0)
        assert m.layers[0].out_features == 200

    def test_unknown_family_raises(self):
        ds = mnist_like(num_samples=100, seed=0)
        with pytest.raises(ValueError):
            build_model(ds, "transformer")


class TestBuildExperiment:
    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            build_experiment(fast_spec(method="fancyfl"))

    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_every_method_builds(self, method):
        spec = fast_spec(method=method, method_kwargs={})
        srv = build_experiment(spec)
        assert srv.method == method

    def test_device_count(self):
        srv = build_experiment(fast_spec(num_devices=9))
        assert len(srv.devices) == 9

    def test_iid_partition(self):
        srv = build_experiment(fast_spec(partition="iid"))
        sizes = [d.num_samples for d in srv.devices]
        assert max(sizes) - min(sizes) <= 1

    def test_het_ratio_mode(self):
        srv = build_experiment(fast_spec(het_ratio=4.0))
        times = np.array([d.unit_time for d in srv.devices])
        np.testing.assert_allclose(times.max() / times.min(), 4.0)


class TestRunExperiment:
    def test_returns_result_with_config(self):
        result = run_experiment(fast_spec())
        assert result.method == "fedhisyn"
        assert result.config["dataset"] == "mnist_like"
        assert result.config["partition"] == "dirichlet"
        assert len(result.history.rounds) == 2

    def test_with_method_preserves_setup(self):
        spec = fast_spec()
        other = spec.with_method("fedavg")
        assert other.method == "fedavg"
        assert other.dataset == spec.dataset
        assert other.seed == spec.seed

    def test_same_seed_same_result(self):
        a = run_experiment(fast_spec(seed=11))
        b = run_experiment(fast_spec(seed=11))
        np.testing.assert_array_equal(a.final_weights, b.final_weights)

    def test_different_seed_different_result(self):
        a = run_experiment(fast_spec(seed=1))
        b = run_experiment(fast_spec(seed=2))
        assert not np.array_equal(a.final_weights, b.final_weights)
