"""Tests for the high-level experiment assembly."""

import numpy as np
import pytest

from repro.experiments import (
    FLEET_PROFILES,
    METHODS,
    ExperimentSpec,
    build_experiment,
    build_model,
    run_experiment,
)
from repro.datasets.synthetic import cifar10_like, mnist_like


def fast_spec(**kwargs):
    base = dict(
        method="fedhisyn",
        dataset="mnist_like",
        num_samples=400,
        num_devices=6,
        rounds=2,
        local_epochs=1,
        method_kwargs={"num_classes": 2},
    )
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestBuildModel:
    def test_mlp_on_flat(self):
        ds = mnist_like(num_samples=100, seed=0)
        m = build_model(ds, "mlp", "small", seed=0)
        out = m.forward(ds.x[:4], train=False)
        assert out.shape == (4, 10)

    def test_mlp_on_images_gets_flatten(self):
        ds = cifar10_like(num_samples=100, seed=0)
        m = build_model(ds, "mlp", "small", seed=0)
        out = m.forward(ds.x[:4], train=False)
        assert out.shape == (4, 10)

    def test_cnn_on_images(self):
        ds = cifar10_like(num_samples=100, seed=0)
        m = build_model(ds, "cnn", "small", seed=0)
        out = m.forward(ds.x[:4], train=False)
        assert out.shape == (4, 10)

    def test_cnn_on_flat_raises(self):
        ds = mnist_like(num_samples=100, seed=0)
        with pytest.raises(ValueError):
            build_model(ds, "cnn", "small", seed=0)

    def test_paper_preset_sizes(self):
        ds = mnist_like(num_samples=100, seed=0)
        m = build_model(ds, "mlp", "paper", seed=0)
        assert m.layers[0].out_features == 200

    def test_unknown_family_raises(self):
        ds = mnist_like(num_samples=100, seed=0)
        with pytest.raises(ValueError):
            build_model(ds, "transformer")


class TestBuildExperiment:
    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            build_experiment(fast_spec(method="fancyfl"))

    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_every_method_builds(self, method):
        spec = fast_spec(method=method, method_kwargs={})
        srv = build_experiment(spec)
        assert srv.method == method

    def test_device_count(self):
        srv = build_experiment(fast_spec(num_devices=9))
        assert len(srv.devices) == 9

    def test_iid_partition(self):
        srv = build_experiment(fast_spec(partition="iid"))
        sizes = [d.num_samples for d in srv.devices]
        assert max(sizes) - min(sizes) <= 1

    def test_het_ratio_mode(self):
        srv = build_experiment(fast_spec(het_ratio=4.0))
        times = np.array([d.unit_time for d in srv.devices])
        np.testing.assert_allclose(times.max() / times.min(), 4.0)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"partition": "banana"},
            {"participation": 0.0},
            {"participation": 1.5},
            {"rounds": 0},
            {"num_devices": -1},
            {"units_low": 3, "units_high": 2},
            {"het_ratio": 0.5},
            {"model_preset": "huge"},
            {"model_family": "transformer"},
            {"selection": "psychic"},
            {"selection_fraction": 2.0},
            {"method_kwargs": "not-a-dict"},
        ],
    )
    def test_bad_field_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            fast_spec(**kwargs)

    def test_dict_round_trip(self):
        spec = fast_spec(het_ratio=4.0, selection="datasize")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        data = fast_spec().to_dict()
        data["warp_speed"] = 9
        with pytest.raises(ValueError, match="warp_speed"):
            ExperimentSpec.from_dict(data)


class TestSelectionWiring:
    def test_default_no_policy(self):
        srv = build_experiment(fast_spec())
        assert srv.selection_policy is None

    def test_selection_field_sets_policy(self):
        from repro.core.selection import FastestSelection

        srv = build_experiment(fast_spec(selection="fastest",
                                         selection_fraction=0.5))
        assert isinstance(srv.selection_policy, FastestSelection)
        assert srv.selection_policy.fraction == 0.5

    def test_selection_fraction_defaults_to_participation(self):
        srv = build_experiment(
            fast_spec(selection="datasize", participation=0.5)
        )
        assert srv.selection_policy.fraction == 0.5

    def test_selection_recorded_in_result(self):
        result = run_experiment(fast_spec(selection="fastest", rounds=1,
                                          selection_fraction=0.5))
        assert result.config["selection"] == "fastest"
        assert result.config["selection_fraction"] == 0.5

    def test_selection_fraction_normalizes_cost_unit(self):
        baseline = build_experiment(fast_spec())
        srv = build_experiment(fast_spec(selection="fastest",
                                         selection_fraction=0.5))
        # Cost normalizer follows what the policy actually admits, not the
        # (full) configured participation.
        assert srv.per_round_unit == pytest.approx(0.5 * baseline.per_round_unit)

    def test_fastest_selection_changes_participants(self):
        spec = fast_spec(selection="fastest", selection_fraction=0.5,
                         het_ratio=4.0)
        srv = build_experiment(spec)
        chosen = srv.select_participants(1)
        assert len(chosen) == 3  # half of 6 devices
        slowest = max(srv.devices, key=lambda d: d.unit_time)
        assert slowest not in chosen


class TestRunExperiment:
    def test_returns_result_with_config(self):
        result = run_experiment(fast_spec())
        assert result.method == "fedhisyn"
        assert result.config["dataset"] == "mnist_like"
        assert result.config["partition"] == "dirichlet"
        assert len(result.history.rounds) == 2

    def test_with_method_preserves_setup(self):
        spec = fast_spec()
        other = spec.with_method("fedavg")
        assert other.method == "fedavg"
        assert other.dataset == spec.dataset
        assert other.seed == spec.seed

    def test_same_seed_same_result(self):
        a = run_experiment(fast_spec(seed=11))
        b = run_experiment(fast_spec(seed=11))
        np.testing.assert_array_equal(a.final_weights, b.final_weights)

    def test_different_seed_different_result(self):
        a = run_experiment(fast_spec(seed=1))
        b = run_experiment(fast_spec(seed=2))
        assert not np.array_equal(a.final_weights, b.final_weights)


class TestEnvironmentWiring:
    def test_default_env_is_ideal(self):
        srv = build_experiment(fast_spec())
        assert srv.env.is_ideal

    def test_env_field_reaches_server(self):
        srv = build_experiment(fast_spec(env="churn"))
        assert srv.env.name == "churn"
        assert not srv.env.is_ideal

    def test_env_kwargs_override(self):
        srv = build_experiment(fast_spec(env="lan",
                                         env_kwargs={"drop_prob": 0.2}))
        assert srv.env.network.drop_prob == 0.2

    def test_fedhisyn_engine_shares_env(self):
        srv = build_experiment(fast_spec(method="fedhisyn", env="satellite",
                                         method_kwargs={"num_classes": 2}))
        assert srv.engine.delay_model is srv.env.network
        assert srv.engine.drop_prob == srv.env.network.drop_prob

    def test_bad_env_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown environment"):
            fast_spec(env="the_moon")
        with pytest.raises(ValueError, match="env_kwargs"):
            fast_spec(env="wan", env_kwargs={"warp_speed": 9})
        with pytest.raises(ValueError, match="env_kwargs must be a dict"):
            fast_spec(env_kwargs="lossy")

    def test_env_spec_round_trips_through_json(self):
        import json as _json

        spec = fast_spec(env="flaky_mobile",
                         env_kwargs={"drop_prob": 0.1, "up_prob": 0.8})
        wire = _json.loads(_json.dumps(spec.to_dict()))
        assert ExperimentSpec.from_dict(wire) == spec

    def test_run_records_env_in_config(self):
        result = run_experiment(fast_spec(rounds=1, env="churn",
                                          env_kwargs={"up_prob": 0.8}))
        assert result.config["env"] == "churn"
        assert result.config["env_kwargs"] == {"up_prob": 0.8}

    def test_non_ideal_run_is_deterministic(self):
        a = run_experiment(fast_spec(rounds=2, env="flaky_mobile", seed=7))
        b = run_experiment(fast_spec(rounds=2, env="flaky_mobile", seed=7))
        assert a.history.to_dict() == b.history.to_dict()

    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_every_method_survives_flaky_mobile(self, method):
        spec = fast_spec(method=method, method_kwargs={}, rounds=2,
                         env="flaky_mobile",
                         env_kwargs={"drop_prob": 0.2, "up_prob": 0.7})
        result = run_experiment(spec)
        assert np.isfinite(result.final_weights).all()
        assert len(result.history.rounds) == 2

    def test_latency_env_slows_virtual_time(self):
        fast = run_experiment(fast_spec(rounds=2))
        slow = run_experiment(fast_spec(rounds=2, env="satellite"))
        assert slow.history.times[-1] > fast.history.times[-1]


class TestFleetProfiles:
    def test_profile_fills_population_defaults(self):
        spec = ExperimentSpec(fleet_profile="city")
        assert spec.num_devices == FLEET_PROFILES["city"]["num_devices"]
        assert spec.num_samples == FLEET_PROFILES["city"]["num_samples"]
        assert spec.participation == FLEET_PROFILES["city"]["participation"]

    def test_explicit_fields_beat_the_profile(self):
        """A field moved off its default keeps the explicit value, so
        grids over profile-covered fields still vary (a profile supplies
        defaults, it is not authoritative)."""
        spec = ExperimentSpec(fleet_profile="lab", num_devices=3)
        assert spec.num_devices == 3
        assert spec.num_samples == FLEET_PROFILES["lab"]["num_samples"]

    def test_profile_does_not_collapse_grids(self):
        from repro.campaign import sweep

        specs = sweep(
            ExperimentSpec(fleet_profile="city"),
            {"participation": [0.2, 0.5]},
        )
        assert [s.participation for s in specs] == [0.2, 0.5]
        assert all(
            s.num_devices == FLEET_PROFILES["city"]["num_devices"]
            for s in specs
        )

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="fleet_profile"):
            fast_spec(fleet_profile="galaxy")

    def test_profile_round_trips_through_json(self):
        import json as _json

        for spec in (ExperimentSpec(fleet_profile="city"),
                     fast_spec(fleet_profile="bench")):
            wire = _json.loads(_json.dumps(spec.to_dict()))
            assert ExperimentSpec.from_dict(wire) == spec

    def test_profile_is_sweepable(self):
        from repro.campaign import sweep

        specs = sweep(ExperimentSpec(), {"fleet_profile": ["bench", "lab"]})
        assert [s.num_devices for s in specs] == [
            FLEET_PROFILES["bench"]["num_devices"],
            FLEET_PROFILES["lab"]["num_devices"],
        ]

    def test_none_profile_leaves_fields_alone(self):
        spec = fast_spec(num_devices=7)
        assert spec.fleet_profile is None
        assert spec.num_devices == 7


class TestMegaProfile:
    def test_mega_fields(self):
        spec = ExperimentSpec(fleet_profile="mega")
        assert spec.num_devices == 1_000_000
        assert spec.partition == "contiguous"
        assert spec.participation == 0.001
        assert spec.test_fraction == 0.005

    def test_explicit_partition_wins_over_profile(self):
        spec = ExperimentSpec(fleet_profile="mega", partition="iid")
        assert spec.partition == "iid"

    def test_contiguous_spec_builds_and_runs(self):
        spec = ExperimentSpec(
            method="fedbuff", num_samples=400, num_devices=16, rounds=2,
            partition="contiguous", local_epochs=1, seed=0, buffer_goal=2,
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored == spec
        result = run_experiment(spec)
        assert result.final_accuracy >= 0.0

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError, match="partition"):
            ExperimentSpec(partition="bogus")
