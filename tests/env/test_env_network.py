"""Tests for repro.env.network: transfer times, drops, the delay protocol."""

import math

import numpy as np
import pytest

from repro.env.network import (
    SERVER,
    IdealNetwork,
    NetworkModel,
    SampledNetwork,
    UniformNetwork,
)


class TestIdealNetwork:
    def test_everything_is_free(self):
        net = IdealNetwork()
        assert net.is_instant
        assert net.drop_prob == 0.0
        assert net.transfer_time(SERVER, 0) == 0.0
        assert net.transfer_time(0, 1, model_units=5.0) == 0.0
        assert net.delay(0, 1) == 0.0


class TestUniformNetwork:
    def test_latency_plus_bandwidth(self):
        net = UniformNetwork(latency=0.1, bandwidth=4.0)
        assert net.transfer_time(SERVER, 0) == pytest.approx(0.35)
        # Two model units (SCAFFOLD): twice the serialization term.
        assert net.transfer_time(SERVER, 0, model_units=2.0) == pytest.approx(0.6)

    def test_infinite_bandwidth_is_latency_only(self):
        net = UniformNetwork(latency=0.2)
        assert net.transfer_time(SERVER, 3, model_units=100.0) == pytest.approx(0.2)

    def test_zero_bandwidth_guard(self):
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            UniformNetwork(bandwidth=0.0)
        with pytest.raises(ValueError, match="peer_bandwidth must be positive"):
            UniformNetwork(peer_bandwidth=-1.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            UniformNetwork(latency=-0.1)

    def test_drop_prob_validation(self):
        with pytest.raises(ValueError):
            UniformNetwork(drop_prob=1.0)
        with pytest.raises(ValueError):
            UniformNetwork(drop_prob=-0.1)

    def test_peer_overrides(self):
        net = UniformNetwork(latency=0.5, bandwidth=1.0,
                             peer_latency=0.0, peer_bandwidth=math.inf)
        assert net.transfer_time(SERVER, 0) == pytest.approx(1.5)
        assert net.transfer_time(0, 1) == 0.0  # peer hops free

    def test_delay_protocol_matches_transfer_time(self):
        """The LinkDelayModel view (ring engine) is the one-model time."""
        net = UniformNetwork(latency=0.1, bandwidth=2.0, peer_latency=0.3,
                             peer_bandwidth=2.0)
        assert net.delay(0, 1) == pytest.approx(0.8)
        row = net.delay_row(0, np.array([1, 2, 3]))
        assert row == pytest.approx([0.8, 0.8, 0.8])

    def test_is_instant_detection(self):
        assert UniformNetwork().is_instant
        assert not UniformNetwork(latency=0.1).is_instant
        assert not UniformNetwork(bandwidth=5.0).is_instant
        # Dropping alone does not make links slow.
        assert UniformNetwork(drop_prob=0.5).is_instant


class TestSampledNetwork:
    def test_deterministic_per_device(self):
        a = SampledNetwork(latency=0.1, latency_spread=0.5, seed=7)
        b = SampledNetwork(latency=0.1, latency_spread=0.5, seed=7)
        for dev in (0, 3, 11):
            assert a.transfer_time(SERVER, dev) == b.transfer_time(SERVER, dev)

    def test_spread_differentiates_devices(self):
        net = SampledNetwork(latency=0.1, latency_spread=1.0, seed=0)
        times = {net.transfer_time(SERVER, d) for d in range(8)}
        assert len(times) > 1

    def test_seed_changes_draws(self):
        a = SampledNetwork(latency=0.1, latency_spread=1.0, seed=0)
        b = SampledNetwork(latency=0.1, latency_spread=1.0, seed=1)
        assert any(
            a.transfer_time(SERVER, d) != b.transfer_time(SERVER, d)
            for d in range(8)
        )

    def test_bandwidth_spread(self):
        net = SampledNetwork(bandwidth=10.0, bandwidth_spread=1.0, seed=2)
        bws = {net.bandwidth(SERVER, d) for d in range(8)}
        assert len(bws) > 1
        assert all(bw > 0 for bw in bws)

    def test_delay_row_varies_per_destination(self):
        net = SampledNetwork(latency=0.2, latency_spread=1.0, seed=3)
        row = net.delay_row(0, np.array([1, 2, 3, 4]))
        assert len(set(np.round(row, 12))) > 1
        # delay_row agrees with scalar delay.
        assert row[0] == pytest.approx(net.delay(0, 1))


class TestProtocol:
    def test_base_class_is_abstract(self):
        net = NetworkModel()
        with pytest.raises(NotImplementedError):
            net.latency(0, 1)
        with pytest.raises(NotImplementedError):
            net.bandwidth(0, 1)
        assert not net.is_instant
