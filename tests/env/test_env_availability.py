"""Tests for repro.env.availability: churn models and their edge cases."""

import numpy as np
import pytest

from repro.env.availability import (
    AlwaysOn,
    BernoulliAvailability,
    CapacityCorrelatedAvailability,
    TraceAvailability,
)


class _Dev:
    def __init__(self, device_id, unit_time=1.0):
        self.device_id = device_id
        self.unit_time = unit_time


def fleet(n=6, times=None):
    times = times if times is not None else [1.0] * n
    return [_Dev(i, t) for i, t in enumerate(times)]


class TestAlwaysOn:
    def test_everyone_online_without_rng(self):
        model = AlwaysOn()
        assert model.always_on
        mask = model.available_mask(1, fleet(4), rng=None)  # rng untouched
        assert mask.all() and len(mask) == 4


class TestBernoulli:
    def test_up_prob_validation(self):
        with pytest.raises(ValueError):
            BernoulliAvailability(up_prob=0.0)
        with pytest.raises(ValueError):
            BernoulliAvailability(up_prob=1.5)

    def test_full_up_prob_never_draws(self):
        model = BernoulliAvailability(up_prob=1.0)
        assert model.available_mask(1, fleet(5), rng=None).all()

    def test_rate_roughly_matches(self):
        model = BernoulliAvailability(up_prob=0.3)
        rng = np.random.default_rng(0)
        total = sum(
            model.available_mask(r, fleet(10), rng).sum() for r in range(200)
        )
        assert 0.2 < total / 2000 < 0.4

    def test_reproducible_given_rng(self):
        model = BernoulliAvailability(up_prob=0.5)
        m1 = model.available_mask(1, fleet(8), np.random.default_rng(3))
        m2 = model.available_mask(1, fleet(8), np.random.default_rng(3))
        assert (m1 == m2).all()


class TestTrace:
    def test_round_indexing_is_one_based_and_cycles(self):
        model = TraceAvailability({0: [True, False]}, default=True)
        devs = fleet(2)
        assert model.available_mask(1, devs, None).tolist() == [True, True]
        assert model.available_mask(2, devs, None).tolist() == [False, True]
        assert model.available_mask(3, devs, None).tolist() == [True, True]

    def test_default_applies_to_untraced_devices(self):
        model = TraceAvailability({}, default=False)
        assert not model.available_mask(1, fleet(3), None).any()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TraceAvailability({0: []})


class TestCapacityCorrelated:
    def test_slow_devices_flakier(self):
        model = CapacityCorrelatedAvailability(up_prob=0.95, slow_penalty=0.9)
        devs = fleet(times=[0.1, 0.1, 0.1, 1.0, 1.0, 1.0])
        rng = np.random.default_rng(0)
        fast_up = slow_up = 0
        for r in range(300):
            mask = model.available_mask(r, devs, rng)
            fast_up += mask[:3].sum()
            slow_up += mask[3:].sum()
        assert fast_up > slow_up * 2

    def test_homogeneous_fleet_uses_base_prob(self):
        model = CapacityCorrelatedAvailability(up_prob=1.0, slow_penalty=0.5)
        mask = model.available_mask(1, fleet(5), np.random.default_rng(0))
        assert mask.all()  # equal times: nobody is "slow", p = up_prob = 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityCorrelatedAvailability(up_prob=1.2)
        with pytest.raises(ValueError):
            CapacityCorrelatedAvailability(slow_penalty=-0.1)


class TestDiurnal:
    def test_sinusoid_values(self):
        from repro.env.availability import DiurnalAvailability

        model = DiurnalAvailability(period=24.0, min_up=0.2, max_up=0.8)
        mid = (0.2 + 0.8) / 2
        assert model.up_prob(0) == pytest.approx(mid)  # sin(0) = 0
        assert model.up_prob(6) == pytest.approx(0.8)  # quarter period: peak
        assert model.up_prob(18) == pytest.approx(0.2)  # three-quarter: trough
        assert model.up_prob(24) == pytest.approx(mid)  # full period wraps

    def test_phase_shifts_the_cycle(self):
        from repro.env.availability import DiurnalAvailability

        base = DiurnalAvailability(period=24.0, phase=0.0)
        shifted = DiurnalAvailability(period=24.0, phase=0.25)
        assert shifted.up_prob(0) == pytest.approx(base.up_prob(6))

    def test_bounds_respected_everywhere(self):
        from repro.env.availability import DiurnalAvailability

        model = DiurnalAvailability(period=7.0, min_up=0.1, max_up=0.9)
        probs = [model.up_prob(t) for t in range(50)]
        assert all(0.1 - 1e-12 <= p <= 0.9 + 1e-12 for p in probs)

    def test_not_always_on(self):
        from repro.env.availability import DiurnalAvailability

        assert DiurnalAvailability().always_on is False

    def test_masks_track_the_cycle(self):
        from repro.env.availability import DiurnalAvailability

        model = DiurnalAvailability(period=24.0, min_up=0.05, max_up=0.95)
        rng = np.random.default_rng(0)
        devs = fleet(200)
        peak = model.available_mask(6, devs, rng).sum()
        trough = model.available_mask(18, devs, rng).sum()
        assert peak > trough * 3

    def test_object_and_ids_paths_draw_identically(self):
        from repro.env.availability import DiurnalAvailability

        model = DiurnalAvailability()
        ids = np.arange(10)
        times = np.ones(10)
        mask_obj = model.available_mask(5, fleet(10), np.random.default_rng(3))
        mask_ids = model.available_mask_ids(5, ids, times,
                                           np.random.default_rng(3))
        np.testing.assert_array_equal(mask_obj, mask_ids)

    def test_validation(self):
        from repro.env.availability import DiurnalAvailability

        with pytest.raises(ValueError):
            DiurnalAvailability(period=0.0)
        with pytest.raises(ValueError):
            DiurnalAvailability(min_up=0.9, max_up=0.5)
        with pytest.raises(ValueError):
            DiurnalAvailability(max_up=1.5)

    def test_registry_preset_and_kind(self):
        from repro.env.availability import DiurnalAvailability
        from repro.env.registry import AVAILABILITY_KINDS, make_environment

        assert "diurnal" in AVAILABILITY_KINDS
        env = make_environment("diurnal", period=12.0, min_up=0.3)
        assert isinstance(env.availability, DiurnalAvailability)
        assert env.availability.period == 12.0
        assert env.availability.min_up == 0.3

    def test_runs_end_to_end(self):
        from repro.experiments import ExperimentSpec, run_experiment

        result = run_experiment(ExperimentSpec(
            method="fedavg", rounds=3, num_devices=8, num_samples=400,
            env="diurnal", env_kwargs={"period": 4.0}))
        assert len(result.history.accuracies) == 3


class TestTraceVectorizedPath:
    """The streamed array form of TraceAvailability must agree with the
    per-device object path on every (round, id-set) combination."""

    def _model(self):
        return TraceAvailability(
            {0: [True, False], 3: [False], 7: [True, True, False]},
            default=True,
        )

    def test_matches_object_path_across_rounds(self):
        model = self._model()
        ids = np.arange(9, dtype=np.intp)
        devs = fleet(9)
        for r in range(1, 8):
            np.testing.assert_array_equal(
                model.available_mask_ids(r, ids, np.ones(9), rng=None),
                model.available_mask(r, devs, rng=None),
            )

    def test_subset_and_unsorted_id_arrays(self):
        model = self._model()
        for ids in ([3, 7], [7, 0, 3], [8, 2], [5, 1, 0, 7, 3], [3]):
            ids_arr = np.asarray(ids, dtype=np.intp)
            devs = [_Dev(i) for i in ids]
            for r in (1, 2, 3, 4):
                np.testing.assert_array_equal(
                    model.available_mask_ids(
                        r, ids_arr, np.ones(len(ids)), rng=None
                    ),
                    model.available_mask(r, devs, rng=None),
                )

    def test_traced_ids_absent_from_cohort(self):
        """Traced devices outside the id array must not corrupt the mask
        (searchsorted rows are clipped and verified by value)."""
        model = TraceAvailability({50: [False], 99: [False]}, default=True)
        ids = np.array([1, 2, 3], dtype=np.intp)
        mask = model.available_mask_ids(1, ids, np.ones(3), rng=None)
        assert mask.all()

    def test_default_false_with_sparse_traces(self):
        model = TraceAvailability({2: [True]}, default=False)
        mask = model.available_mask_ids(
            1, np.array([0, 2, 4], dtype=np.intp), np.ones(3), rng=None
        )
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_trace_cycling_in_flat_block(self):
        """Traces of different lengths cycle independently through the
        shared flat block's modular gather."""
        model = TraceAvailability({0: [True, False, False], 1: [True, False]})
        ids = np.array([0, 1], dtype=np.intp)
        got = [
            model.available_mask_ids(r, ids, np.ones(2), rng=None).tolist()
            for r in range(1, 7)
        ]
        assert got == [
            [True, True], [False, False], [False, True],
            [True, False], [False, True], [False, False],
        ]
