"""Tests for repro.env.availability: churn models and their edge cases."""

import numpy as np
import pytest

from repro.env.availability import (
    AlwaysOn,
    BernoulliAvailability,
    CapacityCorrelatedAvailability,
    TraceAvailability,
)


class _Dev:
    def __init__(self, device_id, unit_time=1.0):
        self.device_id = device_id
        self.unit_time = unit_time


def fleet(n=6, times=None):
    times = times if times is not None else [1.0] * n
    return [_Dev(i, t) for i, t in enumerate(times)]


class TestAlwaysOn:
    def test_everyone_online_without_rng(self):
        model = AlwaysOn()
        assert model.always_on
        mask = model.available_mask(1, fleet(4), rng=None)  # rng untouched
        assert mask.all() and len(mask) == 4


class TestBernoulli:
    def test_up_prob_validation(self):
        with pytest.raises(ValueError):
            BernoulliAvailability(up_prob=0.0)
        with pytest.raises(ValueError):
            BernoulliAvailability(up_prob=1.5)

    def test_full_up_prob_never_draws(self):
        model = BernoulliAvailability(up_prob=1.0)
        assert model.available_mask(1, fleet(5), rng=None).all()

    def test_rate_roughly_matches(self):
        model = BernoulliAvailability(up_prob=0.3)
        rng = np.random.default_rng(0)
        total = sum(
            model.available_mask(r, fleet(10), rng).sum() for r in range(200)
        )
        assert 0.2 < total / 2000 < 0.4

    def test_reproducible_given_rng(self):
        model = BernoulliAvailability(up_prob=0.5)
        m1 = model.available_mask(1, fleet(8), np.random.default_rng(3))
        m2 = model.available_mask(1, fleet(8), np.random.default_rng(3))
        assert (m1 == m2).all()


class TestTrace:
    def test_round_indexing_is_one_based_and_cycles(self):
        model = TraceAvailability({0: [True, False]}, default=True)
        devs = fleet(2)
        assert model.available_mask(1, devs, None).tolist() == [True, True]
        assert model.available_mask(2, devs, None).tolist() == [False, True]
        assert model.available_mask(3, devs, None).tolist() == [True, True]

    def test_default_applies_to_untraced_devices(self):
        model = TraceAvailability({}, default=False)
        assert not model.available_mask(1, fleet(3), None).any()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            TraceAvailability({0: []})


class TestCapacityCorrelated:
    def test_slow_devices_flakier(self):
        model = CapacityCorrelatedAvailability(up_prob=0.95, slow_penalty=0.9)
        devs = fleet(times=[0.1, 0.1, 0.1, 1.0, 1.0, 1.0])
        rng = np.random.default_rng(0)
        fast_up = slow_up = 0
        for r in range(300):
            mask = model.available_mask(r, devs, rng)
            fast_up += mask[:3].sum()
            slow_up += mask[3:].sum()
        assert fast_up > slow_up * 2

    def test_homogeneous_fleet_uses_base_prob(self):
        model = CapacityCorrelatedAvailability(up_prob=1.0, slow_penalty=0.5)
        mask = model.available_mask(1, fleet(5), np.random.default_rng(0))
        assert mask.all()  # equal times: nobody is "slow", p = up_prob = 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityCorrelatedAvailability(up_prob=1.2)
        with pytest.raises(ValueError):
            CapacityCorrelatedAvailability(slow_penalty=-0.1)
