"""Tests for the Environment combiner and the preset registry."""

import math

import numpy as np
import pytest

from repro.env import (
    AlwaysOn,
    BernoulliAvailability,
    Environment,
    IdealNetwork,
    UniformNetwork,
    available_environments,
    environment_entries,
    make_environment,
)


class _Dev:
    def __init__(self, device_id, unit_time=1.0):
        self.device_id = device_id
        self.unit_time = unit_time


class TestEnvironment:
    def test_ideal_is_ideal(self):
        env = Environment.ideal()
        assert env.is_ideal
        assert env.server_transfer_time([_Dev(0), _Dev(1)]) == 0.0

    def test_non_ideal_detection(self):
        assert not Environment(UniformNetwork(latency=0.1)).is_ideal
        assert not Environment(UniformNetwork(drop_prob=0.1)).is_ideal
        assert not Environment(availability=BernoulliAvailability(0.5)).is_ideal

    def test_server_transfer_time_is_slowest_link(self):
        env = Environment(UniformNetwork(latency=0.1, bandwidth=2.0))
        devs = [_Dev(0), _Dev(1)]
        assert env.server_transfer_time(devs) == pytest.approx(0.6)
        assert env.server_transfer_time(devs, model_units=2.0) == pytest.approx(1.1)
        assert env.server_transfer_time([]) == 0.0

    def test_available_never_empty(self):
        """An all-offline round falls back to one rng-chosen participant."""

        class _Nobody(BernoulliAvailability):
            def available_mask(self, round_idx, devices, rng):
                return np.zeros(len(devices), dtype=bool)

        env = Environment(availability=_Nobody(0.5))
        devs = [_Dev(i) for i in range(5)]
        online = env.available(1, devs, np.random.default_rng(0))
        assert len(online) == 1 and online[0] in devs

    def test_always_on_returns_devices_unchanged(self):
        env = Environment.ideal()
        devs = [_Dev(i) for i in range(3)]
        assert env.available(1, devs, rng=None) == devs

    def test_type_validation(self):
        with pytest.raises(ValueError, match="NetworkModel"):
            Environment(network="wan")
        with pytest.raises(ValueError, match="AvailabilityModel"):
            Environment(availability="always")


class TestRegistry:
    def test_required_presets_exist(self):
        names = available_environments()
        for required in ("ideal", "lan", "wan", "flaky_mobile"):
            assert required in names
        assert len(names) >= 4

    def test_ideal_preset_is_bit_identity_safe(self):
        env = make_environment("ideal")
        assert env.is_ideal
        assert isinstance(env.availability, AlwaysOn)
        assert env.network.is_instant

    def test_presets_construct_and_describe(self):
        for entry in environment_entries():
            env = make_environment(entry.name)
            assert env.name == entry.name
            assert entry.description
            assert env.describe()

    def test_overrides_apply(self):
        env = make_environment("lan", drop_prob=0.25, availability="bernoulli",
                               up_prob=0.5)
        assert env.network.drop_prob == 0.25
        assert isinstance(env.availability, BernoulliAvailability)
        assert env.availability.up_prob == 0.5

    def test_unknown_name_and_kwargs_raise(self):
        with pytest.raises(ValueError, match="unknown environment"):
            make_environment("the_moon")
        with pytest.raises(ValueError, match="env_kwargs"):
            make_environment("wan", warp_speed=9)
        with pytest.raises(ValueError):
            make_environment("ideal", availability="sometimes")

    def test_ideal_network_class(self):
        assert IdealNetwork().transfer_time(0, 1, 7.0) == 0.0
        assert math.isinf(IdealNetwork().bandwidth(0, 1))
