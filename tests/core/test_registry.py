"""Tests for the method registry."""

import pytest

from repro.core.registry import (
    METHOD_CONFIGS,
    METHOD_SERVERS,
    available_methods,
    get_method,
    method_entries,
    register_method,
)
from repro.core.server import FederatedServer, ServerConfig

BUILTINS = {
    "fedhisyn", "fedavg", "tfedavg", "tafedavg", "fedprox", "fedat", "scaffold",
}


class TestLookups:
    def test_builtins_registered(self):
        assert BUILTINS <= set(available_methods())

    def test_get_method_entry(self):
        entry = get_method("fedavg")
        assert entry.name == "fedavg"
        assert entry.server_cls.method == "fedavg"
        assert issubclass(entry.config_cls, ServerConfig)
        assert entry.description  # every builtin carries a one-liner

    def test_unknown_method_raises_with_known_set(self):
        with pytest.raises(ValueError, match="unknown method"):
            get_method("fancyfl")

    def test_entries_sorted(self):
        names = [e.name for e in method_entries()]
        assert names == sorted(names)


class TestViews:
    def test_views_match_registry(self):
        assert set(METHOD_SERVERS) == set(available_methods())
        assert set(METHOD_CONFIGS) == set(available_methods())
        assert METHOD_SERVERS["fedavg"] is get_method("fedavg").server_cls
        assert METHOD_CONFIGS["fedavg"] is get_method("fedavg").config_cls

    def test_experiments_methods_is_view(self):
        from repro.experiments import METHODS, _METHOD_CONFIGS

        assert METHODS is METHOD_SERVERS
        assert _METHOD_CONFIGS is METHOD_CONFIGS

    def test_view_is_read_only(self):
        with pytest.raises(TypeError):
            METHOD_SERVERS["hack"] = FederatedServer  # Mapping, not dict


class TestRegistration:
    def test_new_method_appears_in_views(self):
        from repro.core import registry as reg

        @register_method("testonly", config=ServerConfig)
        class TestOnlyServer(FederatedServer):
            method = "testonly"

        try:
            assert "testonly" in METHOD_SERVERS
            assert get_method("testonly").server_cls is TestOnlyServer
            from repro.experiments import METHODS

            assert "testonly" in METHODS  # the live-view payoff
        finally:
            del reg._REGISTRY["testonly"]

    def test_duplicate_name_raises(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_method("fedavg", config=ServerConfig)
            class ImposterServer(FederatedServer):
                method = "fedavg"

    def test_reregistering_same_class_is_idempotent(self):
        entry = get_method("fedavg")
        register_method(
            "fedavg", config=entry.config_cls, description=entry.description
        )(entry.server_cls)
        assert get_method("fedavg") == entry

    def test_module_reload_reregisters_cleanly(self):
        import importlib

        import repro.baselines.fedavg as fedavg_module
        from repro.core import registry as reg

        original = reg._REGISTRY["fedavg"]
        try:
            reloaded = importlib.reload(fedavg_module)  # fresh class objects
            assert get_method("fedavg").server_cls is reloaded.FedAvgServer
        finally:
            # Reload leaves every other importer holding the original class;
            # point the registry and the module back at it so later tests
            # see one consistent FedAvgServer.
            reg._REGISTRY["fedavg"] = original
            fedavg_module.FedAvgServer = original.server_cls
            fedavg_module.FedAvgConfig = original.config_cls

    @pytest.mark.parametrize("bad", ["", "Has Space", "CamelCase", "1leading"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError, match="lowercase identifier"):
            register_method(bad, config=ServerConfig)
