"""Tests for the FedHiSyn server (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.fedhisyn import FedHiSynConfig, FedHiSynServer


class TestFedHiSynConfig:
    def test_defaults(self):
        cfg = FedHiSynConfig()
        assert cfg.num_classes == 10
        assert cfg.ring_order == "small_to_large"
        assert cfg.aggregation == "uniform"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_classes=0),
            dict(ring_order="spiral"),
            dict(aggregation="median"),
            dict(combine="sum"),
            dict(round_length_multiplier=0.0),
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            FedHiSynConfig(**kwargs)


class TestFedHiSynServer:
    def make(self, devices, test_set, **kwargs):
        kwargs.setdefault("rounds", 3)
        kwargs.setdefault("num_classes", 3)
        kwargs.setdefault("local_epochs", 1)
        return FedHiSynServer(devices, test_set, FedHiSynConfig(**kwargs))

    def test_fit_improves_accuracy(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, rounds=6)
        result = srv.fit()
        assert result.final_accuracy > 1.5 / test_set.num_classes

    def test_transfer_accounting_per_round(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, rounds=2)
        result = srv.fit()
        n = len(tiny_devices)
        # synchronous: down + up per participant per round, nothing more.
        assert result.history.server_transfers[-1] == 2 * 2 * n

    def test_peer_transfers_recorded(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, rounds=1)
        srv.fit()
        assert srv.meter.peer > 0  # rings actually exchanged models

    def test_devices_never_idle(self, tiny_devices, tiny_split):
        """Every participant completes floor(R/t) units (>=1)."""
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, rounds=1)
        srv.fit()
        stats = srv.last_round_stats
        duration = max(d.unit_time for d in tiny_devices)
        for d in tiny_devices:
            expected = max(1, int(duration / d.unit_time + 1e-9))
            assert stats.units_completed[d.device_id] == expected

    def test_class_time_aggregation_runs(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, aggregation="class_time")
        result = srv.fit()
        assert np.isfinite(result.final_weights).all()

    def test_ring_order_variants_run(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        for order in ("small_to_large", "large_to_small", "random"):
            srv = self.make(tiny_devices, test_set, rounds=1, ring_order=order)
            result = srv.fit()
            assert np.isfinite(result.final_weights).all()

    def test_k_exceeding_participants_degrades_to_singletons(
        self, tiny_devices, tiny_split
    ):
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, rounds=1, num_classes=100)
        srv.fit()
        # distinct unit times in the fixture: 3 -> k-means can make at most
        # 3 classes; peer sends only within multi-member rings.
        assert srv.meter.peer >= 0

    def test_average_combine_mode(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, combine="average")
        result = srv.fit()
        assert np.isfinite(result.final_weights).all()

    def test_partial_participation(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = self.make(tiny_devices, test_set, participation=0.5, rounds=4)
        result = srv.fit()
        assert result.history.server_transfers[-1] < 4 * 2 * len(tiny_devices)

    def test_reproducible_given_seed(self, tiny_split, tiny_trainer):
        from repro.datasets.partition import iid_partition
        from repro.device import make_devices

        train_set, test_set = tiny_split
        parts = iid_partition(train_set, 6, seed=0)
        times = np.array([1.0, 1.0, 0.5, 0.5, 0.25, 0.25])

        def run():
            devices = make_devices(train_set, parts, times, tiny_trainer)
            srv = FedHiSynServer(
                devices,
                test_set,
                FedHiSynConfig(rounds=2, num_classes=2, local_epochs=1, seed=5),
            )
            w0 = np.zeros(tiny_trainer.dim)
            return srv.fit(initial_weights=w0)

        a, b = run(), run()
        np.testing.assert_array_equal(a.final_weights, b.final_weights)
        assert a.history.accuracies == b.history.accuracies
