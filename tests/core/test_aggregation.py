"""Aggregation tests including convex-combination properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    AGGREGATORS,
    class_time_weighted_average,
    coordinate_median,
    sample_weighted_average,
    trimmed_mean,
    uniform_average,
    weighted_average,
)


class TestUniformAverage:
    def test_mean(self):
        stack = np.array([[0.0, 2.0], [2.0, 4.0]])
        np.testing.assert_allclose(uniform_average(stack), [1.0, 3.0])

    def test_single_model_identity(self):
        stack = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(uniform_average(stack), stack[0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            uniform_average(np.empty((0, 3)))

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            uniform_average(np.zeros(3))


class TestWeightedAverage:
    def test_normalization(self):
        stack = np.array([[0.0], [10.0]])
        np.testing.assert_allclose(weighted_average(stack, [1, 4]), [8.0])

    def test_zero_weight_excluded(self):
        stack = np.array([[1.0], [99.0]])
        np.testing.assert_allclose(weighted_average(stack, [1.0, 0.0]), [1.0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((2, 1)), [-1.0, 2.0])

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((2, 1)), [0.0, 0.0])

    def test_weight_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((2, 1)), [1.0])

    @given(
        n=st.integers(min_value=1, max_value=10),
        d=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_convex_combination_bounds(self, n, d, seed):
        """Aggregate lies coordinate-wise within [min, max] of the models."""
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(n, d)) * 10
        weights = rng.uniform(0.01, 1.0, size=n)
        agg = weighted_average(stack, weights)
        assert np.all(agg >= stack.min(axis=0) - 1e-12)
        assert np.all(agg <= stack.max(axis=0) + 1e-12)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_scale_invariance(self, seed):
        """Scaling all weights by a constant changes nothing."""
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(5, 4))
        w = rng.uniform(0.1, 1.0, size=5)
        np.testing.assert_allclose(
            weighted_average(stack, w), weighted_average(stack, w * 37.0), rtol=1e-12
        )


class TestSampleWeighted:
    def test_eq3_weighting(self):
        stack = np.array([[0.0], [1.0]])
        np.testing.assert_allclose(
            sample_weighted_average(stack, np.array([30, 10])), [0.25]
        )


class TestCoordinateMedian:
    def test_median_per_coordinate(self):
        stack = np.array([[0.0, 5.0], [1.0, 1.0], [100.0, 3.0]])
        np.testing.assert_allclose(coordinate_median(stack), [1.0, 3.0])

    def test_robust_to_one_outlier(self):
        """One arbitrarily corrupted upload cannot drag the median out of
        the honest uploads' coordinate-wise range."""
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(5, 8))
        stack[0] = 1e9
        poisoned = coordinate_median(stack)
        honest = stack[1:]
        assert np.all(poisoned >= honest.min(axis=0))
        assert np.all(poisoned <= honest.max(axis=0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            coordinate_median(np.empty((0, 3)))


class TestTrimmedMean:
    def test_trims_both_tails(self):
        stack = np.array([[-1e9], [1.0], [2.0], [3.0], [1e9]])
        np.testing.assert_allclose(trimmed_mean(stack, 0.2), [2.0])

    def test_small_stack_degrades_to_mean(self):
        stack = np.array([[0.0], [4.0]])
        np.testing.assert_allclose(trimmed_mean(stack, 0.1), [2.0])

    def test_bad_fraction_raises(self):
        for bad in (-0.1, 0.5, 0.9):
            with pytest.raises(ValueError, match="trim_fraction"):
                trimmed_mean(np.zeros((4, 2)), bad)

    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_within_model_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(n, 4)) * 5
        for agg in (coordinate_median(stack), trimmed_mean(stack, 0.2)):
            assert np.all(agg >= stack.min(axis=0) - 1e-12)
            assert np.all(agg <= stack.max(axis=0) + 1e-12)


class TestAggregatorField:
    """The sweepable ExperimentSpec.aggregator axis on FedAvg."""

    def test_names_exported(self):
        assert set(AGGREGATORS) == {"sample", "uniform", "median",
                                    "trimmed_mean", "krum", "multi_krum"}

    def test_fedavg_config_validates(self):
        from repro.baselines.fedavg import FedAvgConfig

        with pytest.raises(ValueError, match="aggregator"):
            FedAvgConfig(aggregator="geometric_median")

    def test_spec_validates(self):
        from repro.experiments import ExperimentSpec

        with pytest.raises(ValueError, match="aggregator"):
            ExperimentSpec(aggregator="geometric_median")

    @pytest.mark.parametrize("aggregator", sorted(AGGREGATORS))
    def test_runs_end_to_end(self, aggregator):
        from repro.experiments import ExperimentSpec, run_experiment

        result = run_experiment(ExperimentSpec(
            method="fedavg", dataset="mnist_like", num_samples=200,
            num_devices=4, rounds=2, seed=0, aggregator=aggregator,
        ))
        assert np.isfinite(result.final_weights).all()
        assert result.config["aggregator"] == aggregator

    def test_aggregators_actually_differ(self):
        from repro.experiments import ExperimentSpec, run_experiment

        spec = dict(method="fedavg", dataset="mnist_like", num_samples=200,
                    num_devices=4, rounds=2, seed=0)
        sample = run_experiment(ExperimentSpec(**spec))
        median = run_experiment(ExperimentSpec(**spec, aggregator="median"))
        assert not np.array_equal(sample.final_weights, median.final_weights)


class TestClassTimeWeighted:
    def test_eq10_slow_class_weighs_more(self):
        stack = np.array([[0.0], [1.0]])
        # device 0 in fast class (mean time .1), device 1 slow (mean .9)
        agg = class_time_weighted_average(stack, np.array([0.1, 0.9]))
        np.testing.assert_allclose(agg, [0.9])

    def test_equal_times_is_uniform(self):
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            class_time_weighted_average(stack, np.ones(4)),
            uniform_average(stack),
            rtol=1e-12,
        )


class TestKrum:
    def _stack_with_outliers(self, num_honest=8, num_bad=2, dim=6, seed=0):
        rng = np.random.default_rng(seed)
        honest = 1.0 + 0.01 * rng.standard_normal((num_honest, dim))
        bad = -10.0 + 0.01 * rng.standard_normal((num_bad, dim))
        return np.vstack([honest, bad]), num_honest

    def test_outlier_never_selected(self):
        from repro.core.aggregation import krum, krum_scores

        stack, num_honest = self._stack_with_outliers()
        winner = krum(stack, num_malicious=2)
        # The winner sits in the honest cluster around +1.
        np.testing.assert_allclose(winner, np.ones_like(winner), atol=0.1)
        scores = krum_scores(stack, num_malicious=2)
        assert int(np.argmin(scores)) < num_honest

    def test_outliers_score_worst(self):
        from repro.core.aggregation import krum_scores

        stack, num_honest = self._stack_with_outliers()
        scores = krum_scores(stack, num_malicious=2)
        assert scores[num_honest:].min() > scores[:num_honest].max()

    def test_tie_breaks_to_lowest_index(self):
        from repro.core.aggregation import krum

        stack = np.tile(np.array([[2.0, 3.0]]), (4, 1))
        np.testing.assert_array_equal(krum(stack), stack[0])

    def test_single_model_identity(self):
        from repro.core.aggregation import krum, krum_scores, multi_krum

        stack = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_array_equal(krum(stack), stack[0])
        np.testing.assert_array_equal(multi_krum(stack), stack[0])
        np.testing.assert_array_equal(krum_scores(stack), [0.0])

    def test_small_stack_clamps_neighbor_count(self):
        """n <= f + 2 would give k <= 0; the clamp keeps k = 1."""
        from repro.core.aggregation import krum

        stack = np.array([[0.0, 0.0], [1.0, 1.0], [100.0, 100.0]])
        winner = krum(stack, num_malicious=5)
        # With one nearest neighbor each, an edge of the close pair wins.
        assert np.allclose(winner, stack[0]) or np.allclose(winner, stack[1])

    def test_multi_krum_m1_equals_krum(self):
        from repro.core.aggregation import krum, multi_krum

        stack, _ = self._stack_with_outliers(seed=3)
        np.testing.assert_array_equal(
            multi_krum(stack, num_malicious=2, m=1), krum(stack, num_malicious=2)
        )

    def test_multi_krum_averages_central_cluster(self):
        from repro.core.aggregation import multi_krum

        stack, num_honest = self._stack_with_outliers(seed=5)
        out = multi_krum(stack, num_malicious=2)  # m = 10 - 2 - 2 = 6
        np.testing.assert_allclose(out, stack[:num_honest].mean(axis=0),
                                   atol=0.05)

    def test_multi_krum_m_clamped_to_stack(self):
        from repro.core.aggregation import multi_krum, uniform_average

        stack = np.array([[0.0, 2.0], [2.0, 4.0]])
        np.testing.assert_allclose(
            multi_krum(stack, m=50), uniform_average(stack)
        )

    def test_negative_f_rejected(self):
        from repro.core.aggregation import krum_scores

        with pytest.raises(ValueError):
            krum_scores(np.ones((3, 2)), num_malicious=-1)

    def test_scores_invariant_to_translation(self):
        """Krum scores depend only on pairwise distances."""
        from repro.core.aggregation import krum_scores

        rng = np.random.default_rng(7)
        stack = rng.standard_normal((6, 4))
        shifted = stack + 42.0
        np.testing.assert_allclose(
            krum_scores(stack, 1), krum_scores(shifted, 1), atol=1e-8
        )

    def test_in_aggregators_tuple(self):
        assert "krum" in AGGREGATORS and "multi_krum" in AGGREGATORS
