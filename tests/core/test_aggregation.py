"""Aggregation tests including convex-combination properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    class_time_weighted_average,
    sample_weighted_average,
    uniform_average,
    weighted_average,
)


class TestUniformAverage:
    def test_mean(self):
        stack = np.array([[0.0, 2.0], [2.0, 4.0]])
        np.testing.assert_allclose(uniform_average(stack), [1.0, 3.0])

    def test_single_model_identity(self):
        stack = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(uniform_average(stack), stack[0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            uniform_average(np.empty((0, 3)))

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            uniform_average(np.zeros(3))


class TestWeightedAverage:
    def test_normalization(self):
        stack = np.array([[0.0], [10.0]])
        np.testing.assert_allclose(weighted_average(stack, [1, 4]), [8.0])

    def test_zero_weight_excluded(self):
        stack = np.array([[1.0], [99.0]])
        np.testing.assert_allclose(weighted_average(stack, [1.0, 0.0]), [1.0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((2, 1)), [-1.0, 2.0])

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((2, 1)), [0.0, 0.0])

    def test_weight_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((2, 1)), [1.0])

    @given(
        n=st.integers(min_value=1, max_value=10),
        d=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_convex_combination_bounds(self, n, d, seed):
        """Aggregate lies coordinate-wise within [min, max] of the models."""
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(n, d)) * 10
        weights = rng.uniform(0.01, 1.0, size=n)
        agg = weighted_average(stack, weights)
        assert np.all(agg >= stack.min(axis=0) - 1e-12)
        assert np.all(agg <= stack.max(axis=0) + 1e-12)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_scale_invariance(self, seed):
        """Scaling all weights by a constant changes nothing."""
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(5, 4))
        w = rng.uniform(0.1, 1.0, size=5)
        np.testing.assert_allclose(
            weighted_average(stack, w), weighted_average(stack, w * 37.0), rtol=1e-12
        )


class TestSampleWeighted:
    def test_eq3_weighting(self):
        stack = np.array([[0.0], [1.0]])
        np.testing.assert_allclose(
            sample_weighted_average(stack, np.array([30, 10])), [0.25]
        )


class TestClassTimeWeighted:
    def test_eq10_slow_class_weighs_more(self):
        stack = np.array([[0.0], [1.0]])
        # device 0 in fast class (mean time .1), device 1 slow (mean .9)
        agg = class_time_weighted_average(stack, np.array([0.1, 0.9]))
        np.testing.assert_allclose(agg, [0.9])

    def test_equal_times_is_uniform(self):
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(4, 3))
        np.testing.assert_allclose(
            class_time_weighted_average(stack, np.ones(4)),
            uniform_average(stack),
            rtol=1e-12,
        )
