"""Tests for the FederatedServer channel API (broadcast/collect/peer_send).

The channel owns everything the environment does to server↔device traffic:
metering, transfer-time clock charges, message drops and availability
filtering.  Method implementations are forbidden from touching the meter
directly — the last test enforces that at the source level.
"""

import pathlib
import re

import numpy as np
import pytest

from repro.baselines.fedavg import FedAvgServer
from repro.core.server import ServerConfig
from repro.env import (
    BernoulliAvailability,
    Environment,
    TraceAvailability,
    UniformNetwork,
)


def make_server(tiny_devices, tiny_split, env=None, **cfg):
    _, test_set = tiny_split
    config = ServerConfig(**{"rounds": 2, "local_epochs": 1, **cfg})
    return FedAvgServer(tiny_devices, test_set, config, env=env)


class TestMetering:
    def test_broadcast_meters_sends(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        got = srv.broadcast(tiny_devices)
        assert got == tiny_devices  # ideal: everyone receives
        assert srv.meter.server_down == len(tiny_devices)
        assert srv.meter.server_up == 0

    def test_collect_meters_and_returns_all_indices(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        arrived = srv.collect(tiny_devices)
        assert arrived == list(range(len(tiny_devices)))
        assert srv.meter.server_up == len(tiny_devices)

    def test_model_units_scale(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        srv.broadcast(tiny_devices, model_units=2.0)
        srv.collect(tiny_devices, model_units=2.0)
        assert srv.meter.server_down == 2.0 * len(tiny_devices)
        assert srv.meter.server_up == 2.0 * len(tiny_devices)

    def test_peer_send_meters(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        srv.peer_send(5)
        assert srv.meter.peer == 5

    def test_empty_calls_are_noops(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        assert srv.broadcast([]) == []
        assert srv.collect([]) == []
        assert srv.meter.server_total == 0
        assert srv.clock.now == 0.0

    def test_lost_messages_still_metered(self, tiny_devices, tiny_split):
        """The paper costs transmitted models; a dropped one was transmitted."""
        env = Environment(UniformNetwork(drop_prob=0.5))
        srv = make_server(tiny_devices, tiny_split, env=env)
        srv.broadcast(tiny_devices)
        assert srv.meter.server_down == len(tiny_devices)


class TestClockCharging:
    def test_ideal_charges_nothing(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        srv.broadcast(tiny_devices)
        srv.collect(tiny_devices)
        assert srv.clock.now == 0.0

    def test_transfer_time_advances_clock(self, tiny_devices, tiny_split):
        env = Environment(UniformNetwork(latency=0.1, bandwidth=2.0))
        srv = make_server(tiny_devices, tiny_split, env=env)
        srv.broadcast(tiny_devices)  # slowest link: 0.1 + 1/2
        assert srv.clock.now == pytest.approx(0.6)
        srv.collect(tiny_devices, model_units=2.0)  # 0.1 + 2/2
        assert srv.clock.now == pytest.approx(1.7)

    def test_round_time_includes_transfers(self, tiny_devices, tiny_split):
        """Round wall-clock = down-transfer + compute + up-transfer."""
        env = Environment(UniformNetwork(latency=0.25))
        srv = make_server(tiny_devices, tiny_split, env=env, rounds=1)
        result = srv.fit()
        compute = max(d.unit_time for d in tiny_devices)
        assert result.history.times[-1] == pytest.approx(compute + 0.5)


class TestDrops:
    def test_drops_reduce_deliveries(self, tiny_devices, tiny_split):
        env = Environment(UniformNetwork(drop_prob=0.5))
        srv = make_server(tiny_devices, tiny_split, env=env)
        delivered = [len(srv.broadcast(tiny_devices)) for _ in range(50)]
        assert min(delivered) < len(tiny_devices)
        assert srv.dropped_messages > 0

    def test_ensure_one_guarantees_progress(self, tiny_devices, tiny_split):
        env = Environment(UniformNetwork(drop_prob=0.99))
        srv = make_server(tiny_devices, tiny_split, env=env)
        for _ in range(30):
            assert len(srv.broadcast(tiny_devices)) >= 1
            assert len(srv.collect(tiny_devices)) >= 1

    def test_event_level_calls_may_drop_everything(self, tiny_devices, tiny_split):
        env = Environment(UniformNetwork(drop_prob=0.99))
        srv = make_server(tiny_devices, tiny_split, env=env)
        outcomes = {len(srv.collect([tiny_devices[0]], ensure_one=False))
                    for _ in range(50)}
        assert 0 in outcomes

    def test_drop_sequence_reproducible(self, tiny_devices, tiny_split):
        def run():
            env = Environment(UniformNetwork(drop_prob=0.4))
            srv = make_server(tiny_devices, tiny_split, env=env)
            return [tuple(srv.collect(tiny_devices)) for _ in range(10)]

        assert run() == run()


class TestAvailability:
    def test_offline_devices_not_selected(self, tiny_devices, tiny_split):
        traces = {d.device_id: [False, True] for d in tiny_devices[:4]}
        env = Environment(availability=TraceAvailability(traces))
        srv = make_server(tiny_devices, tiny_split, env=env)
        round1 = srv.select_participants(1)
        round2 = srv.select_participants(2)
        assert [d.device_id for d in round1] == [d.device_id for d in tiny_devices[4:]]
        assert len(round2) == len(tiny_devices)
        assert srv.unavailable_count == 4

    def test_all_offline_round_keeps_one(self, tiny_devices, tiny_split):
        traces = {d.device_id: [False] for d in tiny_devices}
        env = Environment(availability=TraceAvailability(traces))
        srv = make_server(tiny_devices, tiny_split, env=env)
        participants = srv.select_participants(1)
        assert len(participants) == 1

    def test_churn_composes_with_participation(self, tiny_devices, tiny_split):
        env = Environment(availability=BernoulliAvailability(0.5))
        srv = make_server(tiny_devices, tiny_split, env=env, participation=0.5)
        sizes = [len(srv.select_participants(r)) for r in range(1, 40)]
        assert all(1 <= s <= len(tiny_devices) for s in sizes)
        # Two thinning stages: usually well below half the fleet.
        assert np.mean(sizes) < 0.5 * len(tiny_devices)

    def test_fit_survives_heavy_churn(self, tiny_devices, tiny_split):
        env = Environment(UniformNetwork(drop_prob=0.3),
                          BernoulliAvailability(0.4))
        srv = make_server(tiny_devices, tiny_split, env=env, rounds=3)
        result = srv.fit()
        assert np.isfinite(result.final_weights).all()
        assert len(result.history.rounds) == 3


class TestNoDirectMeterCalls:
    def test_method_files_use_channel_api_only(self):
        """Acceptance criterion: no method file records transfers directly."""
        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        method_files = [
            *(src / "baselines").glob("*.py"),
            src / "core" / "fedhisyn.py",
        ]
        assert len(method_files) >= 8  # 6 baselines + __init__ + fedhisyn
        pattern = re.compile(r"meter\.record_")
        for path in method_files:
            assert not pattern.search(path.read_text()), (
                f"{path.name} bypasses the channel API with a direct "
                "meter.record_* call"
            )
