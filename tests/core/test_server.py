"""Tests for the shared FederatedServer scaffolding."""

import numpy as np
import pytest

from repro.core.server import FederatedServer, ServerConfig
from repro.nn.serialization import get_flat_params


class EchoServer(FederatedServer):
    """Trivial algorithm: leave the global model unchanged, one unit cost."""

    method = "echo"

    def run_round(self, round_idx, participants, global_weights):
        self.meter.record_download(len(participants))
        self.meter.record_upload(len(participants))
        self.clock.advance_by(self.round_duration(participants))
        return global_weights


class TestServerConfig:
    def test_defaults_valid(self):
        ServerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rounds=0),
            dict(participation=0.0),
            dict(participation=1.5),
            dict(local_epochs=0),
            dict(eval_every=0),
        ],
    )
    def test_invalid_raises(self, kwargs):
        with pytest.raises(ValueError):
            ServerConfig(**kwargs)


class TestFederatedServer:
    def test_requires_devices(self, tiny_split):
        _, test_set = tiny_split
        with pytest.raises(ValueError):
            EchoServer([], test_set)

    def test_shared_trainer_enforced(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        from repro.device.device import LocalTrainer
        from repro.nn.models import paper_mlp

        other = LocalTrainer(paper_mlp(12, 4, seed=9, hidden=(4, 3)))
        tiny_devices[0].trainer = other
        with pytest.raises(ValueError):
            EchoServer(tiny_devices, test_set)

    def test_full_participation_selects_all(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(participation=1.0))
        assert len(srv.select_participants(1)) == len(tiny_devices)

    def test_partial_participation_subset(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(participation=0.5, seed=0))
        sizes = [len(srv.select_participants(r)) for r in range(1, 30)]
        assert min(sizes) >= 1
        assert 2 <= np.mean(sizes) <= 6  # expectation is 4 of 8

    def test_selection_deterministic_per_round(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        a = EchoServer(tiny_devices, test_set, ServerConfig(participation=0.5, seed=3))
        b = EchoServer(tiny_devices, test_set, ServerConfig(participation=0.5, seed=3))
        for r in range(1, 5):
            assert [d.device_id for d in a.select_participants(r)] == [
                d.device_id for d in b.select_participants(r)
            ]

    def test_round_duration_is_slowest(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set)
        assert srv.round_duration(tiny_devices) == max(
            d.unit_time for d in tiny_devices
        )

    def test_fit_produces_history(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(rounds=4))
        result = srv.fit()
        assert result.method == "echo"
        assert list(result.history.rounds) == [1, 2, 3, 4]
        assert result.history.server_transfers[-1] == 4 * 2 * len(tiny_devices)

    def test_eval_every(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(rounds=5, eval_every=2))
        result = srv.fit()
        assert list(result.history.rounds) == [2, 4, 5]

    def test_initial_weights_override(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(rounds=1))
        w0 = np.zeros_like(get_flat_params(srv.trainer.model))
        result = srv.fit(initial_weights=w0)
        np.testing.assert_array_equal(result.final_weights, w0)

    def test_per_round_unit(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(participation=0.5))
        assert srv.per_round_unit == 2 * 0.5 * len(tiny_devices)

    def test_virtual_clock_advances(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(rounds=3))
        srv.fit()
        assert srv.clock.now == pytest.approx(
            3 * max(d.unit_time for d in tiny_devices)
        )
