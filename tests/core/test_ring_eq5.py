"""Tests for the full Eq. (5) ring construction with link delays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import build_ring, build_ring_eq5
from repro.device.network import MatrixDelay, UniformDelay


class TestBuildRingEq5:
    def test_uniform_delay_matches_small_to_large(self):
        """With equal delays the metric reduces to t_i: greedy from the
        fastest node reproduces the ascending order (ties by id)."""
        ids = [3, 1, 2]
        times = [0.9, 0.1, 0.5]
        eq5 = build_ring_eq5(ids, times, UniformDelay(0.2))
        s2l = build_ring(ids, times, order="small_to_large")
        assert eq5 == s2l

    def test_delay_overrides_speed(self):
        """A huge link delay diverts the ring even toward a slower node."""
        ids = [0, 1, 2]
        times = [0.1, 0.2, 0.3]
        # delay 0->1 enormous; 0->2 free: ring goes 0, 2, 1.
        d = np.array(
            [[0.0, 100.0, 0.0],
             [100.0, 0.0, 100.0],
             [0.0, 100.0, 0.0]]
        )
        ring = build_ring_eq5(ids, times, MatrixDelay(d))
        assert ring == [0, 2, 1]

    def test_permutation_invariant(self):
        ids = [10, 20, 30, 40]
        times = [0.4, 0.2, 0.3, 0.1]
        ring = build_ring_eq5(ids, times, UniformDelay(0.0))
        assert sorted(ring) == sorted(ids)

    def test_singleton_and_empty(self):
        assert build_ring_eq5([5], [0.1], UniformDelay()) == [5]
        assert build_ring_eq5([], [], UniformDelay()) == []

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_ring_eq5([1, 2], [0.1], UniformDelay())

    @given(
        n=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_valid_ring(self, n, seed):
        rng = np.random.default_rng(seed)
        ids = list(range(n))
        times = rng.uniform(0.1, 1.0, size=n)
        delays = rng.uniform(0.0, 0.5, size=(n, n))
        np.fill_diagonal(delays, 0.0)
        ring = build_ring_eq5(ids, times, MatrixDelay(delays))
        assert sorted(ring) == ids
        assert ring[0] == int(np.argmin(times))  # starts at the fastest
