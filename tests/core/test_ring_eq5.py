"""Tests for the full Eq. (5) ring construction with link delays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import build_ring, build_ring_eq5
from repro.device.network import MatrixDelay, UniformDelay


class TestBuildRingEq5:
    def test_uniform_delay_matches_small_to_large(self):
        """With equal delays the metric reduces to t_i: greedy from the
        fastest node reproduces the ascending order (ties by id)."""
        ids = [3, 1, 2]
        times = [0.9, 0.1, 0.5]
        eq5 = build_ring_eq5(ids, times, UniformDelay(0.2))
        s2l = build_ring(ids, times, order="small_to_large")
        assert eq5 == s2l

    def test_delay_overrides_speed(self):
        """A huge link delay diverts the ring even toward a slower node."""
        ids = [0, 1, 2]
        times = [0.1, 0.2, 0.3]
        # delay 0->1 enormous; 0->2 free: ring goes 0, 2, 1.
        d = np.array(
            [[0.0, 100.0, 0.0],
             [100.0, 0.0, 100.0],
             [0.0, 100.0, 0.0]]
        )
        ring = build_ring_eq5(ids, times, MatrixDelay(d))
        assert ring == [0, 2, 1]

    def test_permutation_invariant(self):
        ids = [10, 20, 30, 40]
        times = [0.4, 0.2, 0.3, 0.1]
        ring = build_ring_eq5(ids, times, UniformDelay(0.0))
        assert sorted(ring) == sorted(ids)

    def test_singleton_and_empty(self):
        assert build_ring_eq5([5], [0.1], UniformDelay()) == [5]
        assert build_ring_eq5([], [], UniformDelay()) == []

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_ring_eq5([1, 2], [0.1], UniformDelay())

    @given(
        n=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_valid_ring(self, n, seed):
        rng = np.random.default_rng(seed)
        ids = list(range(n))
        times = rng.uniform(0.1, 1.0, size=n)
        delays = rng.uniform(0.0, 0.5, size=(n, n))
        np.fill_diagonal(delays, 0.0)
        ring = build_ring_eq5(ids, times, MatrixDelay(delays))
        assert sorted(ring) == ids
        assert ring[0] == int(np.argmin(times))  # starts at the fastest


def brute_force_eq5(device_ids, unit_times, delay_model):
    """The pre-vectorization greedy loop: Python min() over candidates."""
    ids = list(device_ids)
    times = np.asarray(unit_times, dtype=np.float64)
    if len(ids) <= 1:
        return ids
    remaining = set(range(len(ids)))
    current = int(np.argmin(times))
    order = [current]
    remaining.discard(current)
    while remaining:
        nxt = min(
            remaining,
            key=lambda j: (delay_model.delay(ids[current], ids[j]) + times[j], ids[j]),
        )
        order.append(nxt)
        remaining.discard(nxt)
        current = nxt
    return [ids[i] for i in order]


class TestVectorizedMatchesBruteForce:
    """The argmin-over-delay-row construction must pick exactly the hops
    the original O(n^2) Python min() picked, ties included."""

    @given(
        n=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_identical_rings(self, n, seed):
        rng = np.random.default_rng(seed)
        ids = list(rng.permutation(10_000)[:n])
        times = rng.uniform(0.1, 1.0, size=n)
        delays = rng.uniform(0.0, 0.5, size=(n, n))
        np.fill_diagonal(delays, 0.0)
        # Index the matrix by position, not id, via a wrapper.
        pos = {i: k for k, i in enumerate(ids)}

        class PosDelay(MatrixDelay):
            def delay(self, src, dst):
                return float(self.matrix[pos[src], pos[dst]])

            def delay_row(self, src, dsts):
                cols = np.array([pos[int(d)] for d in dsts])
                return self.matrix[pos[src], cols]

        model = PosDelay(delays)
        assert build_ring_eq5(ids, times, model) == brute_force_eq5(
            ids, times, model
        )

    def test_tie_breaks_by_device_id(self):
        """Equal scores must resolve to the smallest device id."""
        ids = [42, 7, 19]
        times = [0.5, 0.2, 0.5]  # 42 and 19 tie after starting at 7
        ring = build_ring_eq5(ids, times, UniformDelay(0.3))
        assert ring == [7, 19, 42]

    def test_base_class_delay_row_matches_scalar(self):
        from repro.device.network import LinkDelayModel

        class Affine(LinkDelayModel):
            def delay(self, src, dst):
                return 0.1 * src + 0.01 * dst

        m = Affine()
        dsts = np.array([3, 1, 4])
        np.testing.assert_allclose(
            m.delay_row(2, dsts), [m.delay(2, 3), m.delay(2, 1), m.delay(2, 4)]
        )
