"""Tests for capacity clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import cluster_by_capacity, equal_width_bins, kmeans_1d


class TestKmeans1d:
    def test_separated_clusters_found(self):
        values = np.array([1.0, 1.1, 0.9, 10.0, 10.2, 9.8])
        labels, centers = kmeans_1d(values, 2)
        assert set(labels[:3]) != set(labels[3:])
        np.testing.assert_allclose(sorted(centers), [1.0, 10.0], atol=0.2)

    def test_centers_sorted(self):
        values = np.random.default_rng(0).uniform(0, 10, size=50)
        _, centers = kmeans_1d(values, 5)
        assert np.all(np.diff(centers) >= 0)

    def test_k_clipped_to_distinct(self):
        values = np.array([1.0, 1.0, 2.0])
        labels, centers = kmeans_1d(values, 10)
        assert centers.size == 2
        assert labels.max() <= 1

    def test_k_one(self):
        values = np.array([1.0, 5.0, 9.0])
        labels, centers = kmeans_1d(values, 1)
        np.testing.assert_array_equal(labels, 0)
        np.testing.assert_allclose(centers, [5.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([]), 2)

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), 0)

    @given(
        n=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_valid_labeling(self, n, k, seed):
        values = np.random.default_rng(seed).uniform(0.1, 1.0, size=n)
        labels, centers = kmeans_1d(values, k)
        assert labels.shape == (n,)
        assert labels.min() >= 0 and labels.max() < centers.size
        assert np.all(np.diff(centers) >= 0)
        # every point is assigned to its nearest center
        dist = np.abs(values[:, None] - centers[None, :])
        np.testing.assert_array_equal(labels, dist.argmin(axis=1))


class TestEqualWidthBins:
    def test_uniform_range_split(self):
        values = np.array([0.0, 0.5, 1.0, 1.5, 2.0])
        labels, centers = equal_width_bins(values, 2)
        np.testing.assert_array_equal(labels, [0, 0, 1, 1, 1])

    def test_degenerate_single_value(self):
        labels, centers = equal_width_bins(np.array([3.0, 3.0]), 4)
        np.testing.assert_array_equal(labels, 0)
        assert centers.size == 1

    def test_max_value_in_last_bin(self):
        values = np.linspace(0, 1, 11)
        labels, _ = equal_width_bins(values, 5)
        assert labels[-1] == 4


class TestClusterByCapacity:
    def test_partition_of_positions(self):
        times = np.random.default_rng(1).uniform(0.1, 1.0, size=30)
        classes = cluster_by_capacity(times, 4)
        allpos = np.concatenate(classes)
        assert sorted(allpos) == list(range(30))

    def test_fastest_class_first(self):
        times = np.array([1.0, 0.1, 0.12, 0.95])
        classes = cluster_by_capacity(times, 2)
        assert times[classes[0]].mean() < times[classes[1]].mean()

    def test_k_larger_than_n(self):
        times = np.array([0.5, 0.7])
        classes = cluster_by_capacity(times, 10)
        assert len(classes) == 2

    def test_equal_width_method(self):
        times = np.linspace(0.1, 1.0, 20)
        classes = cluster_by_capacity(times, 3, method="equal_width")
        assert sum(c.size for c in classes) == 20

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            cluster_by_capacity(np.array([1.0]), 1, method="dbscan")

    def test_classes_are_time_contiguous(self):
        """1-D k-means classes never interleave: the slowest member of a
        faster class is faster than the fastest member of a slower class."""
        times = np.random.default_rng(2).uniform(0.1, 1.0, size=50)
        classes = cluster_by_capacity(times, 5)
        for a, b in zip(classes, classes[1:]):
            assert times[a].max() <= times[b].min() + 1e-12
