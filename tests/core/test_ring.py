"""Tests for ring-topology construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ring import RING_ORDERS, build_ring, build_rings


class TestBuildRing:
    def test_small_to_large(self):
        ring = build_ring([10, 20, 30], [0.5, 0.1, 0.9], order="small_to_large")
        assert ring == [20, 10, 30]

    def test_large_to_small(self):
        ring = build_ring([10, 20, 30], [0.5, 0.1, 0.9], order="large_to_small")
        assert ring == [30, 10, 20]

    def test_random_is_permutation(self):
        ids = [1, 2, 3, 4, 5]
        ring = build_ring(ids, [0.1] * 5, order="random", seed=0)
        assert sorted(ring) == ids

    def test_random_seed_deterministic(self):
        ids = list(range(10))
        a = build_ring(ids, [0.1] * 10, order="random", seed=7)
        b = build_ring(ids, [0.1] * 10, order="random", seed=7)
        assert a == b

    def test_ties_break_by_id(self):
        ring = build_ring([5, 3, 4], [0.2, 0.2, 0.2], order="small_to_large")
        assert ring == [3, 4, 5]

    def test_singleton_passthrough(self):
        assert build_ring([7], [0.3]) == [7]

    def test_empty_passthrough(self):
        assert build_ring([], []) == []

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_ring([1, 2], [0.1])

    def test_unknown_order_raises(self):
        with pytest.raises(ValueError):
            build_ring([1, 2], [0.1, 0.2], order="zigzag")

    @given(
        n=st.integers(min_value=0, max_value=30),
        order=st.sampled_from(RING_ORDERS),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_permutation(self, n, order, seed):
        """Any ordering returns exactly the input ids, each once."""
        rng = np.random.default_rng(seed)
        ids = list(rng.choice(1000, size=n, replace=False))
        times = rng.uniform(0.1, 1.0, size=n)
        ring = build_ring(ids, times, order=order, seed=seed)
        assert sorted(ring) == sorted(ids)

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sorted_orderings_monotone(self, n, seed):
        rng = np.random.default_rng(seed)
        ids = list(range(n))
        times = rng.uniform(0.1, 1.0, size=n)
        s2l = build_ring(ids, times, order="small_to_large")
        assert all(
            times[a] <= times[b] for a, b in zip(s2l, s2l[1:])
        )
        l2s = build_ring(ids, times, order="large_to_small")
        assert l2s == s2l[::-1] or all(
            times[a] >= times[b] for a, b in zip(l2s, l2s[1:])
        )


class TestBuildRings:
    def test_one_ring_per_class(self):
        ids = [100, 101, 102, 103]
        times = np.array([0.1, 0.2, 0.8, 0.9])
        classes = [np.array([0, 1]), np.array([2, 3])]
        rings = build_rings(classes, ids, times)
        assert rings == [[100, 101], [102, 103]]

    def test_all_devices_covered_once(self):
        rng = np.random.default_rng(3)
        ids = list(range(20))
        times = rng.uniform(0.1, 1.0, 20)
        classes = [np.arange(0, 7), np.arange(7, 15), np.arange(15, 20)]
        rings = build_rings(classes, ids, times)
        flat = [d for r in rings for d in r]
        assert sorted(flat) == ids

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_rings([np.array([0])], [1, 2], np.array([0.1]))
