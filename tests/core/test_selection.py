"""Tests for device-selection policies."""

import numpy as np
import pytest

from repro.core.selection import (
    BernoulliSelection,
    DataSizeSelection,
    FastestSelection,
    make_policy,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestBernoulliSelection:
    def test_full_participation_all(self, tiny_devices, rng):
        chosen = BernoulliSelection(1.0).select(1, tiny_devices, rng)
        assert len(chosen) == len(tiny_devices)

    def test_partial_never_empty(self, tiny_devices, rng):
        policy = BernoulliSelection(0.05)
        for r in range(20):
            assert len(policy.select(r, tiny_devices, rng)) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliSelection(0.0)


class TestFastestSelection:
    def test_takes_fastest(self, tiny_devices, rng):
        chosen = FastestSelection(0.25).select(1, tiny_devices, rng)
        cutoff = max(d.unit_time for d in chosen)
        excluded = [d for d in tiny_devices if d not in chosen]
        assert all(d.unit_time >= cutoff for d in excluded)

    def test_deterministic(self, tiny_devices, rng):
        a = FastestSelection(0.5).select(1, tiny_devices, rng)
        b = FastestSelection(0.5).select(2, tiny_devices, rng)
        assert [d.device_id for d in a] == [d.device_id for d in b]

    def test_slow_devices_never_selected(self, tiny_devices, rng):
        """The paper's critique of FedCS-style selection: slow devices'
        data is simply never used."""
        policy = FastestSelection(0.25)
        slowest = max(tiny_devices, key=lambda d: d.unit_time)
        for r in range(10):
            assert slowest not in policy.select(r, tiny_devices, rng)


class TestDataSizeSelection:
    def test_count(self, tiny_devices, rng):
        chosen = DataSizeSelection(0.5).select(1, tiny_devices, rng)
        assert len(chosen) == round(0.5 * len(tiny_devices))

    def test_no_duplicates(self, tiny_devices, rng):
        chosen = DataSizeSelection(0.75).select(1, tiny_devices, rng)
        ids = [d.device_id for d in chosen]
        assert len(ids) == len(set(ids))

    def test_biased_toward_large_shards(self, tiny_devices):
        counts = {d.device_id: 0 for d in tiny_devices}
        policy = DataSizeSelection(0.25)
        rng = np.random.default_rng(1)
        for r in range(300):
            for d in policy.select(r, tiny_devices, rng):
                counts[d.device_id] += 1
        largest = max(tiny_devices, key=lambda d: d.num_samples)
        smallest = min(tiny_devices, key=lambda d: d.num_samples)
        assert counts[largest.device_id] > counts[smallest.device_id]


class TestMakePolicy:
    @pytest.mark.parametrize("name,cls", [
        ("bernoulli", BernoulliSelection),
        ("fastest", FastestSelection),
        ("datasize", DataSizeSelection),
    ])
    def test_factory(self, name, cls):
        assert isinstance(make_policy(name, 0.5), cls)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_policy("oracle", 0.5)


class TestServerIntegration:
    def test_policy_plugs_into_server(self, tiny_devices, tiny_split):
        from repro.core.server import ServerConfig
        from tests.core.test_server import EchoServer

        _, test_set = tiny_split
        srv = EchoServer(tiny_devices, test_set, ServerConfig(rounds=2))
        srv.selection_policy = FastestSelection(0.25)
        participants = srv.select_participants(1)
        assert len(participants) == 2  # 25% of 8
        times = [d.unit_time for d in participants]
        assert max(times) <= min(d.unit_time for d in tiny_devices
                                 if d not in participants)

    def test_fastest_selection_loses_data(self, tiny_devices, tiny_split):
        """End-to-end version of the paper's critique: training only on the
        fastest quartile underperforms full participation."""
        from repro.core.fedhisyn import FedHiSynConfig, FedHiSynServer

        _, test_set = tiny_split
        full = FedHiSynServer(
            tiny_devices, test_set,
            FedHiSynConfig(rounds=5, num_classes=3, local_epochs=1),
        ).fit()

        restricted_srv = FedHiSynServer(
            tiny_devices, test_set,
            FedHiSynConfig(rounds=5, num_classes=3, local_epochs=1),
        )
        restricted_srv.selection_policy = FastestSelection(0.25)
        restricted = restricted_srv.fit()
        assert full.final_accuracy >= restricted.final_accuracy - 0.05
