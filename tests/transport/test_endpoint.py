"""Two in-process endpoints over real loopback UDP: reliability layer."""

import time

import pytest

from repro.transport.endpoint import Endpoint
from repro.transport.frames import (
    MSG_HEARTBEAT,
    MSG_MODEL,
    MSG_UPDATE,
)


@pytest.fixture
def pair():
    a = Endpoint(rank=0, chunk_bytes=64, rto=0.02, max_attempts=10)
    b = Endpoint(rank=1, chunk_bytes=64, rto=0.02, max_attempts=10)
    yield a, b
    a.close()
    b.close()


def addr(ep):
    return ("127.0.0.1", ep.port)


def pump_both(a, b, until, deadline=5.0):
    end = time.monotonic() + deadline
    while not until():
        a.pump(timeout=0.005)
        b.pump(timeout=0.005)
        if time.monotonic() > end:
            raise AssertionError("endpoints never converged")


class TestControl:
    def test_control_datagram_dispatches(self, pair):
        a, b = pair
        got = []
        b.on(MSG_HEARTBEAT, lambda f, p, ad: got.append((f.rank, p)))
        a.send_control(MSG_HEARTBEAT, addr(b), payload=b"beat")
        pump_both(a, b, lambda: got)
        assert got == [(0, b"beat")]

    def test_unregistered_type_is_ignored(self, pair):
        a, b = pair
        a.send_control(MSG_HEARTBEAT, addr(b))
        b.pump(timeout=0.2)
        assert b.stats.datagrams_received == 1


class TestReliableTransfer:
    def test_multi_chunk_blob_reassembles(self, pair):
        a, b = pair
        blob = bytes(i % 251 for i in range(1000))
        got = []
        b.on(MSG_MODEL, lambda f, p, ad: got.append((f.round_idx, p)))
        a.send_blob(MSG_MODEL, addr(b), blob, round_idx=4, dim=125)
        pump_both(a, b, lambda: got)
        assert got == [(4, blob)]

    def test_acks_clear_pending_state(self, pair):
        a, b = pair
        b.on(MSG_MODEL, lambda f, p, ad: None)
        a.send_blob(MSG_MODEL, addr(b), b"x" * 500)
        assert a.pending_sends == 1
        pump_both(a, b, lambda: a.pending_sends == 0)

    def test_duplicate_transfer_delivers_once(self, pair):
        a, b = pair
        got = []
        b.on(MSG_UPDATE, lambda f, p, ad: got.append(p))
        # Same (type, round, device) sent twice — e.g. a worker retrying.
        a.send_blob(MSG_UPDATE, addr(b), b"u" * 100, round_idx=1, device_id=3)
        a.send_blob(MSG_UPDATE, addr(b), b"u" * 100, round_idx=1, device_id=3)
        pump_both(a, b, lambda: a.pending_sends == 0)
        assert got == [b"u" * 100]

    def test_empty_payload_travels(self, pair):
        a, b = pair
        got = []
        b.on(MSG_MODEL, lambda f, p, ad: got.append(p))
        a.send_blob(MSG_MODEL, addr(b), b"")
        pump_both(a, b, lambda: got)
        assert got == [b""]

    def test_payload_byte_accounting_is_exact(self, pair):
        a, b = pair
        blob = b"z" * 777
        b.on(MSG_MODEL, lambda f, p, ad: None)
        a.send_blob(MSG_MODEL, addr(b), blob)
        pump_both(a, b, lambda: a.pending_sends == 0)
        assert a.stats.payload_bytes_sent == 777
        assert b.stats.payload_bytes_received == 777


class TestRetransmission:
    def test_unpumped_receiver_triggers_retransmits(self, pair):
        a, b = pair
        a.send_blob(MSG_MODEL, addr(b), b"x" * 200)
        time.sleep(0.03)  # past rto with b never pumping
        a.pump(timeout=0.0)
        assert a.stats.retransmits > 0

    def test_dead_peer_abandons_after_max_attempts(self):
        a = Endpoint(rank=0, chunk_bytes=64, rto=0.005, max_attempts=3)
        try:
            dead = Endpoint(rank=1)
            port = dead.port
            dead.close()
            a.send_blob(MSG_MODEL, ("127.0.0.1", port), b"x" * 100)
            deadline = time.monotonic() + 2.0
            while a.pending_sends and time.monotonic() < deadline:
                a.pump(timeout=0.01)
            assert a.pending_sends == 0
            assert a.stats.reassembly_failures >= 1
        finally:
            a.close()

    def test_forget_peer_drops_outbound(self, pair):
        a, b = pair
        a.send_blob(MSG_MODEL, addr(b), b"x" * 500)
        assert a.pending_sends == 1
        a.forget_peer(addr(b), rank=1)
        assert a.pending_sends == 0
