"""The datagram frame format and chunk reassembly."""

import pytest

from repro.transport.frames import (
    HEADER_SIZE,
    MAGIC,
    MSG_ACK,
    MSG_HEARTBEAT,
    MSG_MODEL,
    MSG_NAMES,
    MSG_UPDATE,
    NO_DEVICE,
    RELIABLE_TYPES,
    Frame,
    Reassembler,
    chunk_payload,
    pack_frame,
    unpack_frame,
)


def frame(msg_type=MSG_MODEL, **kw):
    defaults = dict(
        kind=1, param=0, rank=3, round_idx=7, device_id=NO_DEVICE,
        dim=10, total_len=0, chunk_idx=0, chunk_count=1, payload=b"",
    )
    defaults.update(kw)
    return Frame(msg_type=msg_type, **defaults)


class TestHeader:
    def test_pack_unpack_round_trip(self):
        data = pack_frame(
            MSG_UPDATE, kind=2, param=4, rank=1, round_idx=9,
            device_id=5, dim=123, total_len=999, chunk_idx=3,
            chunk_count=7, payload=b"hello",
        )
        f = unpack_frame(data)
        assert f is not None
        assert (f.msg_type, f.kind, f.param, f.rank) == (MSG_UPDATE, 2, 4, 1)
        assert (f.round_idx, f.device_id, f.dim) == (9, 5, 123)
        assert (f.total_len, f.chunk_idx, f.chunk_count) == (999, 3, 7)
        assert f.payload == b"hello"

    def test_header_is_28_bytes(self):
        assert HEADER_SIZE == 28
        assert len(pack_frame(MSG_HEARTBEAT)) == HEADER_SIZE

    def test_rejects_short_bad_magic_and_unknown_type(self):
        assert unpack_frame(b"tiny") is None
        good = pack_frame(MSG_HEARTBEAT)
        assert unpack_frame(b"XXXX" + good[len(MAGIC):]) is None
        bad_type = bytearray(good)
        bad_type[4] = 200  # not in MSG_NAMES
        assert unpack_frame(bytes(bad_type)) is None

    def test_every_type_has_a_name_and_reliables_are_typed(self):
        assert RELIABLE_TYPES < set(MSG_NAMES)
        assert MSG_ACK in MSG_NAMES

    def test_transfer_key_scopes_by_type_rank_round_device(self):
        a = frame(rank=1, round_idx=2, device_id=3)
        assert a.transfer_key == (MSG_MODEL, 1, 2, 3)


class TestChunking:
    def test_split_sizes(self):
        parts = chunk_payload(b"x" * 25, 10)
        assert [len(p) for p in parts] == [10, 10, 5]

    def test_exact_multiple_and_empty(self):
        assert [len(p) for p in chunk_payload(b"x" * 20, 10)] == [10, 10]
        assert chunk_payload(b"", 10) == [b""]

    def test_bad_chunk_bytes(self):
        with pytest.raises(ValueError, match="positive"):
            chunk_payload(b"x", 0)


class TestReassembler:
    def chunks(self, blob, size, **kw):
        parts = chunk_payload(blob, size)
        return [
            frame(
                total_len=len(blob), chunk_idx=i, chunk_count=len(parts),
                payload=p, **kw,
            )
            for i, p in enumerate(parts)
        ]

    def test_in_order(self):
        r = Reassembler()
        blob = bytes(range(256)) * 3
        frames = self.chunks(blob, 100)
        assert [r.add(f) for f in frames[:-1]] == [None, None, None, None, None, None, None]
        assert r.add(frames[-1]) == blob
        assert len(r) == 0 and r.failures == 0

    def test_out_of_order_and_duplicates(self):
        r = Reassembler()
        blob = b"abcdefghij" * 13
        frames = self.chunks(blob, 17)
        order = frames[::-1] + frames[:2]  # reversed, then dup first two
        done = [r.add(f) for f in order]
        completed = [d for d in done if d is not None]
        assert completed == [blob]
        assert r.failures == 0

    def test_interleaved_transfers_stay_separate(self):
        r = Reassembler()
        a = self.chunks(b"A" * 30, 10, rank=1)
        b = self.chunks(b"B" * 30, 10, rank=2)
        assert r.add(a[0]) is None and r.add(b[0]) is None
        assert r.add(a[1]) is None and r.add(b[1]) is None
        assert r.add(b[2]) == b"B" * 30
        assert r.add(a[2]) == b"A" * 30

    def test_metadata_conflict_restarts_transfer(self):
        r = Reassembler()
        old = frame(total_len=50, chunk_count=5, chunk_idx=0, payload=b"x" * 10)
        assert r.add(old) is None
        conflicting = self.chunks(b"y" * 20, 10)
        assert r.add(conflicting[0]) is None
        assert r.add(conflicting[1]) == b"y" * 20
        assert r.failures == 1

    def test_chunk_idx_out_of_range_fails(self):
        r = Reassembler()
        bad = frame(total_len=10, chunk_count=1, chunk_idx=3, payload=b"x")
        assert r.add(bad) is None
        assert r.failures == 1 and len(r) == 0

    def test_total_len_mismatch_fails(self):
        r = Reassembler()
        lying = frame(total_len=999, chunk_count=1, chunk_idx=0, payload=b"xy")
        assert r.add(lying) is None
        assert r.failures == 1

    def test_discard_rank_drops_partials(self):
        r = Reassembler()
        r.add(frame(rank=4, total_len=20, chunk_count=2, chunk_idx=0,
                    payload=b"x" * 10))
        r.add(frame(rank=5, total_len=20, chunk_count=2, chunk_idx=0,
                    payload=b"x" * 10))
        r.discard_rank(4)
        assert len(r) == 1 and r.failures == 1
