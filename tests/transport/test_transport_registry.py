"""The transport registry mirrors the env/codec/fault registry contract."""

import pytest

from repro.transport import (
    LiveTransport,
    SimTransport,
    Transport,
    available_transports,
    make_transport,
    register_transport,
    transport_entries,
)


class TestRegistry:
    def test_bundled_backends_registered(self):
        assert available_transports() == ["live", "sim"]

    def test_make_transport_builds_each(self):
        assert isinstance(make_transport("sim"), SimTransport)
        assert isinstance(make_transport("live"), LiveTransport)

    def test_unknown_transport_lists_known(self):
        with pytest.raises(ValueError, match="known.*live.*sim"):
            make_transport("carrier_pigeon")

    def test_bad_kwargs_fail_with_transport_name(self):
        with pytest.raises(ValueError, match="transport 'live'"):
            make_transport("live", warp_factor=9)

    def test_kwargs_land_on_the_instance(self):
        t = make_transport("live", workers=5, round_timeout=1.5)
        assert t.workers == 5 and t.round_timeout == 1.5

    def test_live_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="worker"):
            make_transport("live", workers=0)

    def test_bad_registration_names_rejected(self):
        for bad in ("", "Sim", "has-dash", "9lead"):
            with pytest.raises(ValueError, match="lowercase identifier"):
                register_transport(bad)

    def test_reregistration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_transport("sim")
            class Impostor(Transport):
                pass

    def test_entries_sorted_with_descriptions(self):
        entries = transport_entries()
        assert [e.name for e in entries] == ["live", "sim"]
        assert all(e.description for e in entries)

    def test_describe_falls_back_to_name(self):
        t = Transport()
        assert t.describe() == "base"
        assert "bit-identical" in SimTransport().describe()


class TestDefaults:
    def test_sim_is_the_simulated_default(self):
        sim = SimTransport()
        assert sim.is_sim and sim.stats() == {}

    def test_live_is_not_sim(self):
        assert not LiveTransport().is_sim

    def test_base_hooks_unimplemented(self):
        t = Transport()
        with pytest.raises(NotImplementedError):
            t.train_round(None, [], None, None, 0, None)
        with pytest.raises(NotImplementedError):
            t.broadcast_model(None, [], None)
        with pytest.raises(NotImplementedError):
            t.collect_models(None, [], None)

    def test_lifecycle_noops(self):
        t = SimTransport()
        t.bind(server=None, spec=None)
        t.validate_spec(None)
        t.start()
        t.shutdown()
