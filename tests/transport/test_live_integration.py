"""Loopback integration: the live transport cross-validated against sim.

The contract under test (DESIGN.md §14): a clean live run under a
lossless codec is **bit-identical** to the simulator — same per-round
metric history, same final weights, same transmission ledger — because
the coordinator runs the identical metering/clock/aggregation math and
only the bytes physically move.  Lossy codecs preserve the byte ledger
exactly and the learning outcome within stochastic tolerance.  And a
SIGKILLed worker is detected by heartbeat, parked, and survived — the
PR 7 crash-ledger semantics at process granularity.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.campaign import sweep
from repro.experiments import ExperimentSpec, run_experiment

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"

#: Small-but-nontrivial live spec: heterogeneous fleet, Dirichlet skew.
LIVE_SPEC = dict(
    dataset="mnist_like",
    num_samples=300,
    num_devices=6,
    partition="dirichlet",
    beta=0.3,
    rounds=2,
    local_epochs=1,
    model_preset="small",
    seed=0,
)

LIVE_KW = {"workers": 2}


def live(spec_dict, **transport_kwargs):
    return ExperimentSpec(
        **spec_dict,
        transport="live",
        transport_kwargs={**LIVE_KW, **transport_kwargs},
    )


class TestBitIdentity:
    def test_fedavg_live_matches_the_sim_golden_bitwise(self):
        """The acceptance gate: live fedavg == the pinned sim golden."""
        gold = json.loads((GOLDEN_DIR / "fedavg.json").read_text())
        result = run_experiment(live(gold["spec"]))
        history = result.history.to_dict()
        for series, want in gold["history"].items():
            assert history[series] == want, (
                f"live fedavg '{series}' diverged from the sim golden"
            )
        assert float(result.final_weights.sum()) == gold["final_weights_sum"]
        assert result.transport_backend == "live"

    @pytest.mark.parametrize("method", ["fedprox", "tfedavg"])
    def test_sync_methods_live_equal_sim(self, method):
        spec = dict(LIVE_SPEC, method=method)
        sim = run_experiment(ExperimentSpec(**spec))
        liv = run_experiment(live(spec))
        np.testing.assert_array_equal(sim.final_weights, liv.final_weights)
        assert sim.history.to_dict() == liv.history.to_dict()

    def test_meter_ledger_identical_to_sim(self):
        spec = dict(LIVE_SPEC, method="fedavg")
        sim = run_experiment(ExperimentSpec(**spec))
        liv = run_experiment(live(spec))
        live_meter = {
            k: v for k, v in liv.transport.items() if not k.startswith("live_")
        }
        assert live_meter == sim.transport


class TestCodecsOverTheWire:
    def test_topk_live_equals_sim_bitwise(self):
        """Error-feedback residual chains are deterministic, so even the
        lossy top-k run reproduces the simulator exactly: each device's
        residual lives with whichever process encodes its stream."""
        spec = dict(LIVE_SPEC, method="fedavg", codec="topk")
        sim = run_experiment(ExperimentSpec(**spec))
        liv = run_experiment(live(spec))
        np.testing.assert_array_equal(sim.final_weights, liv.final_weights)
        assert sim.transport["wire_bytes"] == liv.transport["wire_bytes"]

    def test_qsgd_live_tracks_sim_within_tolerance(self):
        """QSGD draws stochastic rounding from one codec rng whose call
        order differs across processes — byte ledgers stay exact, learning
        outcome agrees within tolerance."""
        spec = dict(LIVE_SPEC, method="fedavg", codec="qsgd", rounds=3)
        sim = run_experiment(ExperimentSpec(**spec))
        liv = run_experiment(live(spec))
        assert sim.transport["wire_bytes"] == liv.transport["wire_bytes"]
        assert abs(sim.final_accuracy - liv.final_accuracy) <= 0.15


class TestWorkerKill:
    def test_sigkilled_worker_is_detected_and_survived(self):
        """SIGKILL one of two workers mid-run: the heartbeat detector
        parks it (crash ledger: injected == detected == 1), its devices
        drop out of later rounds, and the run completes."""
        spec = dict(LIVE_SPEC, method="fedavg", rounds=4)
        result = run_experiment(
            live(
                spec,
                kill_rank=1,
                kill_round=2,
                heartbeat_interval=0.1,
                miss_limit=5,
            )
        )
        assert result.resilience["injected_crashes"] >= 1
        assert result.resilience["detected_crashes"] >= 1
        assert result.resilience["undetected_crashes"] == 0
        assert result.transport["live_workers_parked"] >= 1
        assert len(result.history.rounds) == 4  # the run completed
        assert result.final_accuracy > 0.0


class TestResultPlumbing:
    def test_live_stats_fold_into_transport(self):
        result = run_experiment(live(dict(LIVE_SPEC, method="fedavg")))
        assert result.transport_backend == "live"
        for key in (
            "live_datagrams_sent",
            "live_datagrams_received",
            "live_retransmits",
            "live_reassembly_failures",
            "live_heartbeat_misses",
            "live_workers_parked",
            "live_rounds_dispatched",
        ):
            assert key in result.transport
        assert result.transport["live_rounds_dispatched"] == LIVE_SPEC["rounds"]
        assert result.config["transport"] == "live"
        assert result.config["transport_kwargs"] == LIVE_KW
        # JSON round-trip keeps the backend tag.
        clone = type(result).from_dict(result.to_dict())
        assert clone.transport_backend == "live"

    def test_sim_results_stay_tagged_sim(self):
        result = run_experiment(ExperimentSpec(**dict(LIVE_SPEC, method="fedavg")))
        assert result.transport_backend == "sim"
        assert not any(k.startswith("live_") for k in result.transport)
        assert "transport" not in result.config


class TestSpecValidation:
    def test_unsupported_method_fails_at_spec_time(self):
        with pytest.raises(ValueError, match="supports methods"):
            ExperimentSpec(method="fedhisyn", transport="live")

    def test_lossy_env_fails_at_spec_time(self):
        with pytest.raises(ValueError, match="drop-free"):
            ExperimentSpec(
                method="fedavg", transport="live",
                env="flaky_mobile",
            )

    def test_fault_injection_fails_at_spec_time(self):
        with pytest.raises(ValueError, match="fault"):
            ExperimentSpec(
                method="fedavg", transport="live", faults="crash"
            )

    def test_unknown_transport_and_kwargs_fail(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ExperimentSpec(transport="avian")
        with pytest.raises(ValueError, match="transport_kwargs"):
            ExperimentSpec(
                method="fedavg", transport="live",
                transport_kwargs={"warp": 9},
            )

    def test_spec_json_round_trip(self):
        spec = live(dict(LIVE_SPEC, method="fedavg"))
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_sweep_transport_axis_clears_kwargs_on_sim_cells(self):
        base = live(dict(LIVE_SPEC, method="fedavg"))
        specs = sweep(base, {"transport": ["sim", "live"]})
        by_name = {s.transport: s for s in specs}
        assert by_name["sim"].transport_kwargs == {}
        assert by_name["live"].transport_kwargs == LIVE_KW

    def test_sweep_transport_kwargs_land_on_live_cells_only(self):
        base = ExperimentSpec(**dict(LIVE_SPEC, method="fedavg"))
        specs = sweep(
            base,
            {"transport": ["sim", "live"]},
            transport_kwargs={"live": {"workers": 3}},
        )
        by_name = {s.transport: s for s in specs}
        assert by_name["sim"].transport_kwargs == {}
        assert by_name["live"].transport_kwargs == {"workers": 3}
