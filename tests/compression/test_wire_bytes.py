"""Encoded.to_bytes/from_bytes: the wire form IS the charged byte count.

The live transport ships ``Encoded.to_bytes()`` as its datagram payload,
so these tests pin the contract the sim/live byte ledgers share: for
every codec, ``len(to_bytes()) == nbytes`` exactly, and decoding a
payload that round-tripped through bytes is bit-identical to decoding
the original object.
"""

import numpy as np
import pytest

from repro.compression import (
    DeltaCodec,
    Encoded,
    IdentityCodec,
    QSGDCodec,
    TopKCodec,
    available_codecs,
    make_codec,
)
from repro.compression.base import PAYLOAD_KIND_CODES, PAYLOAD_KINDS


def vecs(dim=200, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=dim), rng.normal(size=dim)


def round_trip(codec, enc):
    """Decode the byte-round-tripped payload next to the original."""
    data = enc.to_bytes()
    assert len(data) == enc.nbytes, (
        f"{codec.name}: to_bytes produced {len(data)} bytes "
        f"but nbytes charges {enc.nbytes}"
    )
    clone = Encoded.from_bytes(
        data, enc.kind, enc.dim, reference=enc.reference, param=enc.param
    )
    a = codec.decode(enc)
    b = codec.decode(clone)
    np.testing.assert_array_equal(a, b)
    return clone


class TestKindTable:
    def test_codes_round_trip(self):
        for kind, code in PAYLOAD_KIND_CODES.items():
            assert PAYLOAD_KINDS[code] == kind

    def test_every_bundled_codec_kind_is_coded(self):
        assert set(PAYLOAD_KIND_CODES) == {"raw", "dense", "topk", "qsgd", "delta"}


class TestPerCodec:
    def test_identity_raw_payload(self):
        codec = IdentityCodec()
        vec, _ = vecs()
        enc = codec.encode(vec)
        assert enc.kind == "raw" and enc.param == 0
        clone = round_trip(codec, enc)
        np.testing.assert_array_equal(clone.payload, vec)

    def test_dense_fallback_payload(self):
        codec = TopKCodec()
        vec, _ = vecs()
        enc = codec.encode(vec)  # no reference -> dense fallback
        assert enc.kind == "dense"
        round_trip(codec, enc)

    def test_topk_sparse_payload(self):
        codec = TopKCodec(fraction=0.1)
        vec, ref = vecs()
        enc = codec.encode(vec, key=1, reference=ref)
        assert enc.kind == "topk" and enc.nbytes == 4 + 8 * 20
        round_trip(codec, enc)

    @pytest.mark.parametrize("bits", [1, 2, 4, 8, 11])
    def test_qsgd_bitpacked_payload(self, bits):
        codec = QSGDCodec(bits=bits, seed=3)
        vec, ref = vecs(dim=173)
        enc = codec.encode(vec, key=1, reference=ref)
        assert enc.kind == "qsgd" and enc.param == bits
        round_trip(codec, enc)

    def test_qsgd_zero_scale_payload(self):
        codec = QSGDCodec(bits=4)
        _, ref = vecs()
        enc = codec.encode(ref.copy(), key=1, reference=ref)  # delta == 0
        assert enc.kind == "qsgd" and enc.payload[1] == 0.0
        round_trip(codec, enc)

    def test_delta_sparse_payload(self):
        codec = DeltaCodec()
        _, ref = vecs()
        vec = ref.copy()
        vec[[3, 50, 199]] += 1.0
        enc = codec.encode(vec, key=1, reference=ref)
        assert enc.kind == "delta" and enc.nbytes == 4 + 12 * 3
        clone = round_trip(codec, enc)
        # Lossless codec: the decode equals the input bit-for-bit.
        np.testing.assert_array_equal(codec.decode(clone), vec)

    def test_delta_dense_when_everything_changed(self):
        codec = DeltaCodec()
        vec, ref = vecs()
        enc = codec.encode(vec, key=1, reference=ref)
        assert enc.kind == "dense"
        round_trip(codec, enc)


class TestEveryRegisteredCodec:
    @pytest.mark.parametrize("name", sorted(c for c in ["none", "topk", "qsgd", "delta"]))
    def test_wire_length_matches_nbytes(self, name):
        assert name in available_codecs()
        codec = make_codec(name, seed=7)
        vec, ref = vecs(dim=301, seed=9)
        for enc in (codec.encode(vec), codec.encode(vec, key=5, reference=ref)):
            round_trip(codec, enc)


class TestFromBytesValidation:
    def test_dense_length_mismatch(self):
        with pytest.raises(ValueError, match="coords"):
            Encoded.from_bytes(b"\0" * 16, "raw", dim=3)

    def test_topk_length_mismatch(self):
        import struct
        data = struct.pack("!I", 5) + b"\0" * 10
        with pytest.raises(ValueError, match="count"):
            Encoded.from_bytes(data, "topk", dim=100)

    def test_qsgd_needs_bit_width(self):
        with pytest.raises(ValueError, match="bit width"):
            Encoded.from_bytes(b"\0" * 16, "qsgd", dim=8, param=0)

    def test_qsgd_length_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            Encoded.from_bytes(b"\0" * 9, "qsgd", dim=100, param=4)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown payload kind"):
            Encoded.from_bytes(b"", "morse", dim=0)
