"""Unit and property tests for the update codecs themselves.

Every claim the compression layer's correctness rests on is asserted
here: exact wire-byte formulas, top-k's error-feedback conservation law,
QSGD's unbiasedness and seed-reproducibility, and the delta codec's
bit-exact round-trip.
"""

import numpy as np
import pytest

from repro.compression import (
    DeltaCodec,
    Encoded,
    IdentityCodec,
    QSGDCodec,
    TopKCodec,
    available_codecs,
    codec_entries,
    make_codec,
    register_codec,
)
from repro.compression.base import DENSE_BYTES_PER_COORD, UpdateCodec


def rand_vec(dim=200, seed=0):
    return np.random.default_rng(seed).normal(size=dim)


class TestRegistry:
    def test_all_bundled_codecs_registered(self):
        assert available_codecs() == ["delta", "none", "qsgd", "topk"]

    def test_make_codec_builds_each(self):
        for name in available_codecs():
            codec = make_codec(name)
            assert isinstance(codec, UpdateCodec)
            assert codec.name == name

    def test_unknown_codec_lists_known(self):
        with pytest.raises(ValueError, match="delta.*none.*qsgd.*topk"):
            make_codec("gzip")

    def test_bad_kwargs_fail_early(self):
        with pytest.raises(ValueError, match="bad codec_kwargs"):
            make_codec("none", fraction=0.1)

    def test_kwargs_forwarded(self):
        codec = make_codec("topk", fraction=0.25, seed=3)
        assert codec.fraction == 0.25
        assert codec.seed == 3

    def test_duplicate_registration_rejected(self):
        # Re-registering the *same* factory is idempotent; a different
        # factory under a taken name is the error.
        with pytest.raises(ValueError, match="already registered"):
            register_codec("topk", "imposter")(IdentityCodec)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="lowercase"):
            register_codec("Top-K", "bad name")(TopKCodec)

    def test_entries_describe(self):
        by_name = {e.name: e for e in codec_entries()}
        assert "error feedback" in by_name["topk"].description


class TestEncoded:
    def test_model_units_is_byte_fraction(self):
        enc = Encoded(payload=None, dim=100, nbytes=200)
        assert enc.model_units == 200 / (DENSE_BYTES_PER_COORD * 100)

    def test_dense_is_exactly_one_unit(self):
        vec = rand_vec(64)
        enc = IdentityCodec().encode(vec)
        assert enc.model_units == 1.0


class TestIdentity:
    def test_decode_returns_same_object(self):
        vec = rand_vec()
        codec = IdentityCodec()
        assert codec.decode(codec.encode(vec)) is vec

    def test_is_identity_flag(self):
        assert IdentityCodec().is_identity
        for name in ("topk", "qsgd", "delta"):
            assert not make_codec(name).is_identity


class TestTopK:
    def test_wire_bytes_formula(self):
        codec = TopKCodec(fraction=0.1)
        ref = np.zeros(200)
        enc = codec.encode(rand_vec(200), key=1, reference=ref)
        k = 20
        assert enc.nbytes == 4 + 8 * k
        assert enc.model_units == pytest.approx((4 + 8 * k) / (8 * 200))

    def test_keeps_largest_magnitudes(self):
        codec = TopKCodec(fraction=0.05, error_feedback=False)
        ref = np.zeros(100)
        vec = np.arange(100, dtype=np.float64)
        enc = codec.encode(vec, key=1, reference=ref)
        _, idx, values = enc.payload
        assert list(idx) == [95, 96, 97, 98, 99]
        decoded = codec.decode(enc)
        np.testing.assert_allclose(decoded[95:], vec[95:], rtol=1e-6)
        np.testing.assert_array_equal(decoded[:95], 0.0)

    def test_error_feedback_conservation(self):
        """sent + new_residual == delta + old_residual, per encode."""
        codec = TopKCodec(fraction=0.1, seed=0)
        ref = rand_vec(300, seed=1)
        for step in range(5):
            vec = ref + rand_vec(300, seed=10 + step) * 0.1
            old_residual = codec.residual("dev")
            carried = (vec - ref) + (
                old_residual if old_residual is not None else 0.0
            )
            enc = codec.encode(vec, key="dev", reference=ref)
            sent = codec.decode(enc) - ref
            np.testing.assert_allclose(
                sent + codec.residual("dev"), carried, atol=1e-12
            )

    def test_error_feedback_ships_everything_on_average(self):
        """Repeatedly encoding one constant delta: the mean applied
        update converges to it — feedback keeps the residual bounded, so
        no coordinate's contribution is lost, only delayed."""
        codec = TopKCodec(fraction=0.2)
        ref = np.zeros(50)
        target = rand_vec(50, seed=2)
        applied = np.zeros(50)
        n = 80
        for _ in range(n):
            enc = codec.encode(ref + target, key=0, reference=ref)
            applied += codec.decode(enc) - ref
        scale = np.abs(target).max()
        np.testing.assert_allclose(applied / n, target, atol=0.15 * scale)
        assert np.abs(codec.residual(0)).max() < 10 * scale

    def test_streams_have_independent_residuals(self):
        codec = TopKCodec(fraction=0.1)
        ref = np.zeros(100)
        codec.encode(rand_vec(100, seed=3), key="a", reference=ref)
        assert codec.residual("a") is not None
        assert codec.residual("b") is None

    def test_no_reference_goes_dense(self):
        codec = TopKCodec(fraction=0.1)
        vec = rand_vec()
        enc = codec.encode(vec, key=1)
        assert enc.model_units == 1.0
        np.testing.assert_array_equal(codec.decode(enc), vec)

    def test_reset_clears_residuals(self):
        codec = TopKCodec(fraction=0.1)
        codec.encode(rand_vec(), key=1, reference=np.zeros(200))
        codec.reset()
        assert codec.residual(1) is None

    def test_bad_fraction_rejected(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="fraction"):
                TopKCodec(fraction=bad)


class TestQSGD:
    def test_wire_bytes_formula(self):
        codec = QSGDCodec(bits=4)
        enc = codec.encode(rand_vec(100), key=1, reference=np.zeros(100))
        # 8-byte scale + 5 bits per coordinate.
        assert enc.nbytes == 8 + int(np.ceil(100 * 5 / 8))

    def test_unbiased_under_fixed_seed(self):
        """The stochastic rounding's decoded delta is unbiased in mean."""
        ref = np.zeros(64)
        vec = rand_vec(64, seed=4)
        decoded = np.zeros(64)
        n = 4000
        codec = QSGDCodec(bits=2, seed=0)
        for _ in range(n):
            decoded += codec.decode(codec.encode(vec, key=1, reference=ref))
        mean = decoded / n
        scale = np.abs(vec).max()
        # Std of one estimate is < scale/levels; mean of n shrinks by sqrt(n).
        tol = 5 * (scale / 3) / np.sqrt(n)
        np.testing.assert_allclose(mean, vec, atol=tol)

    def test_seed_reproducible(self):
        ref, vec = np.zeros(128), rand_vec(128, seed=5)

        def run(seed):
            codec = QSGDCodec(bits=3, seed=seed)
            return [
                codec.decode(codec.encode(vec, key=1, reference=ref))
                for _ in range(4)
            ]

        for a, b in zip(run(7), run(7)):
            np.testing.assert_array_equal(a, b)
        assert any(
            not np.array_equal(a, b) for a, b in zip(run(7), run(8))
        )

    def test_zero_delta_decodes_to_reference(self):
        codec = QSGDCodec(bits=4)
        ref = rand_vec(32, seed=6)
        enc = codec.encode(ref, key=1, reference=ref)
        np.testing.assert_array_equal(codec.decode(enc), ref)

    def test_error_bounded_by_one_level(self):
        codec = QSGDCodec(bits=6)
        ref = np.zeros(100)
        vec = rand_vec(100, seed=7)
        decoded = codec.decode(codec.encode(vec, key=1, reference=ref))
        level = np.abs(vec).max() / (2**6 - 1)
        assert np.abs(decoded - vec).max() <= level + 1e-12

    def test_bad_bits_rejected(self):
        for bad in (0, 17, -1):
            with pytest.raises(ValueError, match="bits"):
                QSGDCodec(bits=bad)


class TestDelta:
    def test_round_trip_bit_exact(self):
        codec = DeltaCodec()
        ref = rand_vec(500, seed=8)
        vec = ref.copy()
        vec[::50] += 1e-9  # 10 of 500 coordinates change
        enc = codec.encode(vec, key=1, reference=ref)
        assert enc.nbytes == 4 + 12 * 10
        out = codec.decode(enc)
        assert np.array_equal(out, vec)  # bitwise, not approx

    def test_dense_fallback_when_sparse_larger(self):
        codec = DeltaCodec()
        ref = rand_vec(100, seed=9)
        vec = ref + 1.0  # every coordinate changed
        enc = codec.encode(vec, key=1, reference=ref)
        assert enc.model_units == 1.0
        np.testing.assert_array_equal(codec.decode(enc), vec)

    def test_never_costs_more_than_dense(self):
        codec = DeltaCodec()
        ref = rand_vec(64, seed=10)
        for changed in (0, 1, 32, 64):
            vec = ref.copy()
            vec[:changed] += 1.0
            enc = codec.encode(vec, key=1, reference=ref)
            assert enc.model_units <= 1.0

    def test_unchanged_vector_is_near_free(self):
        codec = DeltaCodec()
        ref = rand_vec(1000, seed=11)
        enc = codec.encode(ref.copy(), key=1, reference=ref)
        assert enc.nbytes == 4
