"""Codec behaviour at the channel layer and through whole runs.

The contract under test: the identity codec is a zero-overhead fast path
(same objects, same meter values as the pre-codec channel); a real codec
shrinks the metered units and the clock's transfer charges by exactly
its wire size while the meter's raw channel keeps the uncompressed
count; and every method family (sync round, async event loop, ring
engine) routes its traffic through the active codec.
"""

import numpy as np
import pytest

from repro.baselines.fedavg import FedAvgConfig, FedAvgServer
from repro.compression import IdentityCodec, TopKCodec, make_codec
from repro.core.server import ServerConfig
from repro.env import Environment, UniformNetwork
from repro.experiments import ExperimentSpec, run_experiment


def make_server(tiny_devices, tiny_split, env=None, codec=None, **cfg):
    _, test_set = tiny_split
    config = FedAvgConfig(**{"rounds": 2, "local_epochs": 1, **cfg})
    srv = FedAvgServer(tiny_devices, test_set, config, env=env)
    if codec is not None:
        srv.codec = codec
    return srv


class TestIdentityFastPath:
    def test_broadcast_returns_same_objects(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        weights = srv.global_weights
        delivered, view = srv.broadcast_model(tiny_devices, weights)
        assert view is weights
        assert delivered == tiny_devices
        assert srv.meter.server_down == len(tiny_devices)
        assert srv.meter.raw_down == len(tiny_devices)
        assert srv.meter.compression_ratio == 1.0

    def test_collect_returns_same_stack(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split)
        stack = np.zeros((len(tiny_devices), srv.trainer.dim))
        arrived, decoded = srv.collect_models(tiny_devices, stack)
        assert decoded is stack
        assert arrived == list(range(len(tiny_devices)))

    def test_extra_units_preserved(self, tiny_devices, tiny_split):
        """SCAFFOLD's 2.0-unit metering identity survives the codec API."""
        srv = make_server(tiny_devices, tiny_split)
        srv.broadcast_model(tiny_devices, srv.global_weights, extra_units=1.0)
        assert srv.meter.server_down == 2.0 * len(tiny_devices)


class TestCodecChannel:
    def test_topk_shrinks_metered_units(self, tiny_devices, tiny_split):
        srv = make_server(
            tiny_devices, tiny_split, codec=TopKCodec(fraction=0.1)
        )
        w = srv.global_weights
        # First broadcast has no downlink reference: dense (1.0 units).
        srv.broadcast_model(tiny_devices, w)
        assert srv.meter.server_down == pytest.approx(len(tiny_devices))
        # Second broadcast compresses against the decoded first view.
        srv.broadcast_model(tiny_devices, w + 0.01)
        second = srv.meter.server_down - len(tiny_devices)
        per_receiver = second / len(tiny_devices)
        assert 0.09 < per_receiver < 0.2
        # Raw channel still counts dense models.
        assert srv.meter.raw_down == 2.0 * len(tiny_devices)
        assert srv.meter.compression_ratio > 1.5

    def test_collect_decodes_lossy_stack(self, tiny_devices, tiny_split):
        srv = make_server(
            tiny_devices, tiny_split,
            codec=TopKCodec(fraction=0.1, error_feedback=False),
        )
        ref = srv.global_weights
        rng = np.random.default_rng(0)
        stack = ref + 0.1 * rng.normal(size=(len(tiny_devices), ref.size))
        arrived, decoded = srv.collect_models(tiny_devices, stack, reference=ref)
        assert decoded is not stack
        # Lossy: the decode differs from the upload but moves toward it.
        assert not np.allclose(decoded, stack)
        assert np.linalg.norm(decoded - ref) > 0.0

    def test_transfer_time_scales_with_wire_size(self, tiny_devices, tiny_split):
        env = Environment(UniformNetwork(latency=0.0, bandwidth=1.0))

        def clock_after_two_broadcasts(codec):
            srv = make_server(tiny_devices, tiny_split, env=env, codec=codec)
            w = srv.global_weights
            srv.broadcast_model(tiny_devices, w)
            srv.broadcast_model(tiny_devices, w + 0.01)
            return srv.clock.now

        dense = clock_after_two_broadcasts(None)
        topk = clock_after_two_broadcasts(TopKCodec(fraction=0.1))
        assert dense == pytest.approx(2.0)  # two dense transfers at bw 1
        assert 1.0 < topk < 1.3  # dense first + ~0.1-unit second

    def test_wire_bytes_accounting_exact(self, tiny_devices, tiny_split):
        codec = TopKCodec(fraction=0.1)
        srv = make_server(tiny_devices, tiny_split, codec=codec)
        w = srv.global_weights
        srv.broadcast_model(tiny_devices, w)
        srv.broadcast_model(tiny_devices, w + 0.01)
        dim = srv.trainer.dim
        k = max(1, round(0.1 * dim))
        expected = len(tiny_devices) * (8 * dim + 4 + 8 * k)
        assert srv.meter.wire_bytes == pytest.approx(expected)
        assert srv.meter.raw_bytes == pytest.approx(
            2 * len(tiny_devices) * 8 * dim
        )

    def test_downlink_reference_chains(self, tiny_devices, tiny_split):
        srv = make_server(tiny_devices, tiny_split, codec=TopKCodec(fraction=0.1))
        w = srv.global_weights
        _, view1 = srv.broadcast_model(tiny_devices, w)
        assert srv._codec_down_ref is view1
        _, view2 = srv.broadcast_model(tiny_devices, w + 0.5)
        assert srv._codec_down_ref is view2

    def test_per_device_reference_dict(self, tiny_devices, tiny_split):
        """collect_models resolves a start_views dict per sender id."""
        srv = make_server(tiny_devices, tiny_split, codec=make_codec("delta"))
        ref = {d.device_id: srv.global_weights + d.device_id
               for d in tiny_devices}
        stack = np.stack([
            ref[d.device_id] + (0.25 if i == 0 else 0.0)
            for i, d in enumerate(tiny_devices)
        ])
        arrived, decoded = srv.collect_models(tiny_devices, stack, reference=ref)
        assert np.array_equal(decoded, stack)  # delta codec is lossless


class TestRunLevel:
    SPEC = dict(
        method="fedavg", dataset="mnist_like", num_samples=300,
        num_devices=6, rounds=3, eval_every=1, seed=0,
    )

    def test_codec_none_bit_identical(self):
        base = run_experiment(ExperimentSpec(**self.SPEC))
        none = run_experiment(ExperimentSpec(**self.SPEC, codec="none"))
        np.testing.assert_array_equal(base.final_weights, none.final_weights)
        assert base.history.to_dict() == none.history.to_dict()
        assert base.transport == none.transport

    def test_topk_reduces_wire_bytes_without_breaking_training(self):
        dense = run_experiment(ExperimentSpec(**self.SPEC))
        topk = run_experiment(ExperimentSpec(
            **self.SPEC, codec="topk", codec_kwargs={"fraction": 0.1}
        ))
        assert topk.transport["wire_bytes"] < 0.5 * dense.transport["wire_bytes"]
        assert topk.transport["compression_ratio"] > 2.0
        # Lossy but functional: still learns something on this easy set.
        assert topk.final_accuracy > 0.25

    def test_delta_codec_matches_dense_accuracy(self):
        """A lossless codec must not change training at all, only bytes."""
        dense = run_experiment(ExperimentSpec(**self.SPEC))
        delta = run_experiment(ExperimentSpec(**self.SPEC, codec="delta"))
        np.testing.assert_array_equal(
            dense.final_weights, delta.final_weights
        )
        assert delta.transport["wire_bytes"] <= dense.transport["wire_bytes"]

    def test_codec_seed_reproducible(self):
        spec = ExperimentSpec(
            **self.SPEC, codec="qsgd", codec_kwargs={"bits": 4}
        )
        a = run_experiment(spec)
        b = run_experiment(spec)
        np.testing.assert_array_equal(a.final_weights, b.final_weights)

    @pytest.mark.parametrize("method", [
        "fedhisyn", "fedavg", "tfedavg", "tafedavg", "fedat", "fedprox",
        "scaffold", "fedasync", "fedbuff",
    ])
    def test_every_method_compresses(self, method):
        """All nine methods route their traffic through the codec."""
        kwargs = {"num_classes": 3} if method == "fedhisyn" else {}
        spec = ExperimentSpec(
            method=method, dataset="mnist_like", num_samples=300,
            num_devices=6, rounds=3, seed=0,
            codec="topk", codec_kwargs={"fraction": 0.1},
            method_kwargs=kwargs,
        )
        result = run_experiment(spec)
        ratio = result.transport["compression_ratio"]
        assert ratio > 1.3, f"{method}: compression_ratio {ratio}"
        assert result.transport["wire_bytes"] < result.transport["raw_bytes"]


class TestRingCodec:
    def test_peer_units_shrink(self, tiny_devices, tiny_split):
        from repro.simulation.engine import RingRoundEngine

        engine = RingRoundEngine(tiny_devices, epochs_per_unit=1)
        rings = [[d.device_id for d in tiny_devices]]
        w = np.zeros(tiny_devices[0].trainer.dim)

        dense = engine.run_round(rings, w, duration=4.0, round_idx=0)
        assert dense.peer_units == float(dense.peer_sends)

        engine2 = RingRoundEngine(tiny_devices, epochs_per_unit=1)
        codec = TopKCodec(fraction=0.1)
        topk = engine2.run_round(
            rings, w, duration=4.0, round_idx=0,
            codec=codec, codec_reference=w,
        )
        assert topk.peer_sends == dense.peer_sends
        assert topk.peer_units < 0.3 * topk.peer_sends

    def test_identity_codec_is_dense_path(self, tiny_devices, tiny_split):
        from repro.simulation.engine import RingRoundEngine

        rings = [[d.device_id for d in tiny_devices]]
        w = np.zeros(tiny_devices[0].trainer.dim)
        a = RingRoundEngine(tiny_devices, epochs_per_unit=1).run_round(
            rings, w, duration=4.0, round_idx=0
        )
        b = RingRoundEngine(tiny_devices, epochs_per_unit=1).run_round(
            rings, w, duration=4.0, round_idx=0,
            codec=IdentityCodec(), codec_reference=w,
        )
        assert a.peer_sends == b.peer_sends
        assert a.peer_units == b.peer_units
