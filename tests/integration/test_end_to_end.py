"""Integration tests: every method end-to-end on a shared setup, and the
qualitative relationships the paper's evaluation rests on."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_methods, format_comparison, table1_cells
from repro.experiments import ExperimentSpec, run_experiment


@pytest.fixture(scope="module")
def shared_spec():
    return ExperimentSpec(
        method="fedhisyn",
        dataset="mnist_like",
        num_samples=800,
        num_devices=8,
        partition="dirichlet",
        beta=0.3,
        rounds=5,
        local_epochs=1,
        seed=3,
        method_kwargs={"num_classes": 3},
    )


@pytest.fixture(scope="module")
def all_results(shared_spec):
    return compare_methods(
        shared_spec,
        methods=["fedhisyn", "fedavg", "tfedavg", "tafedavg", "fedprox",
                 "fedat", "scaffold"],
        method_kwargs={"fedhisyn": {"num_classes": 3}},
    )


class TestAllMethodsEndToEnd:
    def test_every_method_learns(self, all_results):
        for name, res in all_results.items():
            assert res.final_accuracy > 0.3, f"{name} failed to learn"

    def test_every_method_finite(self, all_results):
        for name, res in all_results.items():
            assert np.isfinite(res.final_weights).all(), name

    def test_histories_complete(self, all_results):
        for name, res in all_results.items():
            assert len(res.history.rounds) == 5, name

    def test_transfer_ordering(self, all_results):
        """Async methods move more models per round than synchronous ones;
        SCAFFOLD moves exactly twice FedAvg."""
        totals = {n: r.history.server_transfers[-1] for n, r in all_results.items()}
        assert totals["scaffold"] == 2 * totals["fedavg"]
        assert totals["tafedavg"] > totals["fedavg"]
        assert totals["fedat"] > totals["fedavg"]
        assert totals["fedhisyn"] == totals["fedavg"]  # same server schedule

    def test_table_cells_render(self, all_results):
        cells = table1_cells(all_results, target=0.5)
        assert set(cells) == set(all_results)
        for cell in cells.values():
            assert "%" in cell

    def test_format_comparison_renders(self, all_results):
        text = format_comparison(all_results, target=0.5, title="t")
        assert "fedhisyn" in text and "scaffold" in text


class TestPaperShapeRelations:
    """Cheap qualitative checks of the paper's headline relations."""

    def test_fedhisyn_cost_no_worse_than_fedavg(self, all_results):
        target = 0.6
        fh = all_results["fedhisyn"].cost_to_target(target)
        fa = all_results["fedavg"].cost_to_target(target)
        assert fh is not None
        assert fa is None or fh <= fa + 1e-9

    def test_noniid_harder_than_iid(self, shared_spec):
        """Both FedHiSyn runs: IID reaches a fixed target at no greater
        transfer cost than Dirichlet(0.3)."""
        iid = run_experiment(
            ExperimentSpec(**{**shared_spec.__dict__, "partition": "iid",
                              "method_kwargs": {"num_classes": 3}})
        )
        noniid = run_experiment(shared_spec)
        target = 0.6
        c_iid = iid.cost_to_target(target)
        c_non = noniid.cost_to_target(target)
        assert c_iid is not None
        assert c_non is None or c_iid <= c_non + 1e-9
