"""The compression subsystem's headline trade-off, end to end.

Under the bandwidth-bound ``satellite`` preset (0.3 latency, 2.0
bandwidth: a dense model costs 0.8 virtual time per hop) top-k at 10%
density must reach the accuracy target in *less virtual time* than
uncompressed FedAvg — lossy updates cost rounds, but each round's
transfers are ~10x cheaper — while cutting total on-wire bytes at least
5x.  This is the bandwidth/accuracy trade-off the codec layer exists to
measure.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, run_experiment

BASE = dict(
    method="fedavg",
    dataset="mnist_like",
    num_samples=400,
    num_devices=8,
    rounds=8,
    env="satellite",
    seed=0,
)
TARGET = 0.7


@pytest.fixture(scope="module")
def dense_result():
    return run_experiment(ExperimentSpec(**BASE))


@pytest.fixture(scope="module")
def topk_result():
    return run_experiment(ExperimentSpec(
        **BASE, codec="topk", codec_kwargs={"fraction": 0.1}
    ))


class TestSatelliteTradeOff:
    def test_topk_reaches_target_in_less_virtual_time(
        self, dense_result, topk_result
    ):
        dense_t = dense_result.time_to_target(TARGET)
        topk_t = topk_result.time_to_target(TARGET)
        assert dense_t is not None and topk_t is not None
        assert topk_t < dense_t

    def test_wire_bytes_reduced_at_least_5x(self, dense_result, topk_result):
        ratio = (
            dense_result.transport["wire_bytes"]
            / topk_result.transport["wire_bytes"]
        )
        assert ratio >= 5.0

    def test_raw_bytes_identical(self, dense_result, topk_result):
        """Same logical traffic crossed both channels — only the wire
        representation differs."""
        assert topk_result.transport["raw_bytes"] == pytest.approx(
            dense_result.transport["raw_bytes"]
        )

    def test_compression_ratio_consistent(self, topk_result):
        t = topk_result.transport
        assert t["compression_ratio"] == pytest.approx(
            t["raw_bytes"] / t["wire_bytes"]
        )

    def test_lossy_training_still_converges(self, topk_result):
        assert topk_result.final_accuracy >= TARGET

    def test_trade_off_visible_in_round_clock(self, dense_result, topk_result):
        """Per-round wall time shrinks by the cheaper transfers."""
        dense_rounds = np.diff([0.0, *dense_result.history.times])
        topk_rounds = np.diff([0.0, *topk_result.history.times])
        # Steady state (after the dense round-1 reference bootstrap):
        # every topk round is strictly faster than every dense round.
        assert topk_rounds[1:].max() < dense_rounds[1:].min()
