"""Time-to-accuracy: the async runtime's headline scenario.

The paper's premise is that wall-clock heterogeneity decides real FL
efficiency.  With the clock as the driver this is now directly testable:
under a heterogeneous fleet, buffered asynchronous aggregation (FedBuff)
reaches a target accuracy in less *virtual time* than synchronous FedAvg,
because fast devices keep filling the buffer while FedAvg's rounds wait
for the straggler.
"""

import pytest

from repro.experiments import ExperimentSpec, run_experiment

#: Shared heterogeneous scenario: unit times span a 10x range, so a
#: synchronous round costs the straggler's full unit while the fastest
#: devices could have run ten.
HET_SCENARIO = dict(
    dataset="mnist_like",
    num_samples=600,
    num_devices=10,
    partition="dirichlet",
    beta=0.5,
    units_low=1,
    units_high=10,
    local_epochs=1,
    seed=0,
)

TARGET = 0.6


class TestFedBuffBeatsSyncFedAvg:
    @pytest.fixture(scope="class")
    def results(self):
        fedavg = run_experiment(
            ExperimentSpec(method="fedavg", rounds=8, **HET_SCENARIO)
        )
        fedbuff = run_experiment(
            ExperimentSpec(
                method="fedbuff", rounds=24, buffer_goal=4, **HET_SCENARIO
            )
        )
        return fedavg, fedbuff

    def test_both_reach_the_target(self, results):
        fedavg, fedbuff = results
        assert fedavg.best_accuracy >= TARGET
        assert fedbuff.best_accuracy >= TARGET

    def test_fedbuff_reaches_target_in_less_virtual_time(self, results):
        fedavg, fedbuff = results
        t_avg = fedavg.time_to_target(TARGET)
        t_buff = fedbuff.time_to_target(TARGET)
        assert t_avg is not None and t_buff is not None
        assert t_buff < t_avg

    def test_unreached_target_is_none(self, results):
        fedavg, _ = results
        assert fedavg.time_to_target(2.0) is None


class TestEvalTimeCheckpoints:
    def test_sync_method_records_time_indexed_evals(self):
        spec = ExperimentSpec(
            method="fedavg", rounds=4, eval_time_every=0.5, **{
                k: v for k, v in HET_SCENARIO.items() if k != "seed"
            }, seed=1,
        )
        result = run_experiment(spec)
        h = result.history
        assert len(h.checkpoint_times) > 0
        # Nominal checkpoint times follow the configured cadence...
        assert h.checkpoint_times[0] == pytest.approx(0.5)
        assert all(
            b - a == pytest.approx(0.5)
            for a, b in zip(h.checkpoint_times, h.checkpoint_times[1:])
        )
        # ...and never extend past the end of training.
        assert h.checkpoint_times[-1] <= h.times[-1]

    def test_checkpoints_survive_json_round_trip(self):
        from repro.simulation.results import RunResult

        spec = ExperimentSpec(
            method="fedasync", rounds=6, eval_time_every=0.1, **HET_SCENARIO
        )
        result = run_experiment(spec)
        assert len(result.history.checkpoint_times) > 0
        restored = RunResult.from_dict(result.to_dict())
        assert restored.history.to_dict() == result.history.to_dict()
        assert restored.time_to_target(TARGET) == result.time_to_target(TARGET)

    def test_checkpoint_accuracy_is_pre_aggregation_model(self):
        """In a sync run, a checkpoint maturing inside round r's clock
        jump evaluates the model deployed *before* r's aggregation: the
        checkpoint at t=0.5 (inside round 1) must match the initial
        model's accuracy, not round 1's result."""
        spec = ExperimentSpec(
            method="tfedavg", rounds=2, eval_time_every=0.5, **HET_SCENARIO
        )
        server_spec = ExperimentSpec(
            method="tfedavg", rounds=2, **HET_SCENARIO
        )
        from repro.experiments import build_experiment

        server = build_experiment(server_spec)
        initial_acc, _ = server.evaluate(server.global_weights)
        result = run_experiment(spec)
        assert result.history.checkpoint_accuracies[0] == pytest.approx(
            initial_acc
        )
