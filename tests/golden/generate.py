"""Regenerate the golden metric histories for the env="ideal" equivalence tests.

Run from the repo root::

    PYTHONPATH=src python tests/golden/generate.py

The files under ``tests/golden/`` pin the exact per-round metric histories
of every registered method on one small experiment.  They were first
captured at the commit *before* the environment layer existed, so the
equivalence tests prove that ``env="ideal"`` reproduces pre-refactor
behavior bit-for-bit.  Only regenerate them when a PR deliberately changes
training semantics (and say so in the PR).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import ExperimentSpec, run_experiment

GOLDEN_DIR = Path(__file__).resolve().parent

#: One small-but-nontrivial setup: heterogeneous fleet, Dirichlet skew,
#: several rounds, every method on identical data.  Full participation is
#: deliberate — the FedAT tier-state fix (ISSUE 3) changes behavior only
#: below 100% participation.
GOLDEN_SPEC = dict(
    dataset="mnist_like",
    num_samples=400,
    num_devices=6,
    partition="dirichlet",
    beta=0.3,
    rounds=3,
    local_epochs=1,
    eval_every=1,
    model_preset="small",
    seed=0,
)

#: fedbuff's buffer goal is shrunk so its K-sized flushes actually cycle
#: several times inside the tiny golden run.
METHOD_KWARGS = {"fedhisyn": {"num_classes": 3}, "fedbuff": {"buffer_goal": 2}}


def main() -> None:
    for method in ("fedavg", "fedprox", "scaffold", "tfedavg", "tafedavg",
                   "fedat", "fedhisyn", "fedasync", "fedbuff"):
        spec = ExperimentSpec(
            method=method,
            method_kwargs=METHOD_KWARGS.get(method, {}),
            **GOLDEN_SPEC,
        )
        result = run_experiment(spec)
        payload = {
            "spec": {"method": method,
                     "method_kwargs": METHOD_KWARGS.get(method, {}),
                     **GOLDEN_SPEC},
            "history": result.history.to_dict(),
            "per_round_unit": result.per_round_unit,
            "final_weights_sum": float(result.final_weights.sum()),
        }
        path = GOLDEN_DIR / f"{method}.json"
        path.write_text(json.dumps(payload, indent=1))
        print(f"wrote {path} (final acc {result.final_accuracy:.4f})")


if __name__ == "__main__":
    main()
