"""Tests for repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.datasets.registry import DATASETS, make_dataset
from repro.datasets.synthetic import (
    SyntheticSpec,
    cifar10_like,
    cifar100_like,
    emnist_like,
    make_synthetic,
    mnist_like,
)


class TestSyntheticSpec:
    def test_valid(self):
        SyntheticSpec("s", 3, 30, 4, (8,))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_classes=1),
            dict(num_samples=2),  # fewer than classes
            dict(latent_dim=0),
            dict(feature_shape=(2, 2)),  # invalid rank
        ],
    )
    def test_invalid(self, kwargs):
        base = dict(name="s", num_classes=3, num_samples=30, latent_dim=4,
                    feature_shape=(8,))
        base.update(kwargs)
        with pytest.raises(ValueError):
            SyntheticSpec(**base)


class TestMakeSynthetic:
    def test_deterministic(self):
        spec = SyntheticSpec("s", 3, 60, 4, (8,))
        a = make_synthetic(spec, seed=7)
        b = make_synthetic(spec, seed=7)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        spec = SyntheticSpec("s", 3, 60, 4, (8,))
        a = make_synthetic(spec, seed=1)
        b = make_synthetic(spec, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_balanced_labels(self):
        spec = SyntheticSpec("s", 4, 80, 4, (8,), balanced=True)
        ds = make_synthetic(spec, seed=0)
        np.testing.assert_array_equal(ds.class_counts(), [20, 20, 20, 20])

    def test_unbalanced_labels_random(self):
        spec = SyntheticSpec("s", 4, 400, 4, (8,), balanced=False)
        ds = make_synthetic(spec, seed=0)
        assert ds.class_counts().sum() == 400
        assert ds.class_counts().std() > 0

    def test_squash_bounds(self):
        spec = SyntheticSpec("s", 3, 60, 4, (2, 4, 4), squash=True)
        ds = make_synthetic(spec, seed=0)
        assert np.abs(ds.x).max() <= 1.0

    def test_image_shape(self):
        spec = SyntheticSpec("s", 3, 12, 4, (3, 4, 4))
        ds = make_synthetic(spec, seed=0)
        assert ds.x.shape == (12, 3, 4, 4)

    def test_classes_are_separable(self):
        """Nearest-prototype in feature space beats chance by a wide margin."""
        spec = SyntheticSpec("s", 4, 400, 8, (16,), separation=5.0,
                             sigma_within=0.5, sigma_noise=0.2)
        ds = make_synthetic(spec, seed=0)
        centroids = np.stack([ds.x[ds.y == k].mean(axis=0) for k in range(4)])
        d = ((ds.x[:, None, :] - centroids[None]) ** 2).sum(-1)
        acc = (d.argmin(1) == ds.y).mean()
        assert acc > 0.9


class TestNamedGenerators:
    @pytest.mark.parametrize(
        "factory,classes,shape_len",
        [
            (mnist_like, 10, 1),
            (emnist_like, 26, 1),
            (cifar10_like, 10, 3),
            (cifar100_like, 100, 3),
        ],
    )
    def test_class_counts_and_shapes(self, factory, classes, shape_len):
        ds = factory(num_samples=max(200, classes * 2), seed=0)
        assert ds.num_classes == classes
        assert len(ds.feature_shape) == shape_len

    def test_registry_names_resolve(self):
        for name in DATASETS:
            ds = make_dataset(name, num_samples=max(200, DATASETS[name].factory().num_classes * 2), seed=0)
            assert len(ds) > 0

    def test_registry_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("imagenet")

    def test_difficulty_ordering(self):
        """Nearest-centroid accuracy orders mnist > emnist and c10 > c100."""
        def centroid_acc(ds):
            xf = ds.x.reshape(len(ds), -1)
            cents = np.stack([xf[ds.y == k].mean(axis=0) for k in range(ds.num_classes)])
            d = ((xf[:, None, :] - cents[None]) ** 2).sum(-1)
            return (d.argmin(1) == ds.y).mean()

        m = centroid_acc(mnist_like(num_samples=600, seed=0))
        e = centroid_acc(emnist_like(num_samples=1560, seed=0))
        c10 = centroid_acc(cifar10_like(num_samples=600, seed=0))
        c100 = centroid_acc(cifar100_like(num_samples=3000, seed=0))
        assert m > e > c100
        assert c10 > c100
