"""Tests for repro.datasets.core."""

import numpy as np
import pytest

from repro.datasets.core import ClassificationDataset, DataBatchIterator, train_test_split


def small_ds(n=30, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return ClassificationDataset(
        rng.normal(size=(n, 4)), np.arange(n) % classes, classes, name="s"
    )


class TestClassificationDataset:
    def test_len_and_shapes(self):
        ds = small_ds()
        assert len(ds) == 30
        assert ds.feature_shape == (4,)
        assert ds.flat_features == 4

    def test_image_flat_features(self):
        ds = ClassificationDataset(np.zeros((5, 2, 3, 3)), np.zeros(5, dtype=int), 2)
        assert ds.flat_features == 18

    def test_mismatched_n_raises(self):
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((5, 2)), np.zeros(4, dtype=int), 2)

    def test_label_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((3, 2)), np.array([0, 1, 2]), 2)

    def test_negative_label_raises(self):
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((2, 2)), np.array([0, -1]), 2)

    def test_2d_labels_raise(self):
        with pytest.raises(ValueError):
            ClassificationDataset(np.zeros((2, 2)), np.zeros((2, 1), dtype=int), 2)

    def test_subset_selects(self):
        ds = small_ds()
        sub = ds.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.y, ds.y[[0, 2, 4]])

    def test_class_counts(self):
        ds = small_ds(n=30, classes=3)
        np.testing.assert_array_equal(ds.class_counts(), [10, 10, 10])

    def test_shuffled_preserves_pairs(self):
        ds = small_ds()
        sh = ds.shuffled(seed=1)
        # every (x, y) pair still present: sort by a hashable key
        orig = sorted(map(tuple, np.column_stack([ds.x, ds.y])))
        new = sorted(map(tuple, np.column_stack([sh.x, sh.y])))
        assert orig == new


class TestDataBatchIterator:
    def test_covers_dataset(self):
        ds = small_ds(n=25)
        it = DataBatchIterator(ds, batch_size=8, seed=0)
        total = sum(len(yb) for _, yb in it.epoch())
        assert total == 25

    def test_drop_last(self):
        ds = small_ds(n=25)
        it = DataBatchIterator(ds, batch_size=8, seed=0, drop_last=True)
        sizes = [len(yb) for _, yb in it.epoch()]
        assert sizes == [8, 8, 8]
        assert it.num_batches() == 3

    def test_num_batches_ceil(self):
        ds = small_ds(n=25)
        assert DataBatchIterator(ds, batch_size=8).num_batches() == 4

    def test_epochs_reshuffle(self):
        ds = small_ds(n=20)
        it = DataBatchIterator(ds, batch_size=20, seed=0)
        (x1, _), = list(it.epoch())
        (x2, _), = list(it.epoch())
        assert not np.array_equal(x1, x2)

    def test_bad_batch_size_raises(self):
        with pytest.raises(ValueError):
            DataBatchIterator(small_ds(), batch_size=0)


class TestTrainTestSplit:
    def test_sizes(self):
        tr, te = train_test_split(small_ds(n=100), 0.2, seed=0)
        assert len(tr) + len(te) == 100
        assert abs(len(te) - 20) <= 3

    def test_disjoint_union(self):
        ds = small_ds(n=60)
        ds.x[:, 0] = np.arange(60)  # make rows identifiable
        tr, te = train_test_split(ds, 0.25, seed=1)
        ids = np.concatenate([tr.x[:, 0], te.x[:, 0]])
        assert sorted(ids) == list(range(60))

    def test_stratified_preserves_proportions(self):
        ds = small_ds(n=300, classes=3)
        _, te = train_test_split(ds, 0.2, seed=2, stratified=True)
        counts = te.class_counts()
        assert counts.max() - counts.min() <= 2

    def test_unstratified_works(self):
        tr, te = train_test_split(small_ds(n=50), 0.3, seed=3, stratified=False)
        assert len(tr) + len(te) == 50

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.2, 1.5])
    def test_bad_fraction_raises(self, bad):
        with pytest.raises(ValueError):
            train_test_split(small_ds(), bad)
