"""Partition tests including the hypothesis conservation property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.core import ClassificationDataset
from repro.datasets.partition import (
    contiguous_partition,
    dirichlet_partition,
    iid_partition,
    label_distribution,
    partition_by_name,
    shard_partition,
)


def make_ds(n=200, classes=5, seed=0):
    rng = np.random.default_rng(seed)
    return ClassificationDataset(
        rng.normal(size=(n, 3)), rng.integers(0, classes, size=n), classes
    )


def assert_conservation(parts, n):
    """Disjoint index sets whose union is range(n)."""
    allidx = np.concatenate([p for p in parts])
    assert len(allidx) == n
    assert len(np.unique(allidx)) == n
    assert allidx.min() == 0 and allidx.max() == n - 1


class TestIIDPartition:
    def test_conservation(self):
        ds = make_ds()
        assert_conservation(iid_partition(ds, 7, seed=0), len(ds))

    def test_near_equal_sizes(self):
        parts = iid_partition(make_ds(n=100), 7, seed=0)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        ds = make_ds()
        a = iid_partition(ds, 5, seed=3)
        b = iid_partition(ds, 5, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_too_many_devices_raises(self):
        with pytest.raises(ValueError):
            iid_partition(make_ds(n=5), 6)

    def test_zero_devices_raises(self):
        with pytest.raises(ValueError):
            iid_partition(make_ds(), 0)


class TestDirichletPartition:
    def test_conservation(self):
        ds = make_ds()
        parts = dirichlet_partition(ds, 8, beta=0.3, seed=0)
        assert_conservation(parts, len(ds))

    def test_min_samples_respected(self):
        ds = make_ds(n=400)
        parts = dirichlet_partition(ds, 10, beta=0.3, seed=0, min_samples=5)
        assert min(p.size for p in parts) >= 5

    def test_smaller_beta_more_skew(self):
        """Lower beta concentrates labels: mean max-class share increases."""
        ds = make_ds(n=2000, classes=10, seed=1)

        def mean_max_share(beta):
            parts = dirichlet_partition(ds, 20, beta=beta, seed=2)
            hist = label_distribution(ds, parts).astype(float)
            return (hist.max(axis=1) / hist.sum(axis=1)).mean()

        assert mean_max_share(0.1) > mean_max_share(1.0) > mean_max_share(100.0)

    def test_beta_zero_raises(self):
        with pytest.raises(ValueError):
            dirichlet_partition(make_ds(), 4, beta=0.0)

    def test_impossible_min_samples_raises(self):
        with pytest.raises(ValueError):
            dirichlet_partition(make_ds(n=20), 10, beta=0.3, min_samples=5)

    def test_deterministic(self):
        ds = make_ds()
        a = dirichlet_partition(ds, 6, beta=0.5, seed=9)
        b = dirichlet_partition(ds, 6, beta=0.5, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @given(
        num_devices=st.integers(min_value=2, max_value=12),
        beta=st.floats(min_value=0.05, max_value=10.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_conservation(self, num_devices, beta, seed):
        ds = make_ds(n=150, classes=4, seed=0)
        parts = dirichlet_partition(ds, num_devices, beta=beta, seed=seed)
        assert_conservation(parts, len(ds))


class TestShardPartition:
    def test_conservation(self):
        ds = make_ds(n=120)
        parts = shard_partition(ds, 6, shards_per_device=2, seed=0)
        assert_conservation(parts, len(ds))

    def test_pathological_label_concentration(self):
        """2 shards/device over sorted labels -> each device sees <= 3 classes."""
        ds = make_ds(n=500, classes=10, seed=3)
        parts = shard_partition(ds, 10, shards_per_device=2, seed=0)
        hist = label_distribution(ds, parts)
        classes_per_device = (hist > 0).sum(axis=1)
        assert classes_per_device.max() <= 4

    def test_more_shards_than_samples_raises(self):
        with pytest.raises(ValueError):
            shard_partition(make_ds(n=10), 6, shards_per_device=2)


class TestPartitionByName:
    def test_dispatch_iid(self):
        parts = partition_by_name("iid", make_ds(), 4, seed=0)
        assert len(parts) == 4

    def test_dispatch_dirichlet_beta(self):
        parts = partition_by_name("dirichlet", make_ds(), 4, seed=0, beta=0.5)
        assert len(parts) == 4

    def test_dispatch_shard(self):
        parts = partition_by_name("shard", make_ds(n=100), 4, seed=0)
        assert len(parts) == 4

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            partition_by_name("zipf", make_ds(), 4)

    def test_case_insensitive(self):
        assert len(partition_by_name("IID", make_ds(), 3, seed=0)) == 3


class TestLabelDistribution:
    def test_shape_and_totals(self):
        ds = make_ds(n=90, classes=3)
        parts = iid_partition(ds, 3, seed=0)
        hist = label_distribution(ds, parts)
        assert hist.shape == (3, 3)
        assert hist.sum() == 90

    def test_empty_part_is_zero_row(self):
        ds = make_ds(n=20, classes=2)
        hist = label_distribution(ds, [np.arange(20), np.empty(0, dtype=np.intp)])
        assert hist[1].sum() == 0


class TestContiguousPartition:
    def test_conservation_and_order(self):
        ds = make_ds(101)
        parts = contiguous_partition(ds, 7)
        assert_conservation(parts, 101)
        # Shards are consecutive runs in dataset order.
        assert all(np.array_equal(p, np.arange(p[0], p[-1] + 1)) for p in parts)
        assert np.array_equal(np.concatenate(parts), np.arange(101))

    def test_near_equal_sizes(self):
        ds = make_ds(100)
        sizes = [len(p) for p in contiguous_partition(ds, 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_dispatch_by_name(self):
        ds = make_ds(60)
        parts = partition_by_name("contiguous", ds, 6, seed=5)
        assert_conservation(parts, 60)

    def test_validation(self):
        ds = make_ds(5)
        with pytest.raises(ValueError):
            contiguous_partition(ds, 6)
        with pytest.raises(ValueError):
            contiguous_partition(ds, 0)
