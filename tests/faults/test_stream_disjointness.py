"""Fault rng streams are disjoint from every pre-existing stream.

The load-bearing contract: a run with the fault machinery *armed* but
injecting nothing (null rates) must be bit-identical to ``faults="none"``
— same history, same final weights, same transfer counts — because fault
draws live on their own seed-stream family ``(*, 200..202)``, away from
selection/availability/drops/training (substrate) and codec streams.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, run_experiment

#: Every rate zeroed: the model is non-null (machinery arms) but can
#: never inject anything.
_NULL_COMPOUND = {
    "crash_prob": 0.0,
    "straggle_prob": 0.0,
    "fraction": 0.0,
}


def _pair(method, env, **overrides):
    base = dict(method=method, rounds=4, num_devices=8, num_samples=400,
                partition="dirichlet", env=env)
    base.update(overrides)
    clean = ExperimentSpec(**base)
    armed = ExperimentSpec(**base, faults="compound",
                           fault_kwargs=dict(_NULL_COMPOUND))
    return run_experiment(clean), run_experiment(armed)


def _assert_identical(clean, armed):
    assert clean.history.to_dict() == armed.history.to_dict()
    np.testing.assert_array_equal(clean.final_weights, armed.final_weights)
    assert clean.transport == armed.transport


class TestArmedNullBitIdentity:
    def test_fedavg_under_wan(self):
        """Sync path: selection, drops and sampled latencies all keep
        their draws when the fault machinery is armed."""
        _assert_identical(*_pair("fedavg", "wan"))

    def test_fedavg_under_churn_with_partial_participation(self):
        _assert_identical(*_pair("fedavg", "churn", participation=0.6))

    def test_fedprox_under_flaky_mobile(self):
        _assert_identical(*_pair("fedprox", "flaky_mobile"))

    def test_fedasync_under_churn(self):
        """Async path: the armed event loop adds timers and heartbeats
        but zero perturbation of model/clock/metric state."""
        _assert_identical(*_pair("fedasync", "churn", rounds=6))

    def test_fedbuff_under_ideal(self):
        _assert_identical(*_pair("fedbuff", "ideal", rounds=6,
                                 buffer_goal=3))

    def test_fedavg_with_codec(self):
        """Fault streams are disjoint from the codec's +7 stream too."""
        _assert_identical(*_pair("fedavg", "wan", codec="topk",
                                 codec_kwargs={"fraction": 0.25}))


class TestSeedStreamLayout:
    def test_fault_stream_keys_disjoint_from_known_streams(self):
        """The reserved fault keys collide with no pre-existing stream
        family (selection (r,1), ring (r,2), availability (r,3), drops
        (0,101), training (dev, round, unit))."""
        from repro.core.server import (
            _FAULT_ASYNC_STREAM_KEY,
            _FAULT_MEMBER_STREAM_KEY,
            _FAULT_ROUND_STREAM,
        )

        assert _FAULT_MEMBER_STREAM_KEY == (0, 200)
        assert _FAULT_ASYNC_STREAM_KEY == (0, 202)
        assert _FAULT_ROUND_STREAM == 201
        reserved = {1, 2, 3, 101}
        assert _FAULT_MEMBER_STREAM_KEY[1] not in reserved
        assert _FAULT_ASYNC_STREAM_KEY[1] not in reserved
        assert _FAULT_ROUND_STREAM not in reserved

    def test_same_seed_same_faults(self):
        """Fault injection itself is deterministic: two identical armed
        runs produce identical resilience counters and weights."""
        spec = ExperimentSpec(method="fedavg", rounds=3, num_devices=8,
                              num_samples=400, env="wan", faults="compound",
                              fault_kwargs={"crash_prob": 0.3,
                                            "fraction": 0.25})
        a, b = run_experiment(spec), run_experiment(spec)
        assert a.resilience == b.resilience
        np.testing.assert_array_equal(a.final_weights, b.final_weights)

    def test_fault_kwargs_change_only_fault_draws(self):
        """Swapping the attack style never re-shuffles byzantine
        membership or the substrate: honest devices' history of arrival
        stays identical (same transfers)."""
        base = dict(method="fedavg", rounds=3, num_devices=8,
                    num_samples=400, env="wan", faults="byzantine")
        a = run_experiment(ExperimentSpec(
            **base, fault_kwargs={"fraction": 0.25, "attack": "sign_flip"}))
        b = run_experiment(ExperimentSpec(
            **base, fault_kwargs={"fraction": 0.25, "attack": "scaled"}))
        assert a.history.server_transfers == b.history.server_transfers
        assert a.history.times == b.history.times
