"""Integration: the tolerance mechanisms actually buy robustness.

Two claims from the issue, demonstrated end-to-end:

* Byzantine-robust aggregation (Krum / trimmed mean) holds near-clean
  accuracy under a 20% sign-flip attack that collapses plain weighted
  averaging.
* Round deadlines plus over-selection improve time-to-accuracy over
  vanilla FedAvg when stragglers dominate the barrier.
"""

import pytest

from repro.experiments import ExperimentSpec, run_experiment


def _byz_spec(aggregator, **overrides):
    base = dict(
        method="fedavg",
        rounds=8,
        num_devices=10,
        num_samples=600,
        partition="iid",
        env="ideal",
        aggregator=aggregator,
        seed=1,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestByzantineRobustness:
    """Each robust rule must retain >= 0.9x its *own* clean accuracy
    under a 20% sign-flip attack (Krum trades some clean accuracy for
    robustness by selecting single models, so its clean run is the fair
    baseline), while plain weighted averaging collapses."""

    def _run(self, aggregator, attacked, **overrides):
        spec = _byz_spec(aggregator, **overrides)
        if attacked:
            spec = ExperimentSpec(**{
                **spec.to_dict(),
                "faults": "byzantine",
                "fault_kwargs": {"fraction": 0.2, "attack": "sign_flip",
                                 "scale": 10.0},
            })
        return run_experiment(spec).best_accuracy

    def test_plain_averaging_collapses(self):
        clean = self._run("sample", attacked=False)
        assert self._run("sample", attacked=True) < 0.9 * clean

    def test_krum_retains_accuracy(self):
        clean = self._run("krum", attacked=False)
        assert self._run("krum", attacked=True) >= 0.9 * clean

    def test_multi_krum_retains_accuracy(self):
        clean = self._run("multi_krum", attacked=False)
        attacked = self._run("multi_krum", attacked=True)
        assert attacked >= 0.9 * clean
        # Multi-Krum also retains near the *averaging* clean baseline:
        # it averages the honest central cluster.
        assert attacked >= 0.9 * self._run("sample", attacked=False)

    def test_trimmed_mean_retains_accuracy(self):
        # The per-tail trim must cover the byzantine fraction (20%);
        # the 10% default provably cannot.
        kwargs = {"method_kwargs": {"trim_fraction": 0.25}}
        clean = self._run("trimmed_mean", attacked=False, **kwargs)
        assert self._run("trimmed_mean", attacked=True, **kwargs) >= 0.9 * clean

    def test_under_trimming_fails_open(self):
        """Documenting the sharp edge: trimming less than the byzantine
        fraction lets the attack through."""
        clean = self._run("sample", attacked=False)
        under = self._run("trimmed_mean", attacked=True,
                          method_kwargs={"trim_fraction": 0.1})
        assert under < 0.9 * clean


class TestDeadlineTimeToAccuracy:
    def test_deadline_and_over_selection_beat_vanilla_under_stragglers(self):
        """Same target accuracy, strictly less virtual time when the
        round stops waiting for the straggler tail."""
        straggler = dict(
            method="fedavg", rounds=8, num_devices=10, num_samples=600,
            partition="iid", env="ideal", participation=0.8, seed=2,
            faults="straggler",
            fault_kwargs={"straggle_prob": 0.5, "max_slowdown": 40.0},
        )
        vanilla = run_experiment(ExperimentSpec(**straggler))
        tolerant = run_experiment(ExperimentSpec(
            **straggler, round_deadline=2.0, over_select=0.25))

        target = 0.9 * vanilla.best_accuracy
        t_vanilla = vanilla.time_to_target(target)
        t_tolerant = tolerant.time_to_target(target)
        assert t_vanilla is not None
        assert t_tolerant is not None
        assert t_tolerant < t_vanilla
