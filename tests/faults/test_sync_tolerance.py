"""Synchronous-round fault tolerance: deadlines, over-selection, accounting.

Exercises the :meth:`FederatedServer.charge_round` path through real
FedAvg/FedProx runs — the barrier methods' entire fault surface.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, run_experiment


def _spec(**overrides):
    base = dict(
        method="fedavg",
        rounds=4,
        num_devices=10,
        num_samples=500,
        partition="iid",
        env="ideal",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestDeadline:
    def test_straggler_rounds_charged_at_most_deadline(self):
        """With stragglers and a deadline, a round never bills beyond it."""
        plain = run_experiment(_spec(faults="straggler",
                                     fault_kwargs={"straggle_prob": 0.9}))
        capped = run_experiment(_spec(faults="straggler",
                                      fault_kwargs={"straggle_prob": 0.9},
                                      round_deadline=2.0))
        assert capped.history.times[-1] <= 2.0 * 4 + 1e-9
        assert capped.history.times[-1] < plain.history.times[-1]

    def test_deadline_hits_counted(self):
        res = run_experiment(_spec(faults="straggler",
                                   fault_kwargs={"straggle_prob": 0.9,
                                                 "max_slowdown": 50.0},
                                   round_deadline=2.0)).resilience
        assert res["deadline_hits"] > 0
        assert res["dropped_updates"] > 0
        assert res["wasted_time"] > 0.0

    def test_deadline_without_faults_is_inert_on_ideal(self):
        """Ideal rounds finish exactly at `duration`; a generous deadline
        never triggers, but arming it must still produce resilience
        accounting (the armed path ran)."""
        clean = run_experiment(_spec())
        armed = run_experiment(_spec(round_deadline=1e9))
        assert clean.history.accuracies == armed.history.accuracies
        np.testing.assert_array_equal(clean.final_weights, armed.final_weights)
        assert armed.resilience["deadline_hits"] == 0
        assert clean.resilience == {}

    def test_fedprox_shares_the_path(self):
        res = run_experiment(_spec(method="fedprox",
                                   faults="straggler",
                                   fault_kwargs={"straggle_prob": 0.9,
                                                 "max_slowdown": 50.0},
                                   round_deadline=2.0)).resilience
        assert res["deadline_hits"] > 0


class TestOverSelection:
    def test_margin_grows_participants(self):
        lean = run_experiment(_spec(participation=0.5, seed=3))
        fat = run_experiment(_spec(participation=0.5, over_select=0.8, seed=3))
        # Over-selection samples Bernoulli(min(1, p*(1+margin))): strictly
        # more expected participants, visible as more transfers.
        assert fat.history.server_transfers[-1] > lean.history.server_transfers[-1]

    def test_margin_capped_at_full_participation(self):
        full = run_experiment(_spec(participation=1.0))
        over = run_experiment(_spec(participation=1.0, over_select=0.5))
        assert full.history.accuracies == over.history.accuracies
        np.testing.assert_array_equal(full.final_weights, over.final_weights)


class TestResilienceAccounting:
    def test_crash_counts_exact(self):
        """injected == detected + undetected, and the snapshot is
        internally consistent."""
        res = run_experiment(_spec(faults="crash",
                                   fault_kwargs={"crash_prob": 0.5})).resilience
        assert res["injected_crashes"] > 0
        assert res["injected_crashes"] == (
            res["detected_crashes"] + res["undetected_crashes"]
        )
        assert res["injected_total"] == (
            res["injected_crashes"]
            + res["injected_slowdowns"]
            + res["injected_corruptions"]
        )

    def test_byzantine_corruptions_counted(self):
        res = run_experiment(_spec(faults="byzantine",
                                   fault_kwargs={"fraction": 0.3})).resilience
        # 3 byzantine devices x 4 rounds, all arrived under ideal network.
        assert res["injected_corruptions"] == 12

    def test_corruption_does_not_poison_device_state(self):
        """Byzantine devices lie on the wire but train honestly: the round
        stack passed into charge_round stays untouched (it aliases the
        fleet's live weight rows in recycled-arena mode)."""
        from repro.experiments import build_experiment

        spec = _spec(faults="byzantine",
                     fault_kwargs={"fraction": 0.3, "scale": 1000.0})
        server = build_experiment(spec)
        receivers = list(map(server.fleet.device, range(spec.num_devices)))
        stack = np.arange(spec.num_devices * 4, dtype=np.float64).reshape(
            spec.num_devices, 4
        )
        before = stack.copy()
        arrived = list(range(spec.num_devices))
        out_arrived, out_stack = server.charge_round(
            1, receivers, 1.0, stack, arrived
        )
        np.testing.assert_array_equal(stack, before)  # input untouched
        assert out_stack is not stack  # corruption landed on a copy
        assert np.any(out_stack != before)
        assert server.resilience.injected_corruptions == 3

    def test_round_trip_through_result_dict(self):
        result = run_experiment(_spec(faults="crash",
                                      fault_kwargs={"crash_prob": 0.5}))
        from repro.simulation.results import RunResult

        clone = RunResult.from_dict(result.to_dict())
        assert clone.resilience == result.resilience
        assert "faults_injected" in result.summary()
