"""Async fault tolerance: crash/restart, retransmission, failure detection.

Drives real fedasync/fedbuff runs with the fault machinery armed and
checks the event-loop behaviors: cancelled unit timers, upload
retry/backoff accounting, heartbeat-driven suspicion, and the buffered
methods' live flush goal.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, run_experiment


def _spec(**overrides):
    base = dict(
        method="fedasync",
        rounds=12,
        num_devices=8,
        num_samples=400,
        partition="iid",
        env="ideal",
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestCrashRestart:
    def test_crashes_injected_and_survived(self):
        """Crashes cancel in-flight units but the run still completes all
        its aggregations."""
        result = run_experiment(_spec(faults="crash",
                                      fault_kwargs={"crash_prob": 0.4}))
        res = result.resilience
        assert res["injected_crashes"] > 0
        assert res["wasted_time"] > 0.0
        assert result.history.rounds[-1] >= 12

    def test_long_downtime_crashes_are_detected(self):
        """A downtime well past the suspicion timeout guarantees the
        sweep sees the silence: every such crash is detected."""
        res = run_experiment(_spec(faults="crash",
                                   fault_kwargs={"crash_prob": 0.5,
                                                 "downtime": 20.0},
                                   rounds=20)).resilience
        assert res["injected_crashes"] > 0
        assert res["detected_crashes"] > 0
        assert res["detected_crashes"] <= res["injected_crashes"]
        assert res["injected_crashes"] == (
            res["detected_crashes"] + res["undetected_crashes"]
        )


#: Timers an order of magnitude under the unit times, so timeouts mature
#: well inside these short test runs.
_FAST_TIMERS = {"upload_timeout": 0.02, "retry_backoff": 0.005}


class TestRetransmission:
    def test_drops_trigger_timeouts_and_retries(self):
        res = run_experiment(_spec(env="ideal",
                                   env_kwargs={"drop_prob": 0.4},
                                   faults="straggler",
                                   fault_kwargs={"straggle_prob": 0.1},
                                   method_kwargs=dict(_FAST_TIMERS)),
                             ).resilience
        assert res["uploads_sent"] > 0
        assert res["upload_timeouts"] > 0
        assert res["retries"] > 0

    def test_retry_budget_invariant(self):
        """retries <= max_retries * original uploads: the backoff chain
        is bounded per update."""
        spec = _spec(env="ideal", env_kwargs={"drop_prob": 0.6},
                     faults="straggler", fault_kwargs={"straggle_prob": 0.1},
                     max_retries=2, method_kwargs=dict(_FAST_TIMERS))
        res = run_experiment(spec).resilience
        originals = res["uploads_sent"] - res["retries"]
        assert originals > 0
        assert res["retries"] <= 2 * originals
        # Every timeout either retried or dropped the update.
        assert res["upload_timeouts"] == res["retries"] + res["dropped_updates"]

    def test_zero_retries_drops_immediately(self):
        res = run_experiment(_spec(env="ideal",
                                   env_kwargs={"drop_prob": 0.5},
                                   faults="straggler",
                                   fault_kwargs={"straggle_prob": 0.1},
                                   max_retries=0,
                                   method_kwargs=dict(_FAST_TIMERS))).resilience
        assert res["retries"] == 0
        assert res["dropped_updates"] > 0

    def test_retransmission_beats_drops(self):
        """With drops, the retry path lands strictly more aggregations
        per unit of virtual time than no retries."""
        kwargs = dict(env="ideal", env_kwargs={"drop_prob": 0.5},
                      faults="straggler",
                      fault_kwargs={"straggle_prob": 0.05}, rounds=8,
                      method_kwargs=dict(_FAST_TIMERS))
        no_retry = run_experiment(_spec(max_retries=0, **kwargs))
        retry = run_experiment(_spec(max_retries=4, **kwargs))
        assert retry.history.times[-1] < no_retry.history.times[-1]


class TestFailureDetector:
    def test_suspicions_recorded(self):
        res = run_experiment(_spec(faults="crash",
                                   fault_kwargs={"crash_prob": 0.5,
                                                 "downtime": 20.0},
                                   rounds=20)).resilience
        # Detection implies at least one suspicion fired; false
        # suspicions stay bounded (devices beat every 0.5 units).
        assert res["detected_crashes"] > 0

    def test_fedbuff_live_target_shrinks_goal(self):
        """A fedbuff flush goal above the live cohort would stall forever
        once the detector parks crashed devices; live_target lets the
        run finish."""
        result = run_experiment(_spec(method="fedbuff",
                                      buffer_goal=8,
                                      faults="crash",
                                      fault_kwargs={"crash_prob": 0.3,
                                                    "downtime": 30.0},
                                      rounds=6))
        assert result.history.rounds[-1] >= 6

    def test_live_target_unit(self):
        from repro.experiments import build_experiment

        server = build_experiment(_spec(method="fedbuff"))
        # Outside fit() the machinery is off: the goal passes through.
        assert server.live_target(10) == 10
        server._fault_machinery = True
        server._all_ids = set(range(8))
        server._suspected = {0, 1, 2}
        assert server.live_target(10) == 5
        assert server.live_target(3) == 3
        server._suspected = set(range(8))
        assert server.live_target(10) == 1  # never zero
