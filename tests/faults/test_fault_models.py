"""Unit tests for the fault-model layer (repro.faults)."""

import numpy as np
import pytest

from repro.faults import (
    ByzantineFaults,
    CompoundFaults,
    CrashFaults,
    NoFaults,
    RoundEffects,
    StragglerFaults,
    available_fault_models,
    fault_entries,
    make_fault_model,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRoundEffects:
    def test_neutral(self):
        eff = RoundEffects.neutral(4)
        np.testing.assert_array_equal(eff.factors, np.ones(4))
        np.testing.assert_array_equal(eff.extra, np.zeros(4))
        assert eff.crashes == 0 and eff.slowdowns == 0 and eff.lost_time == 0.0

    def test_merge_multiplies_factors_adds_extra(self):
        a = RoundEffects(
            factors=np.array([2.0, 1.0]), extra=np.array([1.0, 0.0]),
            crashes=1, slowdowns=0, lost_time=0.5,
        )
        b = RoundEffects(
            factors=np.array([3.0, 1.0]), extra=np.array([0.0, 2.0]),
            crashes=0, slowdowns=2, lost_time=0.25,
        )
        m = a.merge(b)
        np.testing.assert_array_equal(m.factors, [6.0, 1.0])
        np.testing.assert_array_equal(m.extra, [1.0, 2.0])
        assert m.crashes == 1 and m.slowdowns == 2
        assert m.lost_time == pytest.approx(0.75)


class TestNoFaults:
    def test_is_null_and_neutral_hooks(self):
        model = NoFaults()
        assert model.is_null
        eff = model.round_effects(np.arange(3), 1.0, rng())
        np.testing.assert_array_equal(eff.factors, np.ones(3))
        assert model.unit_slowdown(0, rng()) == 1.0
        assert model.unit_crash(0, rng()) is None
        assert not model.is_byzantine(0)


class TestCrashFaults:
    def test_round_effects_shape_and_counters(self):
        model = CrashFaults(crash_prob=1.0, downtime=2.0)
        eff = model.round_effects(np.arange(5), 1.0, rng())
        assert eff.crashes == 5
        assert np.all(eff.factors > 1.0)  # redo time stretches completion
        assert np.all(eff.extra > 0.0)  # downtime delays it further
        assert eff.lost_time > 0.0

    def test_zero_prob_is_neutral(self):
        eff = CrashFaults(crash_prob=0.0).round_effects(np.arange(5), 1.0, rng())
        np.testing.assert_array_equal(eff.factors, np.ones(5))
        np.testing.assert_array_equal(eff.extra, np.zeros(5))
        assert eff.crashes == 0

    def test_unit_crash_point_strictly_inside_unit(self):
        model = CrashFaults(crash_prob=1.0, downtime=1.0)
        for _ in range(50):
            frac, downtime = model.unit_crash(0, rng())
            assert 0.0 < frac < 1.0
            assert downtime > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashFaults(crash_prob=1.5)
        with pytest.raises(ValueError):
            CrashFaults(downtime=-1.0)


class TestStragglerFaults:
    def test_slowdowns_bounded(self):
        model = StragglerFaults(straggle_prob=1.0, max_slowdown=5.0)
        slows = [model.unit_slowdown(0, rng(i)) for i in range(100)]
        assert all(1.0 < s <= 5.0 for s in slows)

    def test_round_effects_only_stretch(self):
        model = StragglerFaults(straggle_prob=1.0, max_slowdown=10.0)
        eff = model.round_effects(np.arange(6), 2.0, rng())
        assert eff.slowdowns == 6
        assert np.all(eff.factors > 1.0)
        np.testing.assert_array_equal(eff.extra, np.zeros(6))

    def test_zero_prob_never_slows(self):
        model = StragglerFaults(straggle_prob=0.0)
        assert model.unit_slowdown(0, rng()) == 1.0


class TestByzantineFaults:
    def test_membership_is_fixed_fraction(self):
        model = ByzantineFaults(fraction=0.25)
        model.attach(20, rng())
        members = [i for i in range(20) if model.is_byzantine(i)]
        assert len(members) == 5

    def test_sign_flip_corruption(self):
        model = ByzantineFaults(fraction=0.5, attack="sign_flip", scale=10.0)
        model.attach(2, rng())
        update = np.array([1.0, -2.0])
        bad_dev = 0 if model.is_byzantine(0) else 1
        out = model.corrupt(update, bad_dev, rng())
        np.testing.assert_allclose(out, -10.0 * update)

    def test_gaussian_and_scaled_attacks(self):
        update = np.zeros(8)
        g = ByzantineFaults(fraction=1.0, attack="gaussian", sigma=1.0)
        g.attach(1, rng())
        assert np.any(g.corrupt(update, 0, rng()) != 0.0)
        s = ByzantineFaults(fraction=1.0, attack="scaled", scale=3.0)
        s.attach(1, rng())
        np.testing.assert_allclose(s.corrupt(np.ones(4), 0, rng()), 3.0)

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError):
            ByzantineFaults(attack="mimic")


class TestCompoundFaults:
    def test_merges_children(self):
        model = make_fault_model(
            "compound", crash_prob=1.0, straggle_prob=1.0, fraction=0.5
        )
        model.attach(4, rng())
        eff = model.round_effects(np.arange(4), 1.0, rng())
        assert eff.crashes == 4 and eff.slowdowns == 4
        assert sum(model.is_byzantine(i) for i in range(4)) == 2

    def test_null_rates_are_neutral(self):
        model = make_fault_model(
            "compound", crash_prob=0.0, straggle_prob=0.0, fraction=0.0
        )
        model.attach(4, rng())
        eff = model.round_effects(np.arange(4), 1.0, rng())
        np.testing.assert_array_equal(eff.factors, np.ones(4))
        assert model.unit_crash(0, rng()) is None
        assert model.unit_slowdown(0, rng()) == 1.0
        assert not any(model.is_byzantine(i) for i in range(4))


class TestRegistry:
    def test_known_models(self):
        names = available_fault_models()
        for expected in ("none", "crash", "straggler", "byzantine", "compound"):
            assert expected in names

    def test_entries_sorted_with_descriptions(self):
        entries = fault_entries()
        assert [e.name for e in entries] == sorted(e.name for e in entries)
        assert all(e.description for e in entries)

    def test_make_with_overrides(self):
        model = make_fault_model("byzantine", fraction=0.4, attack="scaled")
        assert isinstance(model, ByzantineFaults)
        assert model.fraction == 0.4

    def test_unknown_name_and_bad_kwargs(self):
        with pytest.raises(ValueError):
            make_fault_model("meteor_strike")
        with pytest.raises(ValueError):
            make_fault_model("crash", no_such_knob=1)

    def test_none_is_null(self):
        assert make_fault_model("none").is_null
        assert not make_fault_model("crash").is_null
