"""Tests for the subcommand command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, spec_from_args


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.method == "fedhisyn"
        assert args.dataset == "mnist_like"
        assert args.eval_every == 1

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_spec_from_args(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "cifar10_like", "--devices", "8",
             "--beta", "0.5", "--het-ratio", "4", "--eval-every", "2"]
        )
        spec = spec_from_args(args)
        assert spec.dataset == "cifar10_like"
        assert spec.num_devices == 8
        assert spec.beta == 0.5
        assert spec.het_ratio == 4.0
        assert spec.eval_every == 2

    def test_selection_args_reach_spec(self):
        args = build_parser().parse_args(
            ["run", "--selection", "fastest", "--selection-fraction", "0.5"]
        )
        spec = spec_from_args(args)
        assert spec.selection == "fastest"
        assert spec.selection_fraction == 0.5

    def test_bad_dataset_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_bad_model_family_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model-family", "transformer"])


COMMON = [
    "--samples", "400", "--devices", "5", "--rounds", "2",
    "--num-classes", "2",
]


class TestRun:
    def test_single_method(self, capsys):
        rc = main(["run", "--method", "fedhisyn", *COMMON, "--quiet"])
        assert rc == 0
        assert "fedhisyn: final accuracy" in capsys.readouterr().out

    def test_unknown_method_error(self, capsys):
        rc = main(["run", "--method", "fancyfl", *COMMON, "--quiet"])
        assert rc == 2
        assert "unknown method" in capsys.readouterr().err

    def test_multiple_methods_rejected(self, capsys):
        rc = main(["run", "--method", "fedhisyn,fedavg", *COMMON, "--quiet"])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err

    def test_verbose_round_log(self, capsys):
        rc = main(["run", "--method", "tfedavg", "--samples", "400",
                   "--devices", "5", "--rounds", "2"])
        assert rc == 0
        assert "[tfedavg]" in capsys.readouterr().out

    def test_json_output(self, capsys):
        rc = main(["run", "--method", "fedavg", *COMMON, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "fedavg"
        assert len(payload["history"]["accuracies"]) == 2


class TestCompare:
    def test_comparison_table(self, capsys):
        rc = main(["compare", "--method", "fedhisyn,tfedavg", *COMMON,
                   "--target", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedhisyn" in out and "tfedavg" in out
        assert "cost@50%" in out

    def test_unknown_method_error(self, capsys):
        rc = main(["compare", "--method", "fedhisyn,fancyfl", *COMMON])
        assert rc == 2
        assert "unknown method" in capsys.readouterr().err


class TestSweep:
    def test_sweep_aggregates_seeds(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0,1", *COMMON,
                   "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "±" in out  # mean±std over the two seeds
        assert "2 runs" in out

    def test_sweep_cache_round_trip(self, tmp_path, capsys):
        argv = ["sweep", "--method", "fedavg", "--seeds", "0", *COMMON,
                "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv) == 0
        assert "(0 cached)" in capsys.readouterr().out
        assert main(argv) == 0
        assert "(1 cached)" in capsys.readouterr().out

    def test_sweep_grid_axis(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0",
                   "--grid", "beta=0.3,0.8", *COMMON, "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "beta" in out and "0.8" in out

    def test_bad_grid_field_error(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0",
                   "--grid", "nonsense=1,2", *COMMON, "--quiet"])
        assert rc == 2
        assert "unknown ExperimentSpec field" in capsys.readouterr().err

    def test_bad_grid_value_error(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0",
                   "--grid", "lr=fast", *COMMON, "--quiet"])
        assert rc == 2
        assert "lr must be a number" in capsys.readouterr().err

    def test_zero_workers_error(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0",
                   "--workers", "0", *COMMON, "--quiet"])
        assert rc == 2
        assert "--workers" in capsys.readouterr().err

    def test_json_output(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0,1", *COMMON,
                   "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["seeds"] == 2


class TestList:
    @pytest.mark.parametrize("what", ["methods", "datasets", "selections"])
    def test_sections(self, what, capsys):
        assert main(["list", what]) == 0
        out = capsys.readouterr().out
        assert {"methods": "fedhisyn", "datasets": "mnist_like",
                "selections": "bernoulli"}[what] in out

    def test_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "methods:" in out and "datasets:" in out


class TestEnvironmentFlags:
    def test_env_args_reach_spec(self):
        args = build_parser().parse_args(
            ["run", "--env", "flaky_mobile", "--drop-prob", "0.1",
             "--availability", "bernoulli"]
        )
        spec = spec_from_args(args)
        assert spec.env == "flaky_mobile"
        assert spec.env_kwargs == {"drop_prob": 0.1,
                                   "availability": "bernoulli"}

    def test_default_env_is_ideal_with_no_kwargs(self):
        spec = spec_from_args(build_parser().parse_args(["run"]))
        assert spec.env == "ideal"
        assert spec.env_kwargs == {}

    def test_units_flags_reach_spec(self):
        args = build_parser().parse_args(
            ["run", "--units-low", "2", "--units-high", "6"]
        )
        spec = spec_from_args(args)
        assert spec.units_low == 2
        assert spec.units_high == 6

    def test_bad_units_bounds_error(self, capsys):
        rc = main(["run", "--method", "fedavg", *COMMON, "--quiet",
                   "--units-low", "5", "--units-high", "2"])
        assert rc == 2
        assert "units_high" in capsys.readouterr().err

    def test_unknown_env_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--env", "the_moon"])

    def test_run_with_non_ideal_env(self, capsys):
        rc = main(["run", "--method", "fedavg", *COMMON, "--quiet",
                   "--env", "churn"])
        assert rc == 0
        assert "fedavg: final accuracy" in capsys.readouterr().out

    def test_run_json_records_env(self, capsys):
        rc = main(["run", "--method", "fedavg", *COMMON, "--json",
                   "--env", "satellite", "--drop-prob", "0.05"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["env"] == "satellite"
        assert payload["config"]["env_kwargs"] == {"drop_prob": 0.05}

    def test_sweep_env_grid_axis(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0",
                   "--grid", "env=ideal,churn", *COMMON, "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "env" in out and "churn" in out

    def test_list_envs(self, capsys):
        assert main(["list", "envs"]) == 0
        out = capsys.readouterr().out
        for name in ("ideal", "lan", "wan", "flaky_mobile"):
            assert name in out

    def test_list_all_includes_envs(self, capsys):
        assert main(["list"]) == 0
        assert "environments:" in capsys.readouterr().out


class TestFleetProfileFlags:
    def test_fleet_profile_reaches_spec(self):
        args = build_parser().parse_args(["run", "--fleet-profile", "lab"])
        spec = spec_from_args(args)
        assert spec.fleet_profile == "lab"
        assert spec.num_devices == 100

    def test_default_is_no_profile(self):
        spec = spec_from_args(build_parser().parse_args(["run"]))
        assert spec.fleet_profile is None

    def test_unknown_profile_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--fleet-profile", "galaxy"])

    def test_list_fleets(self, capsys):
        assert main(["list", "fleets"]) == 0
        out = capsys.readouterr().out
        assert "fleet profiles:" in out
        assert "metro" in out and "devices=20000" in out

    def test_profile_is_a_grid_axis(self, capsys, tmp_path):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0",
                   "--rounds", "1", "--quiet", "--json",
                   "--grid", "fleet_profile=bench",
                   "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert '"final_mean"' in capsys.readouterr().out


class TestAsyncFlags:
    def test_async_args_reach_spec(self):
        args = build_parser().parse_args(
            ["run", "--method", "fedbuff", "--buffer-goal", "4",
             "--staleness-decay", "hinge", "--eval-time-every", "0.5"]
        )
        spec = spec_from_args(args, method="fedbuff")
        assert spec.buffer_goal == 4
        assert spec.staleness_decay == "hinge"
        assert spec.eval_time_every == 0.5

    def test_bad_decay_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--staleness-decay", "bogus"])

    def test_run_fedasync(self, capsys):
        rc = main(["run", "--method", "fedasync", *COMMON, "--quiet"])
        assert rc == 0
        assert "fedasync: final accuracy" in capsys.readouterr().out

    def test_run_fedbuff_json_reports_time_to_target(self, capsys):
        rc = main(["run", "--method", "fedbuff", *COMMON, "--buffer-goal", "2",
                   "--json", "--target", "0.2"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "fedbuff"
        assert "time_to_target" in payload
        assert "checkpoint_times" in payload["history"]

    def test_async_methods_listed(self, capsys):
        main(["list", "methods"])
        out = capsys.readouterr().out
        assert "fedasync" in out and "fedbuff" in out

    def test_sweep_buffer_goal_grid(self, capsys):
        rc = main(["sweep", "--method", "fedbuff", "--seeds", "0",
                   *COMMON, "--grid", "buffer_goal=2,3", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign: 2 runs" in out and "buffer_goal" in out


class TestDeviceBatchingFlag:
    def test_default_is_auto(self):
        args = build_parser().parse_args(["run"])
        assert spec_from_args(args).device_batching == "auto"

    def test_off_reaches_spec(self):
        args = build_parser().parse_args(["run", "--device-batching", "off"])
        assert spec_from_args(args).device_batching == "off"

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--device-batching", "maybe"])

    def test_sweep_grid_axis(self, capsys):
        rc = main(["sweep", "--method", "fedavg", "--seeds", "0", *COMMON,
                   "--grid", "device_batching=auto,off", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign: 2 runs" in out and "device_batching" in out


class TestBench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.command == "bench"
        assert args.scale == "quick"
        assert args.out == "BENCH_perf.json"
        assert args.repeats is None

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--scale", "galactic"])

    def test_forwards_to_suite(self, monkeypatch, tmp_path):
        # Swap the suite's entry point for a recorder: the CLI's job is
        # only to translate flags into the benchmarks argv.
        import benchmarks.perf.__main__ as bench_mod

        seen = {}

        def fake_main(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr(bench_mod, "main", fake_main)
        out = str(tmp_path / "b.json")
        rc = main(["bench", "--scale", "quick", "--out", out, "--repeats", "2"])
        assert rc == 0
        assert seen["argv"] == ["--scale", "quick", "--out", out,
                                "--repeats", "2"]
