"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, spec_from_args


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.method == "fedhisyn"
        assert args.dataset == "mnist_like"

    def test_spec_from_args(self):
        args = build_parser().parse_args(
            ["--dataset", "cifar10_like", "--devices", "8", "--beta", "0.5",
             "--het-ratio", "4"]
        )
        spec = spec_from_args(args)
        assert spec.dataset == "cifar10_like"
        assert spec.num_devices == 8
        assert spec.beta == 0.5
        assert spec.het_ratio == 4.0

    def test_bad_dataset_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])


class TestMain:
    COMMON = [
        "--samples", "400", "--devices", "5", "--rounds", "2",
        "--num-classes", "2", "--quiet",
    ]

    def test_single_method(self, capsys):
        rc = main(["--method", "fedhisyn", *self.COMMON])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedhisyn: final accuracy" in out

    def test_unknown_method_error(self, capsys):
        rc = main(["--method", "fancyfl", *self.COMMON])
        assert rc == 2
        assert "unknown method" in capsys.readouterr().err

    def test_comparison_mode(self, capsys):
        rc = main(["--method", "fedhisyn,tfedavg", *self.COMMON,
                   "--target", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedhisyn" in out and "tfedavg" in out
        assert "cost@50%" in out

    def test_verbose_round_log(self, capsys):
        rc = main(["--method", "tfedavg", "--samples", "400", "--devices", "5",
                   "--rounds", "2"])
        assert rc == 0
        assert "[tfedavg]" in capsys.readouterr().out
