"""Serialization tests including the hypothesis round-trip property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.models import paper_cnn, paper_mlp
from repro.nn.serialization import get_flat_grads, get_flat_params, num_params, set_flat_params


class TestNumParams:
    def test_mlp_count(self):
        m = paper_mlp(10, 4, seed=0, hidden=(8, 6))
        expected = (10 * 8 + 8) + (8 * 6 + 6) + (6 * 4 + 4)
        assert num_params(m) == expected

    def test_cnn_count_positive(self):
        m = paper_cnn(2, 4, 3, seed=0, conv_channels=4, fc_sizes=(8, 6))
        assert num_params(m) > 0


class TestRoundTrip:
    def test_get_set_identity(self):
        m = paper_mlp(6, 3, seed=1, hidden=(5, 4))
        v = get_flat_params(m)
        set_flat_params(m, v)
        np.testing.assert_array_equal(get_flat_params(m), v)

    def test_set_changes_model_output(self):
        m = paper_mlp(6, 3, seed=1, hidden=(5, 4))
        x = np.random.default_rng(0).normal(size=(2, 6))
        before = m.forward(x, train=False)
        set_flat_params(m, np.zeros(num_params(m)))
        after = m.forward(x, train=False)
        assert not np.allclose(before, after)
        np.testing.assert_allclose(after, 0.0)  # all-zero weights -> zero logits

    def test_out_buffer_reused(self):
        m = paper_mlp(6, 3, seed=1, hidden=(5, 4))
        buf = np.empty(num_params(m))
        out = get_flat_params(m, out=buf)
        assert out is buf

    def test_wrong_length_raises(self):
        m = paper_mlp(6, 3, seed=1, hidden=(5, 4))
        with pytest.raises(ValueError):
            set_flat_params(m, np.zeros(num_params(m) + 1))

    def test_wrong_out_shape_raises(self):
        m = paper_mlp(6, 3, seed=1, hidden=(5, 4))
        with pytest.raises(ValueError):
            get_flat_params(m, out=np.empty(3))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip_arbitrary_vectors(self, seed):
        """set_flat_params . get_flat_params == identity on R^d."""
        m = paper_mlp(5, 3, seed=0, hidden=(4, 3))
        v = np.random.default_rng(seed).normal(size=num_params(m)) * 10
        set_flat_params(m, v)
        np.testing.assert_array_equal(get_flat_params(m), v)


class TestFlatGrads:
    def test_zero_after_zero_grad(self):
        m = paper_mlp(5, 3, seed=0, hidden=(4, 3))
        m.zero_grad()
        np.testing.assert_array_equal(get_flat_grads(m), 0.0)

    def test_nonzero_after_backward(self):
        m = paper_mlp(5, 3, seed=0, hidden=(4, 3))
        rng = np.random.default_rng(1)
        m.zero_grad()
        m.loss_and_grad(rng.normal(size=(4, 5)), rng.integers(0, 3, size=4))
        assert np.abs(get_flat_grads(m)).sum() > 0

    def test_order_matches_params(self):
        """Flat grads align with flat params coordinate-by-coordinate."""
        m = paper_mlp(5, 3, seed=0, hidden=(4, 3))
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(8, 5)), rng.integers(0, 3, size=8)
        m.zero_grad()
        m.loss_and_grad(x, y)
        g = get_flat_grads(m)
        w0 = get_flat_params(m)
        eta = 0.01
        set_flat_params(m, w0 - eta * g)
        # One explicit gradient step must equal the optimizer-free update.
        params_after = get_flat_params(m)
        np.testing.assert_allclose(params_after, w0 - eta * g)
