"""Tests for repro.nn.models."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.models import Sequential, logistic_model, paper_cnn, paper_mlp
from repro.nn.optim import SGD
from repro.nn.serialization import num_params


class TestSequential:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_parameters_collected_in_order(self):
        m = paper_mlp(4, 2, seed=0, hidden=(3, 3))
        names = [p.name for p in m.parameters()]
        assert names == [
            "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias",
            "head.weight", "head.bias",
        ]

    def test_predict_shape_and_range(self):
        m = paper_mlp(4, 5, seed=0, hidden=(3, 3))
        preds = m.predict(np.random.default_rng(0).normal(size=(17, 4)), batch_size=5)
        assert preds.shape == (17,)
        assert preds.min() >= 0 and preds.max() < 5

    def test_predict_empty(self):
        m = paper_mlp(4, 5, seed=0, hidden=(3, 3))
        assert m.predict(np.empty((0, 4))).shape == (0,)

    def test_accuracy_empty_raises(self):
        m = paper_mlp(4, 5, seed=0, hidden=(3, 3))
        with pytest.raises(ValueError):
            m.accuracy(np.empty((0, 4)), np.empty(0, dtype=int))

    def test_accuracy_perfect_on_own_predictions(self):
        m = paper_mlp(4, 3, seed=0, hidden=(3, 3))
        x = np.random.default_rng(1).normal(size=(10, 4))
        y = m.predict(x)
        assert m.accuracy(x, y) == 1.0

    def test_evaluate_loss_matches_loss_value(self):
        m = paper_mlp(4, 3, seed=0, hidden=(3, 3))
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(20, 4)), rng.integers(0, 3, size=20)
        full = m.loss.value(m.forward(x, train=False), y)
        batched = m.evaluate_loss(x, y, batch_size=7)
        np.testing.assert_allclose(batched, full, rtol=1e-10)

    def test_training_reduces_loss(self, tiny_dataset):
        m = paper_mlp(tiny_dataset.flat_features, tiny_dataset.num_classes,
                      seed=0, hidden=(16, 8))
        opt = SGD(m.parameters(), lr=0.1)
        x, y = tiny_dataset.x, tiny_dataset.y
        first = None
        for _ in range(30):
            m.zero_grad()
            loss = m.loss_and_grad(x, y)
            first = first if first is not None else loss
            opt.step()
        assert loss < first * 0.5


class TestPaperArchitectures:
    def test_mlp_default_hidden_is_paper(self):
        m = paper_mlp(784, 10, seed=0)
        # 784*200+200 + 200*100+100 + 100*10+10
        assert num_params(m) == 784 * 200 + 200 + 200 * 100 + 100 + 100 * 10 + 10

    def test_cnn_paper_structure(self):
        m = paper_cnn(3, 32, 10, seed=0)  # the paper's CIFAR input size
        kinds = [type(l).__name__ for l in m.layers]
        assert kinds == [
            "Conv2d", "ReLU", "MaxPool2d", "Conv2d", "ReLU", "MaxPool2d",
            "Flatten", "Dense", "ReLU", "Dense", "ReLU", "Dense",
        ]
        out = m.forward(np.zeros((2, 3, 32, 32)), train=False)
        assert out.shape == (2, 10)

    def test_cnn_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            paper_cnn(3, 10, 10, seed=0)

    def test_cnn_small_input(self):
        m = paper_cnn(3, 8, 10, seed=0, conv_channels=4, fc_sizes=(8, 6))
        out = m.forward(np.zeros((1, 3, 8, 8)), train=False)
        assert out.shape == (1, 10)

    def test_logistic_is_linear(self):
        m = logistic_model(5, 3, seed=0)
        assert len(m.layers) == 1
        assert isinstance(m.layers[0], Dense)

    def test_seeded_init_reproducible(self):
        a = paper_mlp(6, 3, seed=42, hidden=(4, 3))
        b = paper_mlp(6, 3, seed=42, hidden=(4, 3))
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)
