"""Tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn.optim import SGD, ConstantLR, InverseTimeLR, ProximalSGD
from repro.nn.tensor import Parameter


def make_param(values):
    p = Parameter(np.asarray(values, dtype=float))
    return p


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1).rate(0) == 0.1
        assert ConstantLR(0.1).rate(100) == 0.1

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_inverse_time_decreasing(self):
        s = InverseTimeLR(numerator=2.0, offset=8.0)
        rates = [s.rate(t) for t in range(5)]
        assert all(a > b for a, b in zip(rates, rates[1:]))
        np.testing.assert_allclose(rates[0], 0.25)

    def test_inverse_time_rejects_bad(self):
        with pytest.raises(ValueError):
            InverseTimeLR(0, 1)
        with pytest.raises(ValueError):
            InverseTimeLR(1, 0)


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0, 2.0])
        p.grad[...] = [0.5, -0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_schedule_used(self):
        p = make_param([1.0])
        opt = SGD([p], lr=InverseTimeLR(1.0, 1.0))
        p.grad[...] = 1.0
        opt.step()  # eta = 1/(1+0) = 1
        np.testing.assert_allclose(p.data, [0.0])
        p.grad[...] = 1.0
        opt.step()  # eta = 1/2
        np.testing.assert_allclose(p.data, [-0.5])

    def test_weight_decay(self):
        p = make_param([2.0])
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad[...] = 0.0
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad[...] = 1.0
        opt.step()  # v = 1, p = -1
        np.testing.assert_allclose(p.data, [-1.0])
        p.grad[...] = 1.0
        opt.step()  # v = 1.9, p = -2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad[...] = 5.0
        SGD([p]).zero_grad()
        np.testing.assert_allclose(p.grad, 0.0)

    def test_bad_momentum_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], momentum=1.0)

    def test_bad_weight_decay_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param([1.0])], weight_decay=-0.1)

    def test_converges_on_quadratic(self):
        """min (w-3)^2: gradient 2(w-3)."""
        p = make_param([0.0])
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad[...] = 2 * (p.data - 3.0)
            opt.step()
        np.testing.assert_allclose(p.data, [3.0], atol=1e-6)


class TestProximalSGD:
    def test_requires_anchor(self):
        p = make_param([1.0])
        opt = ProximalSGD([p], mu=0.1)
        with pytest.raises(RuntimeError):
            opt.step()

    def test_prox_pull(self):
        p = make_param([1.0])
        opt = ProximalSGD([p], lr=0.1, mu=1.0)
        opt.set_anchor()  # anchor = 1.0
        p.data[...] = 2.0  # drifted away
        p.grad[...] = 0.0
        opt.step()
        # update = mu*(2-1) = 1; p = 2 - 0.1 = 1.9 — pulled back.
        np.testing.assert_allclose(p.data, [1.9])

    def test_mu_zero_equals_sgd(self):
        p1, p2 = make_param([1.0, -1.0]), make_param([1.0, -1.0])
        prox = ProximalSGD([p1], lr=0.1, mu=0.0)
        prox.set_anchor()
        sgd = SGD([p2], lr=0.1)
        for _ in range(3):
            p1.grad[...] = p1.data
            p2.grad[...] = p2.data
            prox.step()
            sgd.step()
        np.testing.assert_allclose(p1.data, p2.data)

    def test_negative_mu_raises(self):
        with pytest.raises(ValueError):
            ProximalSGD([make_param([1.0])], mu=-1.0)

    def test_prox_limits_drift(self):
        """With a strong pull, the iterate stays near the anchor even under
        a constant adversarial gradient."""
        p = make_param([0.0])
        opt = ProximalSGD([p], lr=0.1, mu=10.0)
        opt.set_anchor()
        for _ in range(100):
            p.grad[...] = -1.0  # pushes p up forever
            opt.step()
        # equilibrium: mu*(p-0) = 1 -> p = 0.1
        np.testing.assert_allclose(p.data, [0.1], atol=1e-6)
