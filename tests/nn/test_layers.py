"""Layer tests: shapes, finite-difference gradient checks, error paths."""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Dense, Dropout, Flatten, MaxPool2d, ReLU, Tanh
from repro.nn.losses import SoftmaxCrossEntropy


def numeric_grad_input(layer, x, upstream, eps=1e-6):
    """Finite-difference d<upstream, layer(x)>/dx."""
    grad = np.zeros_like(x)
    flat_x = x.ravel()
    flat_g = grad.ravel()
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        up = np.vdot(upstream, layer.forward(x, train=False))
        flat_x[i] = orig - eps
        down = np.vdot(upstream, layer.forward(x, train=False))
        flat_x[i] = orig
        flat_g[i] = (up - down) / (2 * eps)
    return grad


def check_input_grad(layer, x, rtol=1e-5, atol=1e-7):
    rng = np.random.default_rng(0)
    out = layer.forward(x, train=True)
    upstream = rng.normal(size=out.shape)
    analytic = layer.backward(upstream)
    numeric = numeric_grad_input(layer, x, upstream)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


def check_param_grads(layer, x, rtol=1e-5, atol=1e-7, eps=1e-6):
    rng = np.random.default_rng(1)
    out = layer.forward(x, train=True)
    upstream = rng.normal(size=out.shape)
    for p in layer.parameters():
        p.zero_grad()
    layer.backward(upstream)
    for p in layer.parameters():
        flat = p.data.ravel()
        gflat = p.grad.ravel()
        # Sample a handful of coordinates to keep runtime sane.
        idxs = rng.choice(flat.size, size=min(8, flat.size), replace=False)
        for i in idxs:
            orig = flat[i]
            flat[i] = orig + eps
            up = np.vdot(upstream, layer.forward(x, train=False))
            flat[i] = orig - eps
            down = np.vdot(upstream, layer.forward(x, train=False))
            flat[i] = orig
            np.testing.assert_allclose(
                gflat[i], (up - down) / (2 * eps), rtol=rtol, atol=atol,
                err_msg=f"param {p.name} index {i}",
            )


class TestDense:
    def test_output_shape(self):
        layer = Dense(5, 3, rng=np.random.default_rng(0))
        assert layer.forward(np.zeros((7, 5))).shape == (7, 3)

    def test_input_gradient(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        check_input_grad(layer, np.random.default_rng(2).normal(size=(5, 4)))

    def test_param_gradients(self):
        layer = Dense(4, 3, rng=np.random.default_rng(0))
        check_param_grads(layer, np.random.default_rng(3).normal(size=(5, 4)))

    def test_grad_accumulates(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        x = np.ones((2, 3))
        layer.forward(x, train=True)
        layer.backward(np.ones((2, 2)))
        g1 = layer.weight.grad.copy()
        layer.forward(x, train=True)
        layer.backward(np.ones((2, 2)))
        np.testing.assert_allclose(layer.weight.grad, 2 * g1)

    def test_backward_without_forward_raises(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))

    def test_eval_forward_does_not_cache(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        layer.forward(np.ones((2, 3)), train=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))

    def test_wrong_width_raises(self):
        layer = Dense(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 4)))

    @pytest.mark.parametrize("bad", [(0, 2), (2, 0), (-1, 2)])
    def test_bad_dims_raise(self, bad):
        with pytest.raises(ValueError):
            Dense(*bad)


class TestConv2d:
    def test_output_shape_same_padding(self):
        layer = Conv2d(3, 4, 5, padding=2, rng=np.random.default_rng(0))
        assert layer.forward(np.zeros((2, 3, 8, 8))).shape == (2, 4, 8, 8)

    def test_output_shape_valid(self):
        layer = Conv2d(1, 2, 3, rng=np.random.default_rng(0))
        assert layer.forward(np.zeros((1, 1, 6, 6))).shape == (1, 2, 4, 4)

    def test_stride(self):
        layer = Conv2d(1, 1, 2, stride=2, rng=np.random.default_rng(0))
        assert layer.forward(np.zeros((1, 1, 6, 6))).shape == (1, 1, 3, 3)

    def test_input_gradient(self):
        layer = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0))
        check_input_grad(layer, np.random.default_rng(4).normal(size=(2, 2, 4, 4)))

    def test_param_gradients(self):
        layer = Conv2d(2, 2, 3, padding=1, rng=np.random.default_rng(0))
        check_param_grads(layer, np.random.default_rng(5).normal(size=(2, 2, 4, 4)))

    def test_known_convolution(self):
        layer = Conv2d(1, 1, 2, rng=np.random.default_rng(0))
        layer.weight.data[...] = 1.0
        layer.bias.data[...] = 0.0
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = layer.forward(x, train=False)
        np.testing.assert_allclose(out[0, 0], [[8, 12], [20, 24]])

    def test_channel_mismatch_raises(self):
        layer = Conv2d(3, 4, 3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8)))

    def test_backward_without_forward_raises(self):
        layer = Conv2d(1, 1, 3, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 2, 2)))


class TestReLU:
    def test_forward_clamps(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_gradient_mask(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x, train=True)
        grad = layer.backward(np.array([[5.0, 7.0]]))
        np.testing.assert_allclose(grad, [[0.0, 7.0]])

    def test_input_gradient(self):
        check_input_grad(ReLU(), np.random.default_rng(6).normal(size=(4, 5)) + 0.1)


class TestTanh:
    def test_input_gradient(self):
        check_input_grad(Tanh(), np.random.default_rng(7).normal(size=(4, 5)))

    def test_range(self):
        out = Tanh().forward(np.array([[-100.0, 100.0]]))
        np.testing.assert_allclose(out, [[-1.0, 1.0]], atol=1e-12)


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(8).normal(size=(3, 2, 4, 4))
        out = layer.forward(x, train=True)
        assert out.shape == (3, 32)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)


class TestMaxPool2d:
    def test_forward_values(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x, train=False)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_input_gradient(self):
        layer = MaxPool2d(2)
        # Break ties by adding noise so argmax is unique (FD needs that).
        x = np.random.default_rng(9).normal(size=(2, 2, 4, 4))
        check_input_grad(layer, x)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            MaxPool2d(3).forward(np.zeros((1, 1, 4, 4)))

    def test_gradient_routes_to_max(self):
        layer = MaxPool2d(2)
        x = np.zeros((1, 1, 2, 2))
        x[0, 0, 1, 1] = 5.0
        layer.forward(x, train=True)
        grad = layer.backward(np.array([[[[3.0]]]]))
        assert grad[0, 0, 1, 1] == 3.0
        assert grad.sum() == 3.0


class TestDropout:
    def test_eval_is_identity(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.random.default_rng(10).normal(size=(4, 6))
        np.testing.assert_allclose(layer.forward(x, train=False), x)

    def test_p_zero_is_identity(self):
        layer = Dropout(0.0)
        x = np.ones((3, 3))
        np.testing.assert_allclose(layer.forward(x, train=True), x)

    def test_scaling_preserves_expectation(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, train=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_mask_applied_to_gradient(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10))
        out = layer.forward(x, train=True)
        grad = layer.backward(np.ones_like(x))
        # Gradient zero exactly where output was dropped.
        np.testing.assert_allclose((grad == 0), (out == 0))

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_bad_p_raises(self, bad):
        with pytest.raises(ValueError):
            Dropout(bad)


class TestEndToEndGradient:
    def test_full_network_gradcheck(self):
        """Whole-model gradient check through conv, pool, dense and loss."""
        rng = np.random.default_rng(11)
        from repro.nn.models import Sequential

        model = Sequential(
            [
                Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0)),
                ReLU(),
                MaxPool2d(2),
                Flatten(),
                Dense(12, 4, rng=np.random.default_rng(1)),
            ],
            loss=SoftmaxCrossEntropy(),
        )
        x = rng.normal(size=(3, 2, 4, 4))
        y = rng.integers(0, 4, size=3)
        model.zero_grad()
        model.loss_and_grad(x, y)
        eps = 1e-6
        for p in model.parameters():
            flat, gflat = p.data.ravel(), p.grad.ravel()
            for i in rng.choice(flat.size, size=min(5, flat.size), replace=False):
                orig = flat[i]
                flat[i] = orig + eps
                up = model.loss.value(model.forward(x, train=False), y)
                flat[i] = orig - eps
                down = model.loss.value(model.forward(x, train=False), y)
                flat[i] = orig
                np.testing.assert_allclose(
                    gflat[i], (up - down) / (2 * eps), rtol=1e-4, atol=1e-7
                )
