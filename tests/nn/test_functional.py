"""Tests for repro.nn.functional: im2col/col2im, softmax."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import col2im, conv_output_size, im2col, log_softmax, softmax


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,k,s,p,expected",
        [(8, 3, 1, 0, 6), (8, 3, 1, 1, 8), (8, 2, 2, 0, 4), (5, 5, 1, 2, 5)],
    )
    def test_known_geometries(self, size, k, s, p, expected):
        assert conv_output_size(size, k, s, p) == expected

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.arange(2 * 3 * 6 * 6, dtype=float).reshape(2, 3, 6, 6)
        cols = im2col(x, 3, 3, stride=1, pad=0)
        assert cols.shape == (2 * 4 * 4, 3 * 3 * 3)

    def test_identity_kernel_content(self):
        # 1x1 kernel: columns are just the pixels in channel order.
        x = np.random.default_rng(0).normal(size=(1, 2, 3, 3))
        cols = im2col(x, 1, 1)
        np.testing.assert_allclose(
            cols, x.transpose(0, 2, 3, 1).reshape(9, 2)
        )

    def test_first_patch_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2)
        np.testing.assert_allclose(cols[0], [0, 1, 4, 5])

    def test_padding_zeros(self):
        x = np.ones((1, 1, 2, 2))
        cols = im2col(x, 3, 3, pad=1)
        # centre patch covers the full image; corners of it are padding.
        assert cols.shape == (4, 9)
        assert cols[0, 0] == 0.0  # top-left of first patch is padding

    def test_conv_as_gemm_matches_direct(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 5, 5))
        w = rng.normal(size=(4, 3, 3, 3))
        cols = im2col(x, 3, 3)
        out = (cols @ w.reshape(4, -1).T).reshape(2, 3, 3, 4).transpose(0, 3, 1, 2)
        # Direct (slow) convolution.
        ref = np.zeros((2, 4, 3, 3))
        for n in range(2):
            for f in range(4):
                for i in range(3):
                    for j in range(3):
                        ref[n, f, i, j] = np.sum(
                            x[n, :, i : i + 3, j : j + 3] * w[f]
                        )
        np.testing.assert_allclose(out, ref, rtol=1e-10)


class TestCol2im:
    def test_adjointness(self):
        """col2im is the exact adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
        rng = np.random.default_rng(2)
        for stride, pad in [(1, 0), (1, 1), (2, 0), (2, 1)]:
            x = rng.normal(size=(2, 3, 6, 6))
            cols = im2col(x, 3, 3, stride=stride, pad=pad)
            c = rng.normal(size=cols.shape)
            lhs = np.vdot(cols, c)
            rhs = np.vdot(x, col2im(c, x.shape, 3, 3, stride=stride, pad=pad))
            np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_overlap_accumulates(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((4, 4))  # 2x2 kernel, stride 1 -> 2x2 output positions
        out = col2im(cols, x_shape, 2, 2)
        # centre pixel is covered by all 4 patches.
        assert out[0, 0, 1, 1] == 4.0
        assert out[0, 0, 0, 0] == 1.0


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(3).normal(size=(5, 7)) * 10
        s = softmax(x)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, rtol=1e-12)

    def test_shift_invariance(self):
        x = np.random.default_rng(4).normal(size=(3, 4))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-10)

    def test_extreme_logits_stable(self):
        x = np.array([[1000.0, -1000.0]])
        s = softmax(x)
        assert np.isfinite(s).all()
        np.testing.assert_allclose(s, [[1.0, 0.0]], atol=1e-12)

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(5).normal(size=(4, 6))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)), rtol=1e-10)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_probability_simplex(self, n, c, seed):
        x = np.random.default_rng(seed).normal(size=(n, c)) * 5
        s = softmax(x)
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=1), 1.0, rtol=1e-9)
