"""BatchedSequential: stacked-GEMM replicas vs the sequential model.

Equivalence policy (DESIGN.md §15): every per-replica float op of the
batched engine mirrors the sequential path exactly, so results agree to
1e-12 always, and are *bitwise* identical on BLAS builds where a stacked
``np.matmul`` slice equals the corresponding 2-D product — the canary
test below checks that primitive directly and only then demands bitwise.
"""

import numpy as np
import pytest

from repro.nn.batched import BatchedSequential
from repro.nn.layers import Dense, Dropout, Flatten, ReLU, Tanh
from repro.nn.losses import MSELoss
from repro.nn.models import Sequential, logistic_model, paper_cnn, paper_mlp


def _mlp(seed=0):
    return paper_mlp(12, 4, seed=seed, hidden=(10, 6))


def _replicated_batch(model, P=5, B=7, seed=3):
    """(theta arena, grad arena, x, y) for P perturbed replicas of model."""
    rng = np.random.default_rng(seed)
    w0 = model.theta.copy()
    theta = w0 + 0.01 * rng.normal(size=(P, model.dim))
    grad = np.empty_like(theta)
    x = rng.normal(size=(P, B, 12))
    y = rng.integers(0, 4, size=(P, B))
    return theta, grad, x, y


def _sequential_grads(model, theta, x, y):
    """Per-replica gradients from the sequential engine on the same inputs."""
    grads = np.empty_like(theta)
    for p in range(theta.shape[0]):
        model.set_flat(theta[p])
        model.loss_and_grad(x[p], y[p])
        grads[p] = model.grad
    return grads


class TestSupports:
    def test_mlp_supported(self):
        assert BatchedSequential.supports(_mlp())

    def test_single_dense_supported(self):
        assert BatchedSequential.supports(logistic_model(8, 3, seed=0))

    def test_leading_flatten_supported(self):
        model = _mlp()
        model.layers.insert(0, Flatten())
        assert BatchedSequential.supports(model)

    def test_cnn_unsupported(self):
        assert not BatchedSequential.supports(
            paper_cnn(1, 8, 4, seed=0, conv_channels=4, fc_sizes=(16, 8))
        )

    def test_mid_stack_flatten_unsupported(self):
        model = Sequential([Dense(6, 6, rng=np.random.default_rng(0)), Flatten(),
             Dense(6, 3, rng=np.random.default_rng(1))])
        assert not BatchedSequential.supports(model)

    @pytest.mark.parametrize("layer", [Tanh(), Dropout(0.5)])
    def test_non_relu_activations_unsupported(self, layer):
        model = Sequential([Dense(6, 6, rng=np.random.default_rng(0)), layer,
             Dense(6, 3, rng=np.random.default_rng(1))])
        assert not BatchedSequential.supports(model)

    def test_non_ce_loss_unsupported(self):
        model = Sequential([Dense(6, 3, rng=np.random.default_rng(0))], loss=MSELoss())
        assert not BatchedSequential.supports(model)

    def test_constructor_rejects_unsupported(self):
        with pytest.raises(ValueError, match="not batchable"):
            BatchedSequential(
                Sequential([Dense(6, 3, rng=np.random.default_rng(0))], loss=MSELoss())
            )


class TestBind:
    def test_requires_matching_arenas(self):
        engine = BatchedSequential(_mlp())
        theta = np.zeros((3, engine.dim))
        with pytest.raises(ValueError):
            engine.bind(theta, np.zeros((2, engine.dim)))
        with pytest.raises(ValueError):
            engine.bind(np.zeros((3, engine.dim + 1)), np.zeros((3, engine.dim + 1)))

    def test_views_alias_the_arenas(self):
        model = _mlp()
        engine = BatchedSequential(model)
        theta, grad, x, y = _replicated_batch(model)
        engine.bind(theta, grad)
        before = theta.copy()
        engine.loss_and_grad(x, y)
        # The forward pass reads weights through views: gradients landed in
        # the grad arena while theta itself is untouched.
        np.testing.assert_array_equal(theta, before)
        assert np.all(np.isfinite(grad))

    def test_loss_and_grad_requires_bind(self):
        engine = BatchedSequential(_mlp())
        with pytest.raises(RuntimeError):
            engine.loss_and_grad(np.zeros((1, 1, 12)), np.zeros((1, 1), dtype=int))


class TestEquivalence:
    def test_matches_sequential_within_tolerance(self):
        model = _mlp()
        engine = BatchedSequential(model)
        theta, grad, x, y = _replicated_batch(model)
        engine.bind(theta, grad)
        engine.loss_and_grad(x, y)
        want = _sequential_grads(model, theta, x, y)
        np.testing.assert_allclose(grad, want, rtol=1e-12, atol=1e-12)

    def test_logistic_model_matches(self):
        model = logistic_model(12, 4, seed=1)
        engine = BatchedSequential(model)
        theta, grad, x, y = _replicated_batch(model, P=4, B=5)
        engine.bind(theta, grad)
        engine.loss_and_grad(x, y)
        want = _sequential_grads(model, theta, x, y)
        np.testing.assert_allclose(grad, want, rtol=1e-12, atol=1e-12)

    def test_ragged_last_batch_shapes(self):
        # B=1 exercises the degenerate batch the last slice of an odd-sized
        # shard produces.
        model = _mlp()
        engine = BatchedSequential(model)
        theta, grad, x, y = _replicated_batch(model, P=3, B=1)
        engine.bind(theta, grad)
        engine.loss_and_grad(x, y)
        want = _sequential_grads(model, theta, x, y)
        np.testing.assert_allclose(grad, want, rtol=1e-12, atol=1e-12)

    def test_deterministic_across_calls(self):
        model = _mlp()
        engine = BatchedSequential(model)
        theta, grad, x, y = _replicated_batch(model)
        engine.bind(theta, grad)
        engine.loss_and_grad(x, y)
        first = grad.copy()
        engine.loss_and_grad(x, y)
        np.testing.assert_array_equal(grad, first)


def _stacked_gemm_is_bitwise() -> bool:
    """Does this BLAS compute stacked-matmul slices exactly like 2-D GEMMs?"""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(3, 7, 5))
    w = rng.normal(size=(3, 5, 4))
    stacked = np.matmul(x, w)
    back = np.matmul(x.transpose(0, 2, 1), stacked)
    return all(
        np.array_equal(stacked[i], x[i] @ w[i])
        and np.array_equal(back[i], x[i].T @ stacked[i])
        for i in range(3)
    )


def test_bitwise_identity_where_blas_delivers_it():
    """The documented divergence policy, made executable.

    When the stacked-GEMM primitive is bitwise on this platform (probed
    directly), the whole engine must be too; otherwise only the 1e-12
    contract (covered above) applies and this canary records the fact by
    skipping.
    """
    if not _stacked_gemm_is_bitwise():
        pytest.skip(
            "this BLAS computes stacked-GEMM slices with different "
            "instruction selection; the 1e-12 contract applies"
        )
    model = _mlp()
    engine = BatchedSequential(model)
    theta, grad, x, y = _replicated_batch(model)
    engine.bind(theta, grad)
    engine.loss_and_grad(x, y)
    want = _sequential_grads(model, theta, x, y)
    np.testing.assert_array_equal(grad, want)
