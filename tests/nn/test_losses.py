"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn.losses import MSELoss, SoftmaxCrossEntropy


class TestSoftmaxCrossEntropy:
    def setup_method(self):
        self.loss = SoftmaxCrossEntropy()

    def test_uniform_logits_value(self):
        logits = np.zeros((4, 10))
        y = np.arange(4) % 10
        np.testing.assert_allclose(self.loss.value(logits, y), np.log(10.0))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert self.loss.value(logits, np.array([1, 2])) < 1e-8

    def test_grad_matches_fd(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 4))
        y = rng.integers(0, 4, size=5)
        g = self.loss.grad(logits, y)
        eps = 1e-6
        for i in range(5):
            for j in range(4):
                orig = logits[i, j]
                logits[i, j] = orig + eps
                up = self.loss.value(logits, y)
                logits[i, j] = orig - eps
                down = self.loss.value(logits, y)
                logits[i, j] = orig
                np.testing.assert_allclose(g[i, j], (up - down) / (2 * eps), rtol=1e-5, atol=1e-9)

    def test_grad_rows_sum_to_zero(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(6, 5))
        y = rng.integers(0, 5, size=6)
        g = self.loss.grad(logits, y)
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_target_out_of_range_raises(self):
        with pytest.raises(ValueError):
            self.loss.value(np.zeros((2, 3)), np.array([0, 3]))

    def test_negative_target_raises(self):
        with pytest.raises(ValueError):
            self.loss.value(np.zeros((2, 3)), np.array([0, -1]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            self.loss.value(np.zeros((2, 3)), np.array([0, 1, 2]))

    def test_1d_logits_raise(self):
        with pytest.raises(ValueError):
            self.loss.value(np.zeros(3), np.array([0]))


class TestMSELoss:
    def test_zero_at_match(self):
        x = np.ones((3, 2))
        assert MSELoss().value(x, x.copy()) == 0.0

    def test_known_value(self):
        a = np.zeros((1, 2))
        b = np.array([[3.0, 4.0]])
        np.testing.assert_allclose(MSELoss().value(a, b), (9 + 16) / 2)

    def test_grad_matches_fd(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(3, 2))
        b = rng.normal(size=(3, 2))
        g = MSELoss().grad(a, b)
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                orig = a[i, j]
                a[i, j] = orig + eps
                up = MSELoss().value(a, b)
                a[i, j] = orig - eps
                down = MSELoss().value(a, b)
                a[i, j] = orig
                np.testing.assert_allclose(g[i, j], (up - down) / (2 * eps), rtol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((2, 2)), np.zeros((2, 3)))
