"""Flat-buffer invariants and seed-path equivalence.

The flat-buffer engine rests on two promises:

1. every ``Parameter.data``/``Parameter.grad`` is a live view into the
   model's contiguous ``theta``/``grad`` vectors, and nothing in the
   training stack ever reallocates those vectors mid-run;
2. the fused whole-vector training math (optimizer step, momentum,
   proximal pull, SCAFFOLD correction, overwriting backward, fused loss)
   produces bit-identical results to the seed revision's per-parameter
   path.

The seed path is re-implemented inline here (two-pass loss, per-parameter
loops) so the equivalence tests are self-contained.
"""

import numpy as np
import pytest

from repro.datasets.synthetic import cifar10_like, mnist_like
from repro.device.device import LocalTrainer
from repro.nn.layers import Dense, Flatten, ReLU, Tanh
from repro.nn.models import Sequential, paper_cnn, paper_mlp
from repro.nn.optim import SGD, ProximalSGD
from repro.nn.serialization import get_flat_params, num_params, set_flat_params
from repro.utils.rng import SeedSequenceFactory


# --------------------------------------------------------------------------
# Inline seed-path reference (per-parameter loops, two-pass loss).


def seed_loss_and_grad(model, x, y):
    logits = model.forward(x, train=True)
    value = model.loss.value(logits, y)
    model.backward(model.loss.grad(logits, y))
    return value


def seed_train(
    model,
    weights,
    shard,
    epochs,
    lr=0.1,
    batch_size=50,
    seed=0,
    stream_key=(0,),
    momentum=0.0,
    anchor=None,
    mu=0.0,
    correction=None,
):
    """The seed revision's ``LocalTrainer.train`` loop, verbatim."""
    set_flat_params(model, weights)
    params = model.parameters()
    slices = []
    offset = 0
    for p in params:
        slices.append((offset, offset + p.size, p.shape))
        offset += p.size
    rng = SeedSequenceFactory(seed).generator(*stream_key)
    velocity = [np.zeros_like(p.data) for p in params] if momentum > 0 else None
    n = len(shard)
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            for p in params:
                p.zero_grad()
            seed_loss_and_grad(model, shard.x[idx], shard.y[idx])
            if correction is not None:
                for (lo, hi, shape), p in zip(slices, params):
                    p.grad += correction[lo:hi].reshape(shape)
            if anchor is not None and mu > 0.0:
                for (lo, hi, shape), p in zip(slices, params):
                    p.grad += mu * (p.data - anchor[lo:hi].reshape(shape))
            if velocity is None:
                for p in params:
                    p.data -= lr * p.grad
            else:
                for v, p in zip(velocity, params):
                    v *= momentum
                    v += p.grad
                    p.data -= lr * v
    return get_flat_params(model)


# --------------------------------------------------------------------------


@pytest.fixture
def mlp():
    return paper_mlp(12, 4, seed=3, hidden=(8, 6))


class TestViewAliasing:
    def test_params_alias_theta_and_grad(self, mlp):
        for p in mlp.parameters():
            assert np.shares_memory(p.data, mlp.theta)
            assert np.shares_memory(p.grad, mlp.grad)

    def test_flat_layout_matches_parameter_order(self, mlp):
        manual = np.concatenate([p.data.ravel() for p in mlp.parameters()])
        np.testing.assert_array_equal(mlp.theta, manual)
        np.testing.assert_array_equal(get_flat_params(mlp), manual)

    def test_views_survive_set_flat_params(self, mlp):
        theta = mlp.theta
        v = np.random.default_rng(0).normal(size=num_params(mlp))
        set_flat_params(mlp, v)
        assert mlp.theta is theta  # same buffer, no reallocation
        np.testing.assert_array_equal(mlp.theta, v)
        for p in mlp.parameters():
            assert np.shares_memory(p.data, theta)

    def test_get_flat_params_returns_copy(self, mlp):
        out = get_flat_params(mlp)
        assert not np.shares_memory(out, mlp.theta)

    def test_optimizer_step_never_reallocates(self, mlp):
        theta = mlp.theta
        opt = SGD(mlp.parameters(), lr=0.1, momentum=0.5)
        rng = np.random.default_rng(1)
        for _ in range(3):
            mlp.zero_grad()
            mlp.loss_and_grad(rng.normal(size=(5, 12)), rng.integers(0, 4, size=5))
            opt.step()
        assert mlp.theta is theta
        for p in mlp.parameters():
            assert np.shares_memory(p.data, theta)

    def test_trainer_never_reallocates(self, mlp):
        shard = mnist_like(num_samples=40, seed=0, feature_dim=12)
        shard = type(shard)(shard.x, shard.y % 4, 4, name="t")
        trainer = LocalTrainer(mlp, lr=0.1, batch_size=16, seed=0)
        theta = mlp.theta
        trainer.train(get_flat_params(mlp), shard, 2)
        assert mlp.theta is theta

    def test_layer_mutation_rebuilds_preserving_values(self, mlp):
        before = get_flat_params(mlp)
        old_theta = mlp.theta
        mlp.layers.insert(0, Flatten())  # what build_model does for MLPs
        after = get_flat_params(mlp)
        np.testing.assert_array_equal(before, after)
        assert mlp.theta is not old_theta  # rebuilt buffer
        for p in mlp.parameters():
            assert np.shares_memory(p.data, mlp.theta)

    def test_layer_replacement_detected(self, mlp):
        """Delete-and-replace at one position must trigger a rebuild even
        if CPython hands the new layer the freed layer's id (the structure
        key holds strong references, so ids cannot be recycled)."""
        del mlp.layers[1]  # the first ReLU
        mlp.layers.insert(1, Tanh())
        rng = np.random.default_rng(7)
        mlp.loss_and_grad(rng.normal(size=(4, 12)), rng.integers(0, 4, size=4))
        assert mlp._relu_layer[1] is False  # masks rebuilt for the Tanh
        for p in mlp.parameters():
            assert np.shares_memory(p.data, mlp.theta)

    def test_backward_overwrite_guarded_on_custom_layers(self):
        class MyDense(Dense):
            pass

        r = np.random.default_rng(0)
        m = Sequential([MyDense(5, 3, rng=r)])
        logits = m.forward(r.normal(size=(2, 5)), train=True)
        with pytest.raises(ValueError):
            m.backward(np.ones_like(logits), overwrite=True)

    @pytest.mark.parametrize("clone", ["pickle", "deepcopy"])
    def test_clone_rebuilds_flat_buffers(self, mlp, clone):
        """pickle/deepcopy rehydrate views as standalone arrays; the clone
        must rebuild its buffers so flat writes still reach forward()."""
        import copy
        import pickle

        rng = np.random.default_rng(6)
        x = rng.normal(size=(3, 12))
        if clone == "pickle":
            m2 = pickle.loads(pickle.dumps(mlp))
        else:
            m2 = copy.deepcopy(mlp)
        np.testing.assert_array_equal(m2.theta, mlp.theta)
        for p in m2.parameters():
            assert np.shares_memory(p.data, m2.theta)
            assert not np.shares_memory(p.data, mlp.theta)
        set_flat_params(m2, np.zeros(num_params(m2)))
        np.testing.assert_allclose(m2.forward(x, train=False), 0.0)
        assert not np.allclose(mlp.forward(x, train=False), 0.0)  # original intact

    def test_parameter_copy_detaches(self, mlp):
        p = mlp.parameters()[0]
        c = p.copy()
        assert not np.shares_memory(c.data, mlp.theta)
        before = p.data.copy()
        c.data += 1.0
        np.testing.assert_array_equal(p.data, before)  # original untouched


class TestBitwiseEquivalence:
    """Fused training == seed per-parameter training, bit for bit."""

    CASES = {
        "plain": {},
        "momentum": {"momentum": 0.9},
        "fedprox": {"mu": 0.05, "use_anchor": True},
        "scaffold": {"use_correction": True},
        "all_terms": {"momentum": 0.5, "mu": 0.01, "use_anchor": True,
                      "use_correction": True},
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_mlp_unit_matches_seed(self, case):
        opts = dict(self.CASES[case])
        momentum = opts.pop("momentum", 0.0)
        mu = opts.pop("mu", 0.0)
        use_anchor = opts.pop("use_anchor", False)
        use_correction = opts.pop("use_correction", False)

        shard = mnist_like(num_samples=90, seed=5, feature_dim=10)
        model_a = paper_mlp(10, 10, seed=11, hidden=(7, 5))
        model_b = paper_mlp(10, 10, seed=11, hidden=(7, 5))
        w0 = get_flat_params(model_a)
        rng = np.random.default_rng(6)
        anchor = w0 if use_anchor else None
        correction = (
            rng.normal(scale=1e-3, size=w0.size) if use_correction else None
        )

        trainer = LocalTrainer(
            model_a, lr=0.1, batch_size=32, seed=9, momentum=momentum
        )
        fused, _ = trainer.train(
            w0, shard, 3, stream_key=(1, 2), anchor=anchor, mu=mu,
            correction=correction,
        )
        reference = seed_train(
            model_b, w0, shard, 3, lr=0.1, batch_size=32, seed=9,
            stream_key=(1, 2), momentum=momentum, anchor=anchor, mu=mu,
            correction=correction,
        )
        np.testing.assert_array_equal(fused, reference)

    def test_cnn_unit_matches_seed(self):
        shard = cifar10_like(num_samples=24, seed=1, image_size=8)
        model_a = paper_cnn(3, 8, 10, seed=2, conv_channels=3, fc_sizes=(6, 5))
        model_b = paper_cnn(3, 8, 10, seed=2, conv_channels=3, fc_sizes=(6, 5))
        w0 = get_flat_params(model_a)
        trainer = LocalTrainer(model_a, lr=0.05, batch_size=8, seed=4)
        fused, _ = trainer.train(w0, shard, 2, stream_key=(3,))
        reference = seed_train(
            model_b, w0, shard, 2, lr=0.05, batch_size=8, seed=4, stream_key=(3,)
        )
        np.testing.assert_array_equal(fused, reference)

    def test_fused_loss_matches_two_pass(self):
        rng = np.random.default_rng(0)
        m = paper_mlp(6, 5, seed=0, hidden=(4, 4))
        x, y = rng.normal(size=(13, 6)) * 5, rng.integers(0, 5, size=13)
        logits = m.forward(x, train=False)
        v, g = m.loss.value_and_grad(logits, y)
        assert v == m.loss.value(logits, y)
        np.testing.assert_array_equal(g, m.loss.grad(logits, y))

    def test_fused_sgd_matches_per_param_path(self):
        """Flat-span SGD == the per-parameter fallback on detached params."""
        m = paper_mlp(8, 3, seed=7, hidden=(6, 4))
        detached = [p.copy() for p in m.parameters()]  # no flat backing
        rng = np.random.default_rng(8)
        fused_opt = SGD(m.parameters(), lr=0.2, momentum=0.7, weight_decay=0.01)
        plain_opt = SGD(detached, lr=0.2, momentum=0.7, weight_decay=0.01)
        assert fused_opt._span is not None and plain_opt._span is None
        for _ in range(4):
            for p, d in zip(m.parameters(), detached):
                g = rng.normal(size=p.shape)
                p.grad[...] = g
                d.grad[...] = g
            fused_opt.step()
            plain_opt.step()
        for p, d in zip(m.parameters(), detached):
            np.testing.assert_array_equal(p.data, d.data)

    def test_optimizer_survives_layer_mutation(self):
        """A layer-list mutation rebases the flat buffers; an optimizer
        built earlier must keep stepping the *live* parameters."""
        m = paper_mlp(6, 3, seed=5, hidden=(4, 3))
        opt = SGD(m.parameters(), lr=0.1)
        m.layers.insert(0, Flatten())  # triggers a theta/grad rebuild
        rng = np.random.default_rng(0)
        before = get_flat_params(m)
        m.loss_and_grad(rng.normal(size=(4, 6)), rng.integers(0, 3, size=4))
        opt.step()
        after = get_flat_params(m)
        assert not np.array_equal(before, after)  # the step landed
        expected = before - 0.1 * m.grad
        np.testing.assert_array_equal(after, expected)

    def test_optimizer_falls_back_when_span_breaks(self):
        """Splicing a parameterized layer between existing ones breaks
        span contiguity; the optimizer must fall back per-parameter (and
        carry its momentum state) instead of stepping a stale buffer."""
        m = paper_mlp(6, 3, seed=5, hidden=(4, 3))
        opt = SGD(m.parameters(), lr=0.1, momentum=0.5)
        rng = np.random.default_rng(1)
        m.loss_and_grad(rng.normal(size=(4, 6)), rng.integers(0, 3, size=4))
        opt.step()  # fused step builds fused velocity
        m.layers.insert(2, Dense(4, 4, rng=np.random.default_rng(9)))
        assert m.theta is not None  # force the rebase, as training would
        old_params = opt.params
        grads = [rng.normal(size=p.shape) for p in old_params]
        for p, g in zip(old_params, grads):
            p.grad[...] = g
        data_before = [p.data.copy() for p in old_params]
        vel_before = [v.copy() for v in (opt._velocity or [])]
        opt.step()
        assert opt._span is None  # span no longer contiguous
        if vel_before:
            flat_v = np.concatenate([v.ravel() for v in vel_before])
        offset = 0
        for p, g, d in zip(old_params, grads, data_before):
            v = 0.5 * flat_v[offset : offset + p.size].reshape(p.shape) + g
            np.testing.assert_array_equal(p.data, d - 0.1 * v)
            offset += p.size

    def test_fused_proximal_sgd_matches_per_param_path(self):
        m = paper_mlp(8, 3, seed=7, hidden=(6, 4))
        detached = [p.copy() for p in m.parameters()]
        rng = np.random.default_rng(9)
        fused_opt = ProximalSGD(m.parameters(), lr=0.1, mu=0.3)
        plain_opt = ProximalSGD(detached, lr=0.1, mu=0.3)
        fused_opt.set_anchor()
        plain_opt.set_anchor()
        for _ in range(3):
            for p, d in zip(m.parameters(), detached):
                g = rng.normal(size=p.shape)
                p.grad[...] = g
                d.grad[...] = g
            fused_opt.step()
            plain_opt.step()
        for p, d in zip(m.parameters(), detached):
            np.testing.assert_array_equal(p.data, d.data)


class TestOverwriteBackward:
    def test_loss_and_grad_yields_exact_batch_gradient(self, mlp):
        """Back-to-back calls do not accumulate stale gradients."""
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(6, 12)), rng.integers(0, 4, size=6)
        mlp.loss_and_grad(x, y)
        first = mlp.grad.copy()
        mlp.loss_and_grad(x, y)  # no zero_grad in between
        np.testing.assert_array_equal(mlp.grad, first)

    def test_subclassed_layer_falls_back_to_seed_semantics(self):
        """A Dense subclass opts out of the overwrite/skip fast paths but
        training results stay identical."""

        class MyDense(Dense):
            pass

        rng = np.random.default_rng(3)
        x, y = rng.normal(size=(5, 6)), rng.integers(0, 3, size=5)

        def build(cls):
            r = np.random.default_rng(42)
            return Sequential([cls(6, 4, rng=r), ReLU(), cls(4, 3, rng=r)])

        custom, standard = build(MyDense), build(Dense)
        assert not custom._overwrite_ok and standard._overwrite_ok
        v1 = custom.loss_and_grad(x, y)
        v2 = standard.loss_and_grad(x, y)
        assert v1 == v2
        np.testing.assert_array_equal(custom.grad, standard.grad)


class TestEvaluateMetrics:
    def test_matches_separate_passes(self):
        m = paper_mlp(9, 6, seed=1, hidden=(8, 7))
        rng = np.random.default_rng(4)
        x, y = rng.normal(size=(53, 9)), rng.integers(0, 6, size=53)
        acc, loss = m.evaluate_metrics(x, y, batch_size=16)  # ragged last batch
        assert acc == m.accuracy(x, y, batch_size=16)
        np.testing.assert_allclose(loss, m.evaluate_loss(x, y, batch_size=16))

    def test_empty_raises(self):
        m = paper_mlp(9, 6, seed=1, hidden=(8, 7))
        with pytest.raises(ValueError):
            m.evaluate_metrics(np.empty((0, 9)), np.empty(0, dtype=int))
