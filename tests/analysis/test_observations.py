"""Tests for the Section 3.2 observation experiments."""

import numpy as np
import pytest

from repro.analysis.observations import (
    COMMUNICATION_MODES,
    ObservationResult,
    cluster_count_experiment,
    communication_mode_experiment,
    ring_order_experiment,
)
from repro.nn.serialization import get_flat_params


@pytest.fixture()
def w0(tiny_trainer):
    return get_flat_params(tiny_trainer.model)


class TestObservationResult:
    def test_final(self):
        r = ObservationResult("x", [0.1, 0.5])
        assert r.final == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ObservationResult("x").final


class TestCommunicationModes:
    def test_all_modes_run(self, homogeneous_devices, tiny_split, w0):
        _, test_set = tiny_split
        for mode in COMMUNICATION_MODES:
            res = communication_mode_experiment(
                mode, homogeneous_devices, test_set, w0, rounds=2
            )
            assert res.label == mode
            assert len(res.round_accuracies) == 2
            assert 0.0 <= res.final <= 1.0

    def test_unknown_mode_raises(self, homogeneous_devices, tiny_split, w0):
        _, test_set = tiny_split
        with pytest.raises(ValueError):
            communication_mode_experiment(
                "gossip", homogeneous_devices, test_set, w0
            )

    def test_zero_rounds_raises(self, homogeneous_devices, tiny_split, w0):
        _, test_set = tiny_split
        with pytest.raises(ValueError):
            communication_mode_experiment(
                "none", homogeneous_devices, test_set, w0, rounds=0
            )

    def test_communication_helps_on_skewed_data(self, tiny_split, tiny_trainer, w0):
        """Observation 1 in miniature: ring beats isolation on Non-IID."""
        from repro.datasets.partition import dirichlet_partition
        from repro.device import make_devices

        train_set, test_set = tiny_split
        parts = dirichlet_partition(train_set, 6, beta=0.15, seed=7, min_samples=2)
        devices = make_devices(train_set, parts, np.ones(6), tiny_trainer)
        none = communication_mode_experiment(
            "none", devices, test_set, w0, rounds=8, seed=0
        )
        ring = communication_mode_experiment(
            "ring", devices, test_set, w0, rounds=8, seed=0
        )
        assert ring.final > none.final

    def test_deterministic(self, homogeneous_devices, tiny_split, w0):
        _, test_set = tiny_split
        a = communication_mode_experiment(
            "random", homogeneous_devices, test_set, w0, rounds=3, seed=5
        )
        b = communication_mode_experiment(
            "random", homogeneous_devices, test_set, w0, rounds=3, seed=5
        )
        assert a.round_accuracies == b.round_accuracies

    def test_eval_every_thins_history(self, homogeneous_devices, tiny_split, w0):
        _, test_set = tiny_split
        res = communication_mode_experiment(
            "ring", homogeneous_devices, test_set, w0, rounds=6, eval_every=3
        )
        assert len(res.round_accuracies) == 2


class TestRingOrderExperiment:
    def test_orders_run(self, tiny_devices, tiny_split, w0):
        _, test_set = tiny_split
        for order in ("random", "small_to_large", "large_to_small"):
            res = ring_order_experiment(
                order, tiny_devices, test_set, w0, rounds=2
            )
            assert res.label == order
            assert len(res.round_accuracies) == 2

    def test_zero_rounds_raises(self, tiny_devices, tiny_split, w0):
        _, test_set = tiny_split
        with pytest.raises(ValueError):
            ring_order_experiment("random", tiny_devices, test_set, w0, rounds=0)

    def test_models_persist_across_rounds(self, tiny_devices, tiny_split, w0):
        """Decentralized continuation: accuracy after 4 rounds is not worse
        than after 1 round by more than noise (learning accumulates)."""
        _, test_set = tiny_split
        res = ring_order_experiment(
            "small_to_large", tiny_devices, test_set, w0, rounds=4
        )
        assert res.round_accuracies[-1] >= res.round_accuracies[0] - 0.1


class TestClusterCountExperiment:
    def test_runs_and_tracks_fastest_class(self, tiny_devices, tiny_split, w0):
        _, test_set = tiny_split
        res = cluster_count_experiment(2, tiny_devices, test_set, w0, rounds=2)
        assert res.label == "K=2"
        assert len(res.round_accuracies) == 2

    def test_k_one_single_ring(self, tiny_devices, tiny_split, w0):
        _, test_set = tiny_split
        res = cluster_count_experiment(1, tiny_devices, test_set, w0, rounds=2)
        assert 0.0 <= res.final <= 1.0

    def test_zero_rounds_raises(self, tiny_devices, tiny_split, w0):
        _, test_set = tiny_split
        with pytest.raises(ValueError):
            cluster_count_experiment(2, tiny_devices, test_set, w0, rounds=0)
