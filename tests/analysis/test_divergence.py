"""Tests for the Eq. (4) divergence metric."""

import numpy as np
import pytest

from repro.analysis.divergence import (
    empirical_divergence_proxy,
    label_divergence,
    per_device_divergence,
)
from repro.datasets.partition import dirichlet_partition, iid_partition, label_distribution


class TestPerDeviceDivergence:
    def test_identical_distributions_zero(self):
        hist = np.array([[10, 10], [20, 20]])
        np.testing.assert_allclose(per_device_divergence(hist), 0.0)

    def test_disjoint_classes_max(self):
        hist = np.array([[10, 0], [0, 10]])
        # each device is L1 distance 1 from the 50/50 global: |1-.5|+|0-.5|=1
        np.testing.assert_allclose(per_device_divergence(hist), [1.0, 1.0])

    def test_empty_device_raises(self):
        with pytest.raises(ValueError):
            per_device_divergence(np.array([[1, 1], [0, 0]]))

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            per_device_divergence(np.array([1, 2]))


class TestLabelDivergence:
    def test_total_is_sum(self):
        hist = np.array([[10, 0], [0, 10]])
        assert label_divergence(hist) == pytest.approx(2.0)

    def test_dirichlet_skew_monotone(self, tiny_dataset):
        """Smaller beta -> larger Eq. (4) divergence."""
        values = {}
        for beta in (0.1, 1.0, 100.0):
            parts = dirichlet_partition(tiny_dataset, 10, beta=beta, seed=0)
            values[beta] = label_divergence(label_distribution(tiny_dataset, parts))
        assert values[0.1] > values[1.0] > values[100.0]

    def test_iid_near_zero(self, tiny_dataset):
        parts = iid_partition(tiny_dataset, 5, seed=0)
        hist = label_distribution(tiny_dataset, parts)
        assert label_divergence(hist) < 1.0  # small sampling noise only


class TestEmpiricalProxy:
    def test_proxy_tracks_partition_skew(self, tiny_split, tiny_trainer):
        """Device models trained on IID shards generalize better than ones
        trained on highly skewed shards — the paper's accuracy proxy."""
        from repro.device import make_devices

        train_set, test_set = tiny_split
        scores = {}
        for name, beta in (("iid", None), ("skew", 0.1)):
            if beta is None:
                parts = iid_partition(train_set, 6, seed=1)
            else:
                parts = dirichlet_partition(train_set, 6, beta=beta, seed=1)
            devices = make_devices(train_set, parts, np.ones(6), tiny_trainer)
            import numpy as _np

            from repro.nn.serialization import get_flat_params

            w0 = get_flat_params(tiny_trainer.model)
            stack = _np.stack(
                [d.run_unit(w0, 20, 0, 0) for d in devices]
            )
            scores[name] = empirical_divergence_proxy(devices, test_set, stack)
        assert scores["iid"] > scores["skew"]

    def test_shape_mismatch_raises(self, tiny_devices, tiny_split):
        _, test_set = tiny_split
        with pytest.raises(ValueError):
            empirical_divergence_proxy(
                tiny_devices, test_set, np.zeros((1, tiny_devices[0].trainer.dim))
            )
