"""Tests for the Theorem 5.1 convergence machinery."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    fedavg_theory_lr,
    gamma_heterogeneity,
    ring_gradient_norm_bound,
    theorem51_bound,
)


class TestGammaHeterogeneity:
    def test_iid_zero(self):
        # all devices share the global optimum: F* == mean F_i*
        assert gamma_heterogeneity(1.0, np.array([1.0, 1.0, 1.0])) == 0.0

    def test_noniid_positive(self):
        assert gamma_heterogeneity(1.0, np.array([0.2, 0.4])) == pytest.approx(0.7)

    def test_custom_weights(self):
        g = gamma_heterogeneity(1.0, np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert g == pytest.approx(1.0)

    def test_numerical_negative_clamped(self):
        assert gamma_heterogeneity(1.0, np.array([1.0 + 1e-12])) == 0.0

    def test_bad_weights_raise(self):
        with pytest.raises(ValueError):
            gamma_heterogeneity(1.0, np.array([0.5, 0.5]), np.array([0.5, 0.6]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            gamma_heterogeneity(1.0, np.array([]))


class TestTheorem51Bound:
    def test_decreasing_in_rounds(self):
        bounds = [
            theorem51_bound(4.0, 1.0, 0.5, 1.0, rounds=r) for r in (1, 10, 100, 1000)
        ]
        assert all(a > b for a, b in zip(bounds, bounds[1:]))

    def test_vanishes_asymptotically(self):
        assert theorem51_bound(4.0, 1.0, 0.5, 1.0, rounds=10**9) < 1e-6

    def test_monotone_in_gamma(self):
        """Smaller Gamma (FedHiSyn's claim) -> tighter bound."""
        tight = theorem51_bound(4.0, 1.0, 0.1, 1.0, rounds=50)
        loose = theorem51_bound(4.0, 1.0, 1.0, 1.0, rounds=50)
        assert tight < loose

    def test_monotone_in_init_distance(self):
        near = theorem51_bound(4.0, 1.0, 0.5, 0.1, rounds=50)
        far = theorem51_bound(4.0, 1.0, 0.5, 10.0, rounds=50)
        assert near < far

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(smoothness=0.0),
            dict(strong_convexity=0.0),
            dict(smoothness=0.5, strong_convexity=1.0),  # L < mu
            dict(gamma_noniid=-1.0),
            dict(init_distance_sq=-1.0),
            dict(rounds=0),
        ],
    )
    def test_invalid_raises(self, kwargs):
        base = dict(smoothness=4.0, strong_convexity=1.0, gamma_noniid=0.5,
                    init_distance_sq=1.0, rounds=10)
        base.update(kwargs)
        with pytest.raises(ValueError):
            theorem51_bound(**base)

    def test_bound_holds_on_quadratic_sgd(self):
        """Sanity: full-gradient descent on a strongly convex quadratic
        stays below the theorem's bound (the bound is loose)."""
        rng = np.random.default_rng(0)
        # F(w) = 0.5 w' A w with eigenvalues in [mu, L]
        mu_, L_ = 1.0, 4.0
        eigs = np.linspace(mu_, L_, 5)
        q, _ = np.linalg.qr(rng.normal(size=(5, 5)))
        A = q @ np.diag(eigs) @ q.T
        w = rng.normal(size=5)
        w_star = np.zeros(5)
        init_d2 = float(np.sum((w - w_star) ** 2))
        sched = fedavg_theory_lr(L_, mu_)
        for t in range(200):
            w = w - sched.rate(t) * (A @ w)
        f_final = 0.5 * w @ A @ w
        bound = theorem51_bound(L_, mu_, 0.0, init_d2, rounds=200)
        assert f_final <= bound + 1e-9


class TestRingGradientBound:
    def test_lemma_values(self):
        assert ring_gradient_norm_bound(3, 2.0) == 4.0
        assert ring_gradient_norm_bound(1, 2.0) == 2.0  # floor at G^2

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            ring_gradient_norm_bound(0, 1.0)
        with pytest.raises(ValueError):
            ring_gradient_norm_bound(2, -1.0)


class TestTheoryLR:
    def test_schedule_form(self):
        sched = fedavg_theory_lr(4.0, 1.0, local_epochs=1)
        # gamma = max(8*4, 1) = 32; eta_0 = 2/(1*32)
        np.testing.assert_allclose(sched.rate(0), 2.0 / 32.0)

    def test_local_epochs_floor(self):
        sched = fedavg_theory_lr(1.0, 1.0, local_epochs=100)
        np.testing.assert_allclose(sched.rate(0), 2.0 / 100.0)

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            fedavg_theory_lr(0.0, 1.0)
