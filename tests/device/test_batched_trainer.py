"""BatchedTrainer: one round of cohort-stacked local SGD vs LocalTrainer.

Every test trains the same devices twice — sequentially through
``LocalTrainer.train`` with the canonical ``(device_id, round_idx, 0)``
stream keys, and in one ``BatchedTrainer.train_round`` call — and demands
agreement to 1e-12 (bitwise on BLAS builds whose stacked-GEMM slices are
exact; see tests/nn/test_batched_sequential.py for the canary).
"""

import numpy as np
import pytest

from repro.datasets.partition import partition_by_name
from repro.datasets.synthetic import mnist_like
from repro.device.batched import BatchedTrainer
from repro.device.device import LocalTrainer
from repro.device.fleet import make_fleet
from repro.device.heterogeneity import sample_unit_counts, unit_times_from_counts
from repro.nn.models import paper_cnn, paper_mlp
from repro.nn.serialization import get_flat_params

NUM_DEVICES = 12
FEATURES = 16
CLASSES = 10  # mnist_like is a fixed 10-class task


def _substrate(momentum=0.0, partition="dirichlet"):
    """(trainer, fleet, w0) over ragged dirichlet shards."""
    dataset = mnist_like(num_samples=700, seed=5, feature_dim=FEATURES)
    parts = partition_by_name(partition, dataset, NUM_DEVICES, seed=6, beta=0.3)
    counts = sample_unit_counts(NUM_DEVICES, 1, 10, seed=7)
    model = paper_mlp(FEATURES, CLASSES, seed=0, hidden=(12, 8))
    trainer = LocalTrainer(
        model, lr=0.1, batch_size=20, seed=2, momentum=momentum
    )
    fleet = make_fleet(dataset, parts, unit_times_from_counts(counts), trainer)
    return trainer, fleet, get_flat_params(model)


def _sequential(trainer, fleet, ids, epochs, round_idx, w0, **kwargs):
    """The reference loop: per-device LocalTrainer.train on the same streams."""
    out = np.empty((len(ids), trainer.dim))
    steps = np.empty(len(ids), dtype=np.intp)
    corrections = kwargs.pop("corrections", None)
    for i, dev_id in enumerate(ids):
        correction = None if corrections is None else corrections[i]
        _, steps[i] = trainer.train(
            w0,
            fleet.shard(int(dev_id)),
            int(epochs[i]),
            stream_key=(int(dev_id), round_idx, 0),
            correction=correction,
            out=out[i],
            **kwargs,
        )
    return out, steps


def _assert_matches(trainer, fleet, ids, epochs, round_idx=1, **kwargs):
    w0 = get_flat_params(trainer.model)
    bt = BatchedTrainer(trainer, fleet)
    got = np.empty((len(ids), trainer.dim))
    got_steps = bt.train_round(
        np.asarray(ids), np.asarray(epochs), round_idx, w0, out=got, **kwargs
    )
    want, want_steps = _sequential(
        trainer, fleet, ids, epochs, round_idx, w0, **kwargs
    )
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
    np.testing.assert_array_equal(got_steps, want_steps)
    return got


class TestTrainRound:
    def test_ragged_cohorts_match_sequential(self):
        trainer, fleet, _ = _substrate()
        ids = list(range(NUM_DEVICES))
        epochs = [1 + (i % 3) for i in ids]  # several (n, epochs) cohorts
        _assert_matches(trainer, fleet, ids, epochs)

    def test_subset_and_duplicated_epoch_values(self):
        trainer, fleet, _ = _substrate()
        ids = [3, 7, 1, 10, 4]
        epochs = [2, 2, 1, 2, 1]
        _assert_matches(trainer, fleet, ids, epochs)

    def test_momentum(self):
        trainer, fleet, _ = _substrate(momentum=0.9)
        ids = list(range(NUM_DEVICES))
        _assert_matches(trainer, fleet, ids, [2] * NUM_DEVICES)

    def test_prox_anchor(self):
        trainer, fleet, w0 = _substrate()
        anchor = w0 + 0.01
        ids = list(range(0, NUM_DEVICES, 2))
        _assert_matches(
            trainer, fleet, ids, [2] * len(ids), anchor=anchor, mu=0.05
        )

    def test_scaffold_corrections(self):
        trainer, fleet, _ = _substrate()
        ids = list(range(NUM_DEVICES))
        rng = np.random.default_rng(9)
        corrections = rng.normal(scale=1e-3, size=(len(ids), trainer.dim))
        _assert_matches(
            trainer, fleet, ids, [1] * len(ids), corrections=corrections
        )

    def test_lr_override(self):
        trainer, fleet, _ = _substrate()
        ids = [0, 1, 2, 3]
        _assert_matches(trainer, fleet, ids, [1, 1, 2, 2], lr=0.02)

    def test_round_stream_preserved(self):
        # Training round r batched must equal round r sequential — and
        # differ from round r+1 (the stream key really is per-round).
        trainer, fleet, _ = _substrate()
        ids = [0, 1, 2]
        r1 = _assert_matches(trainer, fleet, ids, [1, 1, 1], round_idx=1)
        r2 = _assert_matches(trainer, fleet, ids, [1, 1, 1], round_idx=2)
        assert not np.array_equal(r1, r2)

    def test_deterministic_across_calls(self):
        trainer, fleet, w0 = _substrate()
        bt = BatchedTrainer(trainer, fleet)
        ids = np.arange(NUM_DEVICES)
        epochs = np.full(NUM_DEVICES, 2)
        a = np.empty((NUM_DEVICES, trainer.dim))
        b = np.empty((NUM_DEVICES, trainer.dim))
        bt.train_round(ids, epochs, 1, w0, out=a)
        bt.train_round(ids, epochs, 1, w0, out=b)
        np.testing.assert_array_equal(a, b)

    def test_writes_only_receiver_rows(self):
        trainer, fleet, w0 = _substrate()
        bt = BatchedTrainer(trainer, fleet)
        out = np.full((4, trainer.dim), -1.0)
        bt.train_round(
            np.array([0, 5]), np.array([1, 1]), 1, w0, out=out[1:3]
        )
        assert np.all(out[0] == -1.0) and np.all(out[3] == -1.0)
        assert not np.any(out[1] == -1.0)


class TestValidation:
    def test_rejects_nonpositive_epochs(self):
        trainer, fleet, w0 = _substrate()
        bt = BatchedTrainer(trainer, fleet)
        out = np.empty((1, trainer.dim))
        with pytest.raises(ValueError, match="epochs"):
            bt.train_round(np.array([0]), np.array([0]), 1, w0, out=out)

    def test_rejects_unbatchable_model(self):
        dataset = mnist_like(num_samples=80, seed=5, feature_dim=FEATURES)
        parts = partition_by_name("iid", dataset, 4, seed=6)
        unit_times = unit_times_from_counts(sample_unit_counts(4, 1, 4, seed=7))
        cnn = paper_cnn(1, 4, CLASSES, seed=0, conv_channels=2, fc_sizes=(8, 8))
        trainer = LocalTrainer(cnn, lr=0.1, batch_size=20, seed=2)
        fleet = make_fleet(dataset, parts, unit_times, trainer)
        assert not BatchedTrainer.supports(cnn)
        with pytest.raises(ValueError, match="not batchable"):
            BatchedTrainer(trainer, fleet)
