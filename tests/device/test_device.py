"""Tests for repro.device.device: LocalTrainer and Device."""

import numpy as np
import pytest

from repro.datasets.core import ClassificationDataset
from repro.device.device import Device, LocalTrainer, make_devices
from repro.nn.models import paper_mlp
from repro.nn.serialization import get_flat_params


@pytest.fixture()
def shard():
    rng = np.random.default_rng(0)
    return ClassificationDataset(rng.normal(size=(40, 6)), rng.integers(0, 3, 40), 3)


@pytest.fixture()
def trainer():
    model = paper_mlp(6, 3, seed=0, hidden=(8, 4))
    return LocalTrainer(model, lr=0.1, batch_size=16, seed=1)


class TestLocalTrainer:
    def test_train_changes_weights(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        w1, steps = trainer.train(w0, shard, epochs=2)
        assert steps == 2 * 3  # ceil(40/16)=3 batches per epoch
        assert not np.allclose(w0, w1)

    def test_train_is_pure_wrt_input(self, trainer, shard):
        w0 = get_flat_params(trainer.model).copy()
        before = w0.copy()
        trainer.train(w0, shard, epochs=1)
        np.testing.assert_array_equal(w0, before)

    def test_same_stream_key_reproducible(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        a, _ = trainer.train(w0, shard, 1, stream_key=(3, 1, 0))
        b, _ = trainer.train(w0, shard, 1, stream_key=(3, 1, 0))
        np.testing.assert_array_equal(a, b)

    def test_different_stream_keys_differ(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        a, _ = trainer.train(w0, shard, 1, stream_key=(3, 1, 0))
        b, _ = trainer.train(w0, shard, 1, stream_key=(3, 1, 1))
        assert not np.array_equal(a, b)

    def test_reduces_local_loss(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        from repro.nn.serialization import set_flat_params

        set_flat_params(trainer.model, w0)
        before = trainer.model.evaluate_loss(shard.x, shard.y)
        w1, _ = trainer.train(w0, shard, epochs=10)
        set_flat_params(trainer.model, w1)
        after = trainer.model.evaluate_loss(shard.x, shard.y)
        assert after < before

    def test_proximal_limits_drift(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        free, _ = trainer.train(w0, shard, epochs=5, stream_key=(0,))
        prox, _ = trainer.train(w0, shard, epochs=5, stream_key=(0,),
                                anchor=w0, mu=10.0)
        assert np.linalg.norm(prox - w0) < np.linalg.norm(free - w0)

    def test_correction_steers_update(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        plain, _ = trainer.train(w0, shard, 1, stream_key=(0,))
        corr = np.ones(trainer.dim)
        pushed, _ = trainer.train(w0, shard, 1, stream_key=(0,), correction=corr)
        # correction adds -eta*sum(corr) to every step
        assert not np.allclose(plain, pushed)
        assert (pushed < plain).mean() > 0.9  # pushed down almost everywhere

    def test_gradient_shape_and_direction(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        g = trainer.gradient(w0, shard)
        assert g.shape == (trainer.dim,)
        # A small step along -g must reduce the full-batch loss.
        from repro.nn.serialization import set_flat_params

        set_flat_params(trainer.model, w0)
        before = trainer.model.evaluate_loss(shard.x, shard.y)
        set_flat_params(trainer.model, w0 - 0.01 * g)
        after = trainer.model.evaluate_loss(shard.x, shard.y)
        assert after < before

    def test_zero_epochs_raises(self, trainer, shard):
        with pytest.raises(ValueError):
            trainer.train(get_flat_params(trainer.model), shard, 0)

    def test_lr_override(self, trainer, shard):
        w0 = get_flat_params(trainer.model)
        slow, _ = trainer.train(w0, shard, 1, stream_key=(0,), lr=1e-6)
        np.testing.assert_allclose(slow, w0, atol=1e-3)

    @pytest.mark.parametrize("bad", [{"lr": 0}, {"batch_size": 0}])
    def test_bad_ctor_raises(self, bad):
        model = paper_mlp(6, 3, seed=0, hidden=(4, 3))
        with pytest.raises(ValueError):
            LocalTrainer(model, **bad)


class TestDevice:
    def test_buffer_reset(self, trainer, shard):
        dev = Device(0, shard, 1.0, trainer)
        w = np.zeros(trainer.dim)
        dev.receive(np.ones(trainer.dim))
        dev.reset_buffer(w)
        assert len(dev.buffer) == 1
        np.testing.assert_array_equal(dev.buffer[0], w)

    def test_train_unit_uses_buffer_back(self, trainer, shard):
        dev = Device(0, shard, 1.0, trainer)
        w0 = get_flat_params(trainer.model)
        dev.reset_buffer(w0)
        received = w0 + 0.1
        dev.receive(received)
        out = dev.train_unit(1, round_idx=0, unit_idx=0)
        # trained from `received`, not w0
        ref = dev.run_unit(received, 1, 0, 0)
        np.testing.assert_array_equal(out, ref)

    def test_train_unit_supersedes_buffer(self, trainer, shard):
        dev = Device(0, shard, 1.0, trainer)
        dev.reset_buffer(get_flat_params(trainer.model))
        out = dev.train_unit(1, 0, 0)
        assert len(dev.buffer) == 1
        np.testing.assert_array_equal(dev.buffer[0], out)

    def test_empty_buffer_raises(self, trainer, shard):
        dev = Device(0, shard, 1.0, trainer)
        with pytest.raises(RuntimeError):
            dev.train_unit(1, 0, 0)

    def test_nonpositive_unit_time_raises(self, trainer, shard):
        with pytest.raises(ValueError):
            Device(0, shard, 0.0, trainer)

    def test_empty_shard_raises(self, trainer, shard):
        empty = shard.subset(np.empty(0, dtype=np.intp))
        with pytest.raises(ValueError):
            Device(0, empty, 1.0, trainer)


class TestMakeDevices:
    def test_builds_fleet(self, trainer):
        rng = np.random.default_rng(0)
        ds = ClassificationDataset(rng.normal(size=(30, 6)), rng.integers(0, 3, 30), 3)
        parts = [np.arange(0, 10), np.arange(10, 20), np.arange(20, 30)]
        devs = make_devices(ds, parts, np.array([1.0, 0.5, 0.25]), trainer)
        assert [d.device_id for d in devs] == [0, 1, 2]
        assert [d.num_samples for d in devs] == [10, 10, 10]
        assert devs[2].unit_time == 0.25

    def test_length_mismatch_raises(self, trainer):
        ds = ClassificationDataset(np.zeros((4, 6)), np.zeros(4, dtype=int), 2)
        with pytest.raises(ValueError):
            make_devices(ds, [np.arange(4)], np.array([1.0, 2.0]), trainer)
