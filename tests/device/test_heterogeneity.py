"""Tests for repro.device.heterogeneity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.heterogeneity import (
    heterogeneity_ratio,
    sample_unit_counts,
    unit_times_from_counts,
    unit_times_from_ratio,
)


class TestSampleUnitCounts:
    def test_range(self):
        counts = sample_unit_counts(50, 1, 10, seed=0)
        assert counts.min() >= 1 and counts.max() <= 10

    def test_extremes_pinned(self):
        counts = sample_unit_counts(10, 2, 9, seed=1)
        assert counts.min() == 2 and counts.max() == 9

    def test_deterministic(self):
        np.testing.assert_array_equal(
            sample_unit_counts(20, seed=5), sample_unit_counts(20, seed=5)
        )

    def test_single_device(self):
        assert sample_unit_counts(1, 1, 10, seed=0).shape == (1,)

    def test_degenerate_range(self):
        counts = sample_unit_counts(5, 3, 3, seed=0)
        np.testing.assert_array_equal(counts, 3)

    @pytest.mark.parametrize("n,lo,hi", [(0, 1, 10), (5, 0, 10), (5, 5, 2)])
    def test_invalid_raises(self, n, lo, hi):
        with pytest.raises(ValueError):
            sample_unit_counts(n, lo, hi)


class TestUnitTimes:
    def test_from_counts(self):
        t = unit_times_from_counts(np.array([1, 2, 4]), round_length=1.0)
        np.testing.assert_allclose(t, [1.0, 0.5, 0.25])

    def test_round_length_scales(self):
        t = unit_times_from_counts(np.array([2]), round_length=3.0)
        np.testing.assert_allclose(t, [1.5])

    def test_counts_below_one_raise(self):
        with pytest.raises(ValueError):
            unit_times_from_counts(np.array([0]))

    def test_from_ratio_exact(self):
        t = unit_times_from_ratio(20, 10.0, seed=0)
        np.testing.assert_allclose(heterogeneity_ratio(t), 10.0)

    def test_from_ratio_one_homogeneous(self):
        t = unit_times_from_ratio(5, 1.0, seed=0)
        np.testing.assert_allclose(t, t[0])

    def test_from_ratio_below_one_raises(self):
        with pytest.raises(ValueError):
            unit_times_from_ratio(5, 0.5)

    @given(
        n=st.integers(min_value=2, max_value=50),
        ratio=st.floats(min_value=1.0, max_value=100.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_ratio_realized(self, n, ratio, seed):
        t = unit_times_from_ratio(n, ratio, seed=seed)
        assert np.all(t > 0)
        np.testing.assert_allclose(heterogeneity_ratio(t), ratio, rtol=1e-9)


class TestHeterogeneityRatio:
    def test_known(self):
        assert heterogeneity_ratio(np.array([0.1, 1.0])) == 10.0

    def test_homogeneous_is_one(self):
        assert heterogeneity_ratio(np.array([2.0, 2.0])) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            heterogeneity_ratio(np.array([]))

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            heterogeneity_ratio(np.array([0.0, 1.0]))
