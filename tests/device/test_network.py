"""Tests for repro.device.network."""

import numpy as np
import pytest

from repro.device.network import MatrixDelay, UniformDelay


class TestUniformDelay:
    def test_default_zero(self):
        assert UniformDelay().delay(0, 1) == 0.0

    def test_constant(self):
        d = UniformDelay(0.3)
        assert d.delay(0, 1) == 0.3
        assert d.delay(5, 2) == 0.3

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            UniformDelay(-0.1)


class TestMatrixDelay:
    def test_lookup(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        d = MatrixDelay(m)
        assert d.delay(0, 1) == 1.0
        assert d.delay(1, 0) == 2.0

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            MatrixDelay(np.zeros((2, 3)))

    def test_negative_entries_raise(self):
        with pytest.raises(ValueError):
            MatrixDelay(np.array([[0.0, -1.0], [0.0, 0.0]]))
