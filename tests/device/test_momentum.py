"""Tests for heavy-ball momentum in LocalTrainer."""

import numpy as np
import pytest

from repro.datasets.core import ClassificationDataset
from repro.device.device import LocalTrainer
from repro.nn.models import paper_mlp
from repro.nn.serialization import get_flat_params, set_flat_params


@pytest.fixture()
def shard():
    rng = np.random.default_rng(3)
    return ClassificationDataset(rng.normal(size=(60, 6)), rng.integers(0, 3, 60), 3)


class TestTrainerMomentum:
    def test_validation(self):
        model = paper_mlp(6, 3, seed=0, hidden=(4, 3))
        with pytest.raises(ValueError):
            LocalTrainer(model, momentum=1.0)
        with pytest.raises(ValueError):
            LocalTrainer(model, momentum=-0.1)

    def test_momentum_changes_trajectory(self, shard):
        model = paper_mlp(6, 3, seed=0, hidden=(8, 4))
        w0 = get_flat_params(model)
        plain = LocalTrainer(model, lr=0.05, batch_size=20, seed=1)
        heavy = LocalTrainer(model, lr=0.05, batch_size=20, seed=1, momentum=0.9)
        a, _ = plain.train(w0, shard, 3, stream_key=(0,))
        b, _ = heavy.train(w0, shard, 3, stream_key=(0,))
        assert not np.allclose(a, b)

    def test_momentum_zero_identical_to_plain(self, shard):
        model = paper_mlp(6, 3, seed=0, hidden=(8, 4))
        w0 = get_flat_params(model)
        plain = LocalTrainer(model, lr=0.05, batch_size=20, seed=1)
        zero = LocalTrainer(model, lr=0.05, batch_size=20, seed=1, momentum=0.0)
        a, _ = plain.train(w0, shard, 2, stream_key=(0,))
        b, _ = zero.train(w0, shard, 2, stream_key=(0,))
        np.testing.assert_array_equal(a, b)

    def test_momentum_still_reduces_loss(self, shard):
        model = paper_mlp(6, 3, seed=0, hidden=(8, 4))
        trainer = LocalTrainer(model, lr=0.05, batch_size=20, seed=1, momentum=0.9)
        w0 = get_flat_params(model)
        set_flat_params(model, w0)
        before = model.evaluate_loss(shard.x, shard.y)
        w1, _ = trainer.train(w0, shard, 10, stream_key=(0,))
        set_flat_params(model, w1)
        assert model.evaluate_loss(shard.x, shard.y) < before

    def test_velocity_resets_between_calls(self, shard):
        """Two 1-epoch calls == one trajectory restart, not a continuation:
        calling train twice from the same start gives identical results."""
        model = paper_mlp(6, 3, seed=0, hidden=(8, 4))
        trainer = LocalTrainer(model, lr=0.05, batch_size=20, seed=1, momentum=0.9)
        w0 = get_flat_params(model)
        a, _ = trainer.train(w0, shard, 1, stream_key=(5,))
        b, _ = trainer.train(w0, shard, 1, stream_key=(5,))
        np.testing.assert_array_equal(a, b)

    def test_velocity_buffer_is_preallocated_and_reused(self, shard):
        """The momentum path reuses one preallocated buffer per trainer
        (the ``_scratch`` pattern): no per-call d-vector allocation, and a
        dirtied buffer never leaks into the next call's trajectory."""
        model = paper_mlp(6, 3, seed=0, hidden=(8, 4))
        trainer = LocalTrainer(model, lr=0.05, batch_size=20, seed=1, momentum=0.9)
        assert trainer._velocity is not None
        assert trainer._velocity.shape == (trainer.dim,)
        buf = trainer._velocity
        w0 = get_flat_params(model)
        a, _ = trainer.train(w0, shard, 2, stream_key=(5,))
        assert trainer._velocity is buf  # reused, not reallocated
        buf.fill(123.0)  # dirty it between units
        b, _ = trainer.train(w0, shard, 2, stream_key=(5,))
        np.testing.assert_array_equal(a, b)

    def test_no_velocity_buffer_without_momentum(self):
        model = paper_mlp(6, 3, seed=0, hidden=(8, 4))
        assert LocalTrainer(model, seed=1)._velocity is None
