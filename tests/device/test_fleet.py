"""Tests for repro.device.fleet: DeviceFleet, FleetDevice, FleetState."""

import numpy as np
import pytest

from repro.datasets.core import ClassificationDataset
from repro.datasets.partition import dirichlet_partition
from repro.device import (
    DeviceFleet,
    FleetDevice,
    FleetState,
    make_devices,
    make_fleet,
    unit_times_from_counts,
)
from repro.nn.serialization import get_flat_params


def _parts(train_set):
    return dirichlet_partition(train_set, 8, beta=0.5, seed=5, min_samples=2)


class TestConstruction:
    def test_shards_match_per_object_subsets(self, tiny_split, tiny_trainer):
        """One gathered block slices into exactly the per-device copies."""
        train_set, _ = tiny_split
        parts = _parts(train_set)
        times = unit_times_from_counts(np.array([1, 2, 4, 1, 2, 4, 1, 2]))
        fleet = make_fleet(train_set, parts, times, tiny_trainer)
        devices = make_devices(train_set, parts, times, tiny_trainer)
        for dev in devices:
            shard = fleet.shard(dev.device_id)
            np.testing.assert_array_equal(shard.x, dev.shard.x)
            np.testing.assert_array_equal(shard.y, dev.shard.y)
            assert shard.name == dev.shard.name
        np.testing.assert_array_equal(
            fleet.num_samples, [d.num_samples for d in devices]
        )
        np.testing.assert_array_equal(
            fleet.unit_times, [d.unit_time for d in devices]
        )

    def test_shards_are_views_and_cached(self, tiny_fleet):
        shard = tiny_fleet.shard(3)
        assert shard.x.base is tiny_fleet.x
        assert tiny_fleet.shard(3) is shard
        assert tiny_fleet.device(3).shard is shard

    def test_length_mismatch_raises(self, tiny_split, tiny_trainer):
        train_set, _ = tiny_split
        with pytest.raises(ValueError, match="disagree"):
            make_fleet(train_set, _parts(train_set), np.ones(3), tiny_trainer)

    def test_empty_shard_raises(self, tiny_split, tiny_trainer):
        train_set, _ = tiny_split
        parts = [np.arange(4), np.empty(0, dtype=np.intp)]
        with pytest.raises(ValueError, match="empty shard"):
            make_fleet(train_set, parts, np.ones(2), tiny_trainer)

    def test_nonpositive_unit_time_raises(self, tiny_split, tiny_trainer):
        train_set, _ = tiny_split
        parts = [np.arange(4), np.arange(4, 8)]
        with pytest.raises(ValueError, match="unit_time"):
            make_fleet(train_set, parts, np.array([1.0, 0.0]), tiny_trainer)


class TestLazyMaterialization:
    def test_idle_devices_cost_nothing(self, tiny_fleet):
        assert tiny_fleet.materialized_rows == 0
        assert tiny_fleet.state_nbytes == 0
        assert all(f is None for f in tiny_fleet._facades)
        assert tiny_fleet.weights_row(0) is None
        assert tiny_fleet.device(0).weights is None

    def test_facades_cached_and_lazy(self, tiny_fleet):
        dev = tiny_fleet.device(2)
        assert isinstance(dev, FleetDevice)
        assert tiny_fleet.device(2) is dev
        assert tiny_fleet[2] is dev
        built = sum(1 for f in tiny_fleet._facades if f is not None)
        assert built == 1

    def test_set_weights_materializes_one_row(self, tiny_fleet):
        dim = tiny_fleet.dim
        tiny_fleet.set_weights(5, np.arange(dim, dtype=np.float64))
        assert tiny_fleet.materialized_rows == 1
        np.testing.assert_array_equal(tiny_fleet.weights_row(5), np.arange(dim))
        assert tiny_fleet.state_nbytes == dim * 8


class TestFacadeContract:
    def test_run_unit_matches_standalone_device(self, tiny_split, tiny_trainer):
        """The facade trains bit-for-bit like the per-object Device."""
        train_set, _ = tiny_split
        parts = _parts(train_set)
        times = unit_times_from_counts(np.array([1, 2, 4, 1, 2, 4, 1, 2]))
        fleet = make_fleet(train_set, parts, times, tiny_trainer)
        devices = make_devices(train_set, parts, times, tiny_trainer)
        w0 = get_flat_params(tiny_trainer.model)
        out_fleet = fleet.device(3).run_unit(w0, epochs=2, round_idx=1, unit_idx=0)
        out_obj = devices[3].run_unit(w0, epochs=2, round_idx=1, unit_idx=0)
        np.testing.assert_array_equal(out_fleet, out_obj)
        np.testing.assert_array_equal(fleet.device(3).weights, out_obj)

    def test_run_unit_out_row_skips_sync_copy(self, tiny_fleet, tiny_trainer):
        w0 = get_flat_params(tiny_trainer.model)
        tiny_fleet.retain_history = False
        rows = tiny_fleet.round_matrix([3])
        out = tiny_fleet.device(3).run_unit(
            w0, epochs=1, round_idx=0, unit_idx=0, out=rows[0], sync=False
        )
        assert np.shares_memory(out, rows)
        np.testing.assert_array_equal(tiny_fleet.device(3).weights, out)

    def test_buffer_choreography(self, tiny_fleet, tiny_trainer):
        dev = tiny_fleet.device(1)
        w0 = get_flat_params(tiny_trainer.model)
        dev.receive(np.ones(tiny_fleet.dim))
        dev.reset_buffer(w0)
        assert len(dev.buffer) == 1
        out = dev.train_unit(1, round_idx=0, unit_idx=0)
        np.testing.assert_array_equal(dev.buffer[0], out)


class TestMutationSafety:
    """Satellite regression: the weight-ownership rule (Device docstring).

    A fleet device snapshots every ``weights`` assignment, so mutating the
    server's array after ``reset_buffer`` can never corrupt device state —
    the hazard the per-object path documents as a borrow contract.
    """

    def test_fleet_weights_survive_caller_mutation(self, tiny_fleet):
        dim = tiny_fleet.dim
        global_weights = np.ones(dim)
        dev = tiny_fleet.device(0)
        dev.reset_buffer(global_weights)
        global_weights *= 1e9  # server misbehaves after handing over
        np.testing.assert_array_equal(dev.weights, np.ones(dim))

    def test_standalone_device_borrows(self, tiny_split, tiny_trainer):
        """The per-object Device aliases (documented borrow, no copy)."""
        train_set, _ = tiny_split
        devices = make_devices(
            train_set, _parts(train_set),
            np.ones(8), tiny_trainer,
        )
        w = np.ones(tiny_trainer.dim)
        devices[0].reset_buffer(w)
        assert devices[0].weights is w

    def test_buffered_array_is_never_mutated(self, tiny_fleet, tiny_trainer):
        """Training must not write into a borrowed buffer entry."""
        w0 = get_flat_params(tiny_trainer.model)
        keep = w0.copy()
        dev = tiny_fleet.device(2)
        dev.reset_buffer(w0)
        dev.train_unit(1, round_idx=0, unit_idx=0)
        np.testing.assert_array_equal(w0, keep)


class TestRoundMatrix:
    def test_requires_recycle_mode(self, tiny_fleet):
        assert tiny_fleet.retain_history  # safe default
        with pytest.raises(RuntimeError, match="retain_history"):
            tiny_fleet.round_matrix([0, 1])

    def test_rows_are_registered_views(self, tiny_fleet):
        tiny_fleet.retain_history = False
        rows = tiny_fleet.round_matrix([4, 1])
        rows[0] = 7.0
        rows[1] = 9.0
        np.testing.assert_array_equal(tiny_fleet.weights_row(4), rows[0])
        np.testing.assert_array_equal(tiny_fleet.weights_row(1), rows[1])
        assert tiny_fleet.weights_row(0) is None

    def test_arena_recycles_and_bounds_memory(self, tiny_fleet):
        tiny_fleet.retain_history = False
        dim = tiny_fleet.dim
        tiny_fleet.round_matrix([0, 1, 2])
        first = tiny_fleet.state_nbytes
        assert first == 3 * dim * 8
        tiny_fleet.round_matrix([3, 4])  # smaller round reuses the arena
        assert tiny_fleet.state_nbytes == first
        assert tiny_fleet.weights_row(0) is None  # recycled away
        assert tiny_fleet.materialized_rows == 2

    def test_stale_standalone_row_cleared(self, tiny_fleet):
        tiny_fleet.set_weights(2, np.zeros(tiny_fleet.dim))
        tiny_fleet.retain_history = False
        rows = tiny_fleet.round_matrix([2])
        rows[0] = 5.0
        np.testing.assert_array_equal(tiny_fleet.weights_row(2), rows[0])
        tiny_fleet.round_matrix([3])
        assert tiny_fleet.weights_row(2) is None  # not the stale zeros

    def test_stack_weights_zero_copy_for_registered_round(self, tiny_fleet):
        tiny_fleet.retain_history = False
        rows = tiny_fleet.round_matrix([2, 6, 4])
        rows[:] = 3.0
        stacked = tiny_fleet.stack_weights([2, 6, 4])
        assert np.shares_memory(stacked, tiny_fleet._arena)
        np.testing.assert_array_equal(stacked, rows)

    def test_stack_weights(self, tiny_fleet):
        tiny_fleet.retain_history = False
        rows = tiny_fleet.round_matrix([1, 5])
        rows[0] = 1.0
        rows[1] = 2.0
        stacked = tiny_fleet.stack_weights([5, 1])
        np.testing.assert_array_equal(stacked[0], rows[1])
        np.testing.assert_array_equal(stacked[1], rows[0])
        with pytest.raises(ValueError, match="no weights"):
            tiny_fleet.stack_weights([0])


class TestFleetState:
    def test_reads_default_to_shared_zeros(self):
        state = FleetState(10, 4)
        row = state.row(7)
        np.testing.assert_array_equal(row, 0.0)
        assert not row.flags.writeable  # accidental writes raise
        assert state.materialized == 0
        assert not state.is_materialized(7)

    def test_set_and_rekey_by_device_id(self):
        state = FleetState(10, 4)
        state.set(7, np.arange(4.0))
        state.set(2, np.full(4, 5.0))
        assert state.materialized == 2
        np.testing.assert_array_equal(state.row(7), np.arange(4.0))
        np.testing.assert_array_equal(state[2], np.full(4, 5.0))
        # Pool growth must not invalidate values.
        for i in (0, 1, 3, 4, 5, 6, 8, 9):
            state.set(i, np.full(4, float(i)))
        np.testing.assert_array_equal(state.row(7), np.arange(4.0))

    def test_mapping_interface_spans_population(self):
        state = FleetState(3, 2)
        state.set(1, np.ones(2))
        assert len(state) == 3
        assert list(state.keys()) == [0, 1, 2]
        values = list(state.values())
        np.testing.assert_array_equal(values[1], 1.0)
        np.testing.assert_array_equal(values[0], 0.0)
        assert {i for i, _ in state.items()} == {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetState(0, 4)
        with pytest.raises(ValueError):
            FleetState(4, 0)


class TestPopulationProtocol:
    def test_len_iter_getitem(self, tiny_fleet):
        assert len(tiny_fleet) == 8
        devs = list(tiny_fleet)
        assert [d.device_id for d in devs] == list(range(8))
        assert all(isinstance(d, FleetDevice) for d in devs)

    def test_make_fleet_returns_device_fleet(self, tiny_fleet):
        assert isinstance(tiny_fleet, DeviceFleet)


class TestSharedZeroDataset:
    def test_num_classes_and_name_carried(self, tiny_split, tiny_trainer):
        train_set, _ = tiny_split
        fleet = make_fleet(
            train_set, _parts(train_set), np.ones(8), tiny_trainer, name="pop"
        )
        shard = fleet.shard(0)
        assert isinstance(shard, ClassificationDataset)
        assert shard.num_classes == train_set.num_classes
        assert shard.name == "pop/dev0"


class TestContiguousAlias:
    def test_fleet_aliases_dataset_block(self, tiny_split, tiny_trainer):
        """A fleet-order partition skips the gather: the fleet's data IS
        the dataset's block, not a copy — the million-device memory path."""
        from repro.datasets.partition import contiguous_partition

        train_set, _ = tiny_split
        parts = contiguous_partition(train_set, 8)
        fleet = make_fleet(
            train_set, parts, unit_times_from_counts(np.ones(8)), tiny_trainer
        )
        assert fleet.x is train_set.x
        assert fleet.y is train_set.y
        # Shards are still correct zero-copy slices.
        for dev in range(8):
            shard = fleet.shard(dev)
            np.testing.assert_array_equal(shard.x, train_set.x[parts[dev]])
            assert shard.x.base is train_set.x

    def test_shuffled_partition_still_gathers(self, tiny_split, tiny_trainer):
        from repro.datasets.partition import iid_partition

        train_set, _ = tiny_split
        parts = iid_partition(train_set, 8, seed=0)
        fleet = make_fleet(
            train_set, parts, unit_times_from_counts(np.ones(8)), tiny_trainer
        )
        assert fleet.x is not train_set.x
        np.testing.assert_array_equal(fleet.x, train_set.x[np.concatenate(parts)])
