"""Benchmark-harness configuration.

Every bench regenerates one of the paper's tables or figures at reduced
scale (this box has one CPU core; see DESIGN.md).  Set
``REPRO_BENCH_SCALE=paper`` to run closer to the paper's dimensions
(100 devices, 100+ rounds — hours on this hardware).

Benches run their experiment grids through the campaign API
(:mod:`repro.campaign`), so two environment knobs apply to all of them:

- ``REPRO_BENCH_WORKERS=N`` — fan each grid out to N worker processes.
- ``REPRO_BENCH_CACHE=DIR`` — memoise finished runs under ``DIR``; an
  interrupted paper-scale bench resumes instead of restarting.

Benches use ``benchmark.pedantic(..., rounds=1, iterations=1)``: a federated
training run is the measured unit; repeating it would multiply runtime
without improving the reproduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import pytest

from repro.campaign import Campaign, CampaignResult
from repro.experiments import ExperimentSpec


@dataclass(frozen=True)
class BenchScale:
    """Knobs every bench derives its dimensions from."""

    name: str
    num_devices: int
    num_samples: int
    rounds_easy: int  # mnist/emnist-role datasets
    rounds_hard: int  # cifar-role datasets
    local_epochs: int
    seeds: tuple[int, ...]  # replicate seeds for averaged figures


SCALES = {
    "quick": BenchScale(
        name="quick",
        num_devices=20,
        num_samples=1500,
        rounds_easy=10,
        rounds_hard=15,
        local_epochs=1,
        seeds=(0,),
    ),
    "paper": BenchScale(
        name="paper",
        num_devices=100,
        num_samples=6000,
        rounds_easy=100,
        rounds_hard=150,
        local_epochs=5,
        seeds=(0, 1, 2),
    ),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def campaign_workers() -> int:
    """Worker processes per campaign (``REPRO_BENCH_WORKERS``, default 1)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def campaign_cache_dir() -> str | None:
    """On-disk result cache directory (``REPRO_BENCH_CACHE``, default off)."""
    return os.environ.get("REPRO_BENCH_CACHE") or None


def run_campaign(specs: Sequence[ExperimentSpec]) -> CampaignResult:
    """Execute a bench's spec grid under the env-configured campaign knobs."""
    return Campaign(specs, cache_dir=campaign_cache_dir()).run(
        workers=campaign_workers()
    )


def compare_on(spec: ExperimentSpec, methods, method_kwargs=None):
    """Bench-flavoured :func:`repro.analysis.comparison.compare_methods`:
    same name -> RunResult mapping, but honouring the campaign env knobs."""
    from repro.analysis.comparison import compare_methods

    return compare_methods(
        spec,
        methods=methods,
        method_kwargs=method_kwargs,
        workers=campaign_workers(),
        cache_dir=campaign_cache_dir(),
    )


def emit(title: str, body: str) -> None:
    """Print a reproduction table so it lands in the bench log."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
