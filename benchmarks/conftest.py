"""Benchmark-harness configuration.

Every bench regenerates one of the paper's tables or figures at reduced
scale (this box has one CPU core; see DESIGN.md).  Set
``REPRO_BENCH_SCALE=paper`` to run closer to the paper's dimensions
(100 devices, 100+ rounds — hours on this hardware).

Benches use ``benchmark.pedantic(..., rounds=1, iterations=1)``: a federated
training run is the measured unit; repeating it would multiply runtime
without improving the reproduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest


@dataclass(frozen=True)
class BenchScale:
    """Knobs every bench derives its dimensions from."""

    name: str
    num_devices: int
    num_samples: int
    rounds_easy: int  # mnist/emnist-role datasets
    rounds_hard: int  # cifar-role datasets
    local_epochs: int
    seeds: tuple[int, ...]  # replicate seeds for averaged figures


SCALES = {
    "quick": BenchScale(
        name="quick",
        num_devices=20,
        num_samples=1500,
        rounds_easy=10,
        rounds_hard=15,
        local_epochs=1,
        seeds=(0,),
    ),
    "paper": BenchScale(
        name="paper",
        num_devices=100,
        num_samples=6000,
        rounds_easy=100,
        rounds_hard=150,
        local_epochs=5,
        seeds=(0, 1, 2),
    ),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return SCALES[name]


def emit(title: str, body: str) -> None:
    """Print a reproduction table so it lands in the bench log."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
