"""Ablation: uniform aggregation (Eq. 9) vs class-time weighting (Eq. 10).

The paper proposes Eq. 10 for very high resource heterogeneity, where fast
classes complete many more ring passes and would otherwise dominate the
average.  This bench compares both aggregators at H=10 and H=20.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import ExperimentSpec, run_experiment
from repro.utils.tables import format_table


def run_ablation(scale):
    table = {}
    for h in (10, 20):
        for agg in ("uniform", "class_time"):
            spec = ExperimentSpec(
                method="fedhisyn",
                dataset="cifar10_like",
                num_samples=scale.num_samples,
                num_devices=scale.num_devices,
                partition="dirichlet",
                beta=0.3,
                het_ratio=float(h),
                rounds=scale.rounds_hard,
                local_epochs=scale.local_epochs,
                model_family="mlp",
                seed=scale.seeds[0],
                method_kwargs={"num_classes": 5, "aggregation": agg},
            )
            table[(h, agg)] = run_experiment(spec).final_accuracy
    return table


def test_ablation_aggregation(benchmark, scale):
    table = benchmark.pedantic(run_ablation, args=(scale,), rounds=1, iterations=1)
    rows = [
        [f"H={h}", f"{table[(h, 'uniform')]:.3f}", f"{table[(h, 'class_time')]:.3f}"]
        for h in (10, 20)
    ]
    emit(
        "Ablation — Eq. 9 (uniform) vs Eq. 10 (class-time) aggregation "
        "(cifar10_like, Dir(0.3))",
        format_table(["H", "uniform", "class_time"], rows),
    )
    # Both aggregators must train a usable model.
    for value in table.values():
        assert value > 0.4
