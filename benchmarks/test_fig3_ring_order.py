"""Figure 3: impact of the ring ordering under heterogeneous resources.

Decentralized single-ring training with devices ordered randomly,
small-to-large or large-to-small by local-training time, on CIFAR10-role
data, IID and Dirichlet(0.3).

Shape targets: the two time-sorted orderings outperform (or match) the
random ring; the Non-IID final accuracy trails the IID one (the paper
attributes the gap to catastrophic forgetting, its motivation for keeping
a central server).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.observations import ring_order_experiment
from repro.datasets import dirichlet_partition, iid_partition, make_dataset, train_test_split
from repro.device import LocalTrainer, make_devices, unit_times_from_ratio
from repro.experiments import build_model
from repro.nn.serialization import get_flat_params
from repro.utils.tables import format_table

ORDERS = ("random", "small_to_large", "large_to_small")


def run_fig3(scale):
    ds = make_dataset("cifar10_like", num_samples=scale.num_samples, seed=0)
    train_set, test_set = train_test_split(ds, 0.2, seed=1)
    model = build_model(test_set, "mlp", "small", seed=2)
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=3)
    w0 = get_flat_params(model)
    rounds = scale.rounds_hard

    table = {}
    for setting, parts in (
        ("IID", iid_partition(train_set, scale.num_devices, seed=4)),
        ("Dir(0.3)", dirichlet_partition(train_set, scale.num_devices, beta=0.3, seed=4)),
    ):
        for order in ORDERS:
            finals = []
            for seed in scale.seeds:
                times = unit_times_from_ratio(scale.num_devices, 10.0, seed=10 + seed)
                devices = make_devices(train_set, parts, times, trainer)
                res = ring_order_experiment(
                    order, devices, test_set, w0, rounds=rounds,
                    epochs_per_unit=scale.local_epochs, seed=20 + seed,
                )
                finals.append(res.final)
            table[(setting, order)] = float(np.mean(finals))
    return table


def test_fig3_ring_order(benchmark, scale):
    table = benchmark.pedantic(run_fig3, args=(scale,), rounds=1, iterations=1)
    rows = [
        [order] + [f"{table[(s, order)]:.3f}" for s in ("IID", "Dir(0.3)")]
        for order in ORDERS
    ]
    emit(
        "Figure 3 — mean device accuracy by ring ordering (cifar10_like, H=10)",
        format_table(["ordering", "IID", "Dir(0.3)"], rows),
    )
    for setting in ("IID", "Dir(0.3)"):
        best_sorted = max(
            table[(setting, "small_to_large")], table[(setting, "large_to_small")]
        )
        assert best_sorted >= table[(setting, "random")] - 0.05, (
            f"sorted orderings should not lose badly to random under {setting}"
        )
