"""Figure 4: influence of the number of capacity clusters on decentralized
ring training with heterogeneous resources.

The paper clusters 100 devices into {1, 2, 10, 30} classes and reports the
mean accuracy of the fastest class: few clusters mix speeds (stale
hand-offs, slow learning), many clusters starve each ring of data — the
curve is unimodal.  Quick scale uses K in {1, 2, 5, 10} over 20 devices.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.observations import cluster_count_experiment
from repro.datasets import dirichlet_partition, make_dataset, train_test_split
from repro.device import LocalTrainer, make_devices, unit_times_from_ratio
from repro.experiments import build_model
from repro.nn.serialization import get_flat_params
from repro.utils.tables import format_table


def cluster_counts(scale):
    if scale.name == "paper":
        return (1, 2, 10, 30)
    return (1, 2, 5, 10)


def run_fig4(scale):
    ds = make_dataset("cifar10_like", num_samples=scale.num_samples, seed=0)
    train_set, test_set = train_test_split(ds, 0.2, seed=1)
    parts = dirichlet_partition(train_set, scale.num_devices, beta=0.3, seed=2)
    model = build_model(test_set, "mlp", "small", seed=3)
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=4)
    times = unit_times_from_ratio(scale.num_devices, 10.0, seed=5)
    devices = make_devices(train_set, parts, times, trainer)
    w0 = get_flat_params(model)

    table = {}
    for k in cluster_counts(scale):
        res = cluster_count_experiment(
            k, devices, test_set, w0, rounds=scale.rounds_hard,
            epochs_per_unit=scale.local_epochs,
        )
        table[k] = res.round_accuracies
    return table


def test_fig4_cluster_count(benchmark, scale):
    table = benchmark.pedantic(run_fig4, args=(scale,), rounds=1, iterations=1)
    ks = sorted(table)
    rows = [
        [f"K={k}", f"{table[k][0]:.3f}", f"{table[k][len(table[k]) // 2]:.3f}",
         f"{table[k][-1]:.3f}"]
        for k in ks
    ]
    emit(
        "Figure 4 — fastest-class mean accuracy vs number of clusters "
        "(cifar10_like, Dir(0.3), H=10)",
        format_table(["clusters", "early", "mid", "final"], rows),
    )
    finals = {k: table[k][-1] for k in ks}
    best_k = max(finals, key=finals.get)
    # Unimodal shape: the best K is interior — neither the single mixed
    # ring nor the most fragmented clustering.
    assert best_k not in (ks[0], ks[-1]), (
        f"expected an interior optimum, got K={best_k}: {finals}"
    )
