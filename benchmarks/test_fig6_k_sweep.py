"""Figure 6: FedHiSyn final accuracy vs the number K of clustered classes,
on MNIST-role and CIFAR10-role data at 50% participation.

The paper sweeps K in {1, 10, 20, 30, 40, 50} over 100 devices and finds a
unimodal curve peaking at K=10.  Quick scale sweeps K in {1, 2, 5, 8, 10}
over 20 devices; the shape target is the same: an interior K beats both
extremes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import ExperimentSpec, run_experiment
from repro.utils.tables import format_table

DATASET_ROUNDS = {"mnist_like": "rounds_easy", "cifar10_like": "rounds_hard"}


def k_values(scale):
    if scale.name == "paper":
        return (1, 10, 20, 30, 40, 50)
    return (1, 2, 5, 8, 10)


def run_fig6(dataset, scale):
    finals = {}
    for k in k_values(scale):
        spec = ExperimentSpec(
            method="fedhisyn",
            dataset=dataset,
            num_samples=scale.num_samples,
            num_devices=scale.num_devices,
            partition="dirichlet",
            beta=0.3,
            participation=0.5,
            rounds=getattr(scale, DATASET_ROUNDS[dataset]),
            local_epochs=scale.local_epochs,
            model_family="mlp",
            seed=scale.seeds[0],
            method_kwargs={"num_classes": k},
        )
        finals[k] = run_experiment(spec).final_accuracy
    return finals


@pytest.mark.parametrize("dataset", list(DATASET_ROUNDS))
def test_fig6_k_sweep(benchmark, scale, dataset):
    finals = benchmark.pedantic(run_fig6, args=(dataset, scale), rounds=1, iterations=1)
    ks = sorted(finals)
    rows = [[f"K={k}", f"{finals[k]:.3f}"] for k in ks]
    emit(
        f"Figure 6 — FedHiSyn final accuracy vs K ({dataset}, 50% part., Dir(0.3))",
        format_table(["clusters", "final accuracy"], rows),
    )
    # Soft shape check: some K > 1 does at least as well as K = 1 (clustered
    # rings never lose to the single mixed ring).
    assert max(finals[k] for k in ks if k > 1) >= finals[ks[0]] - 0.02
