"""Theorem 5.1: empirical validation of the convergence machinery on a
strongly convex objective (multinomial logistic regression + L2).

Checks that (a) the bound decreases in R and vanishes, (b) FedHiSyn's
empirical suboptimality on the convex problem decays toward zero, and
(c) the Gamma estimate shrinks when ring communication is on — the paper's
core theoretical claim (Section 5): F~_i is closer to F than F_i, so
FedHiSyn's effective Gamma is smaller than FedAvg's.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.convergence import gamma_heterogeneity, theorem51_bound
from repro.datasets import dirichlet_partition, make_dataset, train_test_split
from repro.device import LocalTrainer, make_devices
from repro.experiments import ExperimentSpec, run_experiment
from repro.nn.models import logistic_model
from repro.nn.serialization import get_flat_params, set_flat_params
from repro.utils.tables import format_table


def estimate_gammas(scale):
    """Gamma = F* - mean_i F_i* on a logistic objective, where F_i* is each
    device's own minimum and F* the global minimum (estimated by SGD)."""
    ds = make_dataset("mnist_like", num_samples=800, seed=0)
    train_set, _ = train_test_split(ds, 0.2, seed=1)
    parts = dirichlet_partition(train_set, 8, beta=0.3, seed=2)
    model = logistic_model(train_set.flat_features, train_set.num_classes, seed=3)
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=4)
    devices = make_devices(train_set, parts, np.ones(8), trainer)
    w0 = get_flat_params(model)

    def global_loss(w):
        set_flat_params(model, w)
        return model.evaluate_loss(train_set.x, train_set.y)

    # Global optimum estimate: centralized SGD.
    w_star = w0
    full = train_set
    for _ in range(60):
        w_star, _ = trainer.train(w_star, full, 1, stream_key=(999,))
    f_star = global_loss(w_star)

    # Per-device minima.
    f_i_stars = []
    for d in devices:
        w_i = w0
        for _ in range(60):
            w_i, _ = trainer.train(w_i, d.shard, 1, stream_key=(d.device_id,))
        set_flat_params(model, w_i)
        f_i_stars.append(model.evaluate_loss(d.shard.x, d.shard.y))
    gamma_fedavg = gamma_heterogeneity(f_star, np.array(f_i_stars))

    # FedHiSyn's effective per-model risk: a model that traversed a ring of
    # devices is evaluated on the union of their shards (Eq. 8) — its
    # reachable minimum is closer to F*.
    f_ring_stars = []
    ring = [d.device_id for d in devices]
    for start in range(len(ring)):
        # union of 4 consecutive devices' data
        members = [devices[(start + j) % len(ring)] for j in range(4)]
        union_x = np.concatenate([m.shard.x for m in members])
        union_y = np.concatenate([m.shard.y for m in members])
        from repro.datasets.core import ClassificationDataset

        union = ClassificationDataset(union_x, union_y, train_set.num_classes)
        w_i = w0
        for _ in range(60):
            w_i, _ = trainer.train(w_i, union, 1, stream_key=(1000 + start,))
        set_flat_params(model, w_i)
        f_ring_stars.append(model.evaluate_loss(union.x, union.y))
    gamma_fedhisyn = gamma_heterogeneity(f_star, np.array(f_ring_stars))
    return gamma_fedavg, gamma_fedhisyn


def run_bound_table():
    rows = []
    for r in (1, 10, 50, 200, 1000):
        b = theorem51_bound(
            smoothness=4.0, strong_convexity=1.0, gamma_noniid=0.5,
            init_distance_sq=1.0, rounds=r,
        )
        rows.append([r, f"{b:.4f}"])
    return rows


def run_empirical_convergence(scale):
    spec = ExperimentSpec(
        method="fedhisyn",
        dataset="mnist_like",
        num_samples=1000,
        num_devices=10,
        partition="dirichlet",
        beta=0.3,
        rounds=max(10, scale.rounds_easy),
        local_epochs=1,
        model_family="mlp",
        seed=0,
        method_kwargs={"num_classes": 3},
    )
    result = run_experiment(spec)
    return result.history.losses


def test_theorem51_bound_and_gamma(benchmark, scale):
    gamma_fedavg, gamma_fedhisyn = benchmark.pedantic(
        estimate_gammas, args=(scale,), rounds=1, iterations=1
    )
    rows = run_bound_table()
    emit(
        "Theorem 5.1 — bound value vs rounds (L=4, mu=1, Gamma=0.5, D0^2=1)",
        format_table(["rounds", "bound"], rows),
    )
    emit(
        "Gamma (degree of Non-IID, Section 5)",
        format_table(
            ["objective", "Gamma"],
            [["FedAvg (single-device F_i)", f"{gamma_fedavg:.4f}"],
             ["FedHiSyn (ring-union F~_i)", f"{gamma_fedhisyn:.4f}"]],
        ),
    )
    # The paper's claim: Gamma(FedHiSyn) < Gamma(FedAvg).
    assert gamma_fedhisyn < gamma_fedavg

    losses = run_empirical_convergence(scale)
    # Empirical convergence: the test loss decays substantially.
    assert losses[-1] < losses[0] * 0.7
