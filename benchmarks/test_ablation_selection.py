"""Ablation: participant-selection policies vs FedHiSyn's keep-everyone.

Section 2.2 of the paper argues that selection-based answers to resource
heterogeneity (FedCS: only fast devices; Oort-style utility sampling)
shrink the participant pool and lose the data on excluded devices.  This
bench runs FedHiSyn under each policy at 50% effective participation and
compares against the paper's Bernoulli sampling.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_campaign
from repro.campaign import sweep
from repro.experiments import ExperimentSpec
from repro.utils.tables import format_table

POLICIES = ("bernoulli", "fastest", "datasize")


def run_ablation(scale):
    base = ExperimentSpec(
        method="fedhisyn",
        dataset="cifar10_like",
        num_samples=scale.num_samples,
        num_devices=scale.num_devices,
        partition="dirichlet",
        beta=0.3,
        participation=0.5,
        rounds=scale.rounds_hard,
        local_epochs=scale.local_epochs,
        model_family="mlp",
        seed=scale.seeds[0],
        selection_fraction=0.5,
        method_kwargs={"num_classes": 5},
    )
    # selection is an ExperimentSpec field now, so the ablation is a sweep
    # axis ("bernoulli" with fraction 0.5 draws the identical participant
    # sets as the server's built-in Bernoulli(0.5) sampling).
    result = run_campaign(sweep(base, {"selection": list(POLICIES)}))
    return {e.spec.selection: e.result.final_accuracy for e in result}


def test_ablation_selection(benchmark, scale):
    finals = benchmark.pedantic(run_ablation, args=(scale,), rounds=1, iterations=1)
    rows = [[name, f"{finals[name]:.3f}"] for name in POLICIES]
    emit(
        "Ablation — participant-selection policy (FedHiSyn, cifar10_like, "
        "Dir(0.3), 50% of fleet)",
        format_table(["policy", "final accuracy"], rows),
    )
    # The paper's argument: unbiased sampling should not lose to
    # fast-only selection, which permanently excludes slow devices' data.
    assert finals["bernoulli"] >= finals["fastest"] - 0.03
