"""Table 1: models transmitted (relative to one FedAvg round) to reach a
target accuracy + final accuracy, for 7 methods x 4 datasets x
{IID, Dir(0.8), Dir(0.3)} x {100%, 50%, 10%} participation.

Quick scale shrinks devices/rounds/samples (one CPU core) and uses the MLP
family for every dataset; the shape targets are: FedHiSyn cheapest to
target almost everywhere, SCAFFOLD the accuracy runner-up at 2x transfer
cost, TAFedAvg collapsing at 10% participation, and FedHiSyn's margin
growing with Non-IID level and task difficulty.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import compare_on, emit
from repro.experiments import ExperimentSpec
from repro.utils.tables import format_table

METHOD_ORDER = [
    "fedhisyn", "fedavg", "fedprox", "fedat", "scaffold", "tafedavg", "tfedavg",
]

#: per-dataset quick-scale dimensions: (num_samples, rounds, target, preset)
DATASET_CFG = {
    "mnist_like": dict(num_samples=1500, rounds=10, target=0.85, preset="small"),
    "emnist_like": dict(num_samples=2600, rounds=20, target=0.65, preset="small"),
    "cifar10_like": dict(num_samples=1500, rounds=15, target=0.70, preset="small"),
    "cifar100_like": dict(num_samples=3000, rounds=18, target=0.18, preset="paper"),
}

DISTRIBUTIONS = [("iid", None), ("dirichlet", 0.8), ("dirichlet", 0.3)]
PARTICIPATIONS = [1.0, 0.5, 0.1]


def run_dataset_block(dataset: str, scale) -> list[list]:
    cfg = DATASET_CFG[dataset]
    if scale.name == "paper":
        cfg = dict(cfg, num_samples=scale.num_samples,
                   rounds=scale.rounds_easy if "mnist" in dataset else scale.rounds_hard)
    rows = []
    for participation in PARTICIPATIONS:
        # The paper: K=10 at 50/100% participation, K=2 at 10% (Section 6.1).
        k = 2 if participation <= 0.1 else 5
        for dist, beta in DISTRIBUTIONS:
            spec = ExperimentSpec(
                method="fedhisyn",
                dataset=dataset,
                num_samples=cfg["num_samples"],
                num_devices=scale.num_devices,
                partition=dist,
                beta=beta if beta is not None else 0.3,
                participation=participation,
                rounds=cfg["rounds"],
                local_epochs=scale.local_epochs,
                model_family="mlp",
                model_preset=cfg["preset"],
                seed=scale.seeds[0],
            )
            results = compare_on(
                spec,
                methods=METHOD_ORDER,
                method_kwargs={"fedhisyn": {"num_classes": k}},
            )
            label = dist if beta is None else f"Dir({beta})"
            row = [f"{participation:.0%}", label]
            row.extend(results[m].table_cell(cfg["target"]) for m in METHOD_ORDER)
            rows.append((row, results))
    return rows


@pytest.mark.parametrize("dataset", list(DATASET_CFG))
def test_table1(benchmark, scale, dataset):
    rows_results = benchmark.pedantic(
        run_dataset_block, args=(dataset, scale), rounds=1, iterations=1
    )
    rows = [r for r, _ in rows_results]
    target = DATASET_CFG[dataset]["target"]
    emit(
        f"Table 1 — {dataset} (target accuracy {target:.0%}, cells are "
        f"relative-cost(final-acc))",
        format_table(["part.", "dist"] + METHOD_ORDER, rows),
    )

    # Shape check: FedHiSyn beats-or-ties FedAvg in a majority of settings
    # (the paper: in all of them).  A setting is a win/tie when FedHiSyn
    # reaches the target at no greater relative cost; when neither method
    # reaches it within the (reduced) round budget, final accuracy decides.
    wins = total = 0
    for _, results in rows_results:
        fh = results["fedhisyn"].cost_to_target(target)
        fa = results["fedavg"].cost_to_target(target)
        total += 1
        if fh is None and fa is None:
            acc_fh = results["fedhisyn"].final_accuracy
            acc_fa = results["fedavg"].final_accuracy
            wins += acc_fh >= acc_fa - 0.01
        elif fh is not None and (fa is None or fh <= fa):
            wins += 1
    assert wins >= total / 2, (
        f"FedHiSyn beat-or-tied FedAvg in only {wins} of {total} settings"
    )
