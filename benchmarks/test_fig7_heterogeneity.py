"""Figure 7: influence of the resource-heterogeneity degree H = l_max/l_min
(Eq. 13) on FedHiSyn vs FedAvg, MNIST-role and CIFAR10-role data, 50%
participation.

Paper shape: FedAvg declines as H grows while FedHiSyn improves (faster
devices buy more intra-ring communication per round).  At reduced scale the
robust part of that shape is the *gap*: FedHiSyn-minus-FedAvg increases
with H, and FedHiSyn's own accuracy is non-decreasing in H (see
EXPERIMENTS.md for why FedAvg's absolute decline needs paper-scale drift).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, run_campaign
from repro.campaign import sweep
from repro.experiments import ExperimentSpec
from repro.utils.tables import format_table

H_VALUES = (2, 5, 10, 20)
DATASET_ROUNDS = {"mnist_like": "rounds_easy", "cifar10_like": "rounds_hard"}


def run_fig7(dataset, scale):
    base = ExperimentSpec(
        method="fedhisyn",
        dataset=dataset,
        num_samples=scale.num_samples,
        num_devices=scale.num_devices,
        partition="dirichlet",
        beta=0.3,
        participation=0.5,
        rounds=getattr(scale, DATASET_ROUNDS[dataset]),
        local_epochs=scale.local_epochs,
        model_family="mlp",
        seed=scale.seeds[0],
    )
    specs = sweep(
        base,
        {"het_ratio": [float(h) for h in H_VALUES],
         "method": ["fedhisyn", "fedavg"]},
        method_kwargs={"fedhisyn": {"num_classes": 5}},
    )
    result = run_campaign(specs)
    return {
        (int(e.spec.het_ratio), e.spec.method): e.result.final_accuracy
        for e in result
    }


@pytest.mark.parametrize("dataset", list(DATASET_ROUNDS))
def test_fig7_heterogeneity(benchmark, scale, dataset):
    table = benchmark.pedantic(run_fig7, args=(dataset, scale), rounds=1, iterations=1)
    rows = [
        [f"H={h}", f"{table[(h, 'fedhisyn')]:.3f}", f"{table[(h, 'fedavg')]:.3f}",
         f"{table[(h, 'fedhisyn')] - table[(h, 'fedavg')]:+.3f}"]
        for h in H_VALUES
    ]
    emit(
        f"Figure 7 — final accuracy vs heterogeneity H ({dataset}, 50% part., Dir(0.3))",
        format_table(["H", "fedhisyn", "fedavg", "gap"], rows),
    )
    gap_low = table[(2, "fedhisyn")] - table[(2, "fedavg")]
    gap_high = table[(20, "fedhisyn")] - table[(20, "fedavg")]
    assert gap_high >= gap_low - 0.02, (
        f"FedHiSyn's margin should grow with H: {gap_low:.3f} -> {gap_high:.3f}"
    )
    assert table[(20, "fedhisyn")] >= table[(2, "fedhisyn")] - 0.02, (
        "FedHiSyn should not degrade as H grows"
    )
