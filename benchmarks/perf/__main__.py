"""CLI: run the perf suite and write ``BENCH_perf.json``.

    PYTHONPATH=src python -m benchmarks.perf --scale quick --out BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
for entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.perf.suite import SCALES, run_suite  # noqa: E402


def _fmt_seconds(s: float) -> str:
    return f"{s * 1e3:8.3f} ms" if s < 1.0 else f"{s:8.3f} s "


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf", description="repro perf microbenchmarks"
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--out", default="BENCH_perf.json", help="report path")
    parser.add_argument(
        "--repeats", type=int, default=None, help="override best-of repetitions"
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    report = run_suite(args.scale, repeats=args.repeats)
    report["elapsed_s"] = time.time() - t0

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"perf suite ({args.scale}) -> {out}")
    for name, entry in report["benchmarks"].items():
        line = f"  {name:28s} after {_fmt_seconds(entry['after_s'])}"
        if "before_s" in entry:
            line += (
                f"   before {_fmt_seconds(entry['before_s'])}"
                f"   speedup {entry['speedup']:.2f}x"
            )
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
