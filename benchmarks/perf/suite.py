"""Microbenchmark definitions and the suite runner.

Four hot paths, matching where the reproduction spends its runtime:

* ``train_unit`` / ``train_unit_prox_correction`` — one local-SGD training
  unit (``LocalTrainer.train``), plain and with the FedProx proximal pull +
  SCAFFOLD correction active.  Measured against the seed per-parameter path
  (:mod:`benchmarks.perf.legacy`) on identical inputs; the two results are
  asserted bitwise equal before timing is trusted.
* ``flatten_unflatten`` — one ``get_flat_params`` + ``set_flat_params``
  round trip, fast path vs. the seed per-layer loop.
* ``aggregation`` — uniform + sample-weighted averaging of a device stack.
* ``fedhisyn_round`` — wall time per round of a small end-to-end FedHiSyn
  run (trajectory number; no legacy pair).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from benchmarks.perf.legacy import (
    LegacyLocalTrainer,
    legacy_get_flat_params,
    legacy_paper_mlp,
    legacy_set_flat_params,
)
from repro.core.aggregation import sample_weighted_average, uniform_average
from repro.datasets.synthetic import mnist_like
from repro.device.device import LocalTrainer
from repro.experiments import ExperimentSpec, build_experiment
from repro.nn.models import paper_mlp
from repro.nn.serialization import get_flat_params, set_flat_params

__all__ = ["PerfScale", "SCALES", "run_suite"]


@dataclass(frozen=True)
class PerfScale:
    """Workload dimensions for one suite run."""

    name: str
    repeats: int  # best-of repetitions per timed call
    feature_dim: int
    num_classes: int
    hidden: tuple[int, int]
    shard_size: int
    batch_size: int
    epochs: int  # epochs per train unit (the paper's local_epochs)
    flatten_iters: int  # round trips per timed flatten call
    agg_devices: int
    round_devices: int
    round_samples: int
    rounds: int


SCALES = {
    "quick": PerfScale(
        name="quick",
        repeats=11,
        feature_dim=64,
        num_classes=10,
        hidden=(48, 24),
        shard_size=250,
        batch_size=50,
        epochs=5,
        flatten_iters=200,
        agg_devices=20,
        round_devices=10,
        round_samples=600,
        rounds=2,
    ),
    "full": PerfScale(
        name="full",
        repeats=15,
        feature_dim=64,
        num_classes=10,
        hidden=(200, 100),
        shard_size=1000,
        batch_size=50,
        epochs=5,
        flatten_iters=500,
        agg_devices=100,
        round_devices=20,
        round_samples=1500,
        rounds=5,
    ),
}


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` calls (one warmup call first)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_pair(fn_after, fn_before, repeats: int) -> tuple[float, float]:
    """Interleaved best-of timing for an (after, before) pair.

    Alternating the two sides each iteration means load spikes and
    frequency drift hit both measurements alike, which stabilizes the
    ratio far better than timing each side in its own block.
    """
    fn_after()
    fn_before()
    best_after = best_before = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_after()
        best_after = min(best_after, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_before()
        best_before = min(best_before, time.perf_counter() - t0)
    return best_after, best_before


def _pair(before_s: float, after_s: float, **detail) -> dict:
    entry = {
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }
    if detail:
        entry["detail"] = detail
    return entry


def _bench_train_unit(scale: PerfScale, with_prox_correction: bool) -> dict:
    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    # Same architecture and identical init, built from seed-path layers.
    legacy_model = legacy_paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    shard = mnist_like(
        num_samples=scale.shard_size, seed=1, feature_dim=scale.feature_dim
    )
    fused = LocalTrainer(model, lr=0.1, batch_size=scale.batch_size, seed=2)
    legacy = LegacyLocalTrainer(
        legacy_model, lr=0.1, batch_size=scale.batch_size, seed=2
    )
    w0 = get_flat_params(model)
    kwargs: dict = {}
    if with_prox_correction:
        rng = np.random.default_rng(3)
        kwargs = {
            "anchor": w0,
            "mu": 0.01,
            "correction": rng.normal(scale=1e-3, size=fused.dim),
        }

    # Both paths must produce bit-identical weights before times mean much.
    w_fused, steps = fused.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs)
    w_legacy, _ = legacy.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs)
    np.testing.assert_array_equal(w_fused, w_legacy)

    after, before = _best_pair(
        lambda: fused.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs),
        lambda: legacy.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs),
        scale.repeats,
    )
    return _pair(
        before,
        after,
        dim=fused.dim,
        sgd_steps=steps,
        steps_per_s_after=steps / after,
        steps_per_s_before=steps / before,
    )


def _bench_flatten(scale: PerfScale) -> dict:
    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    w = get_flat_params(model)
    iters = scale.flatten_iters

    def fast() -> None:
        for _ in range(iters):
            set_flat_params(model, w)
            get_flat_params(model, out=w)

    def slow() -> None:
        for _ in range(iters):
            legacy_set_flat_params(model, w)
            legacy_get_flat_params(model, out=w)

    after, before = _best_pair(fast, slow, scale.repeats)
    return _pair(before / iters, after / iters, dim=w.size, round_trips=iters)


def _bench_aggregation(scale: PerfScale) -> dict:
    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    dim = model.dim
    rng = np.random.default_rng(4)
    stack = rng.normal(size=(scale.agg_devices, dim))
    counts = rng.integers(10, 200, size=scale.agg_devices)

    def agg() -> None:
        uniform_average(stack)
        sample_weighted_average(stack, counts)

    after = _best_of(agg, scale.repeats)
    return {"after_s": after, "detail": {"devices": scale.agg_devices, "dim": dim}}


def _bench_fedhisyn_round(scale: PerfScale) -> dict:
    spec = ExperimentSpec(
        method="fedhisyn",
        dataset="mnist_like",
        num_samples=scale.round_samples,
        num_devices=scale.round_devices,
        rounds=scale.rounds,
        seed=0,
        method_kwargs={"num_classes": 2},
    )

    server = build_experiment(spec)
    initial = server.global_weights.copy()

    def one_run() -> None:
        # Reset per-run state so every fit() measures identical work; the
        # build cost stays outside the timed region.
        server.history = type(server.history)()
        server.clock = type(server.clock)()
        server.meter = type(server.meter)()
        server.fit(initial_weights=initial)

    total = _best_of(one_run, max(1, scale.repeats // 3))
    return {
        "after_s": total / scale.rounds,
        "detail": {
            "rounds": scale.rounds,
            "devices": scale.round_devices,
            "total_s": total,
        },
    }


def run_suite(scale_name: str = "quick", repeats: int | None = None) -> dict:
    """Run every benchmark at ``scale_name``; returns the JSON-ready report."""
    scale = SCALES[scale_name]
    if repeats is not None:
        scale = PerfScale(**{**asdict(scale), "repeats": repeats})
    benchmarks = {
        "train_unit": _bench_train_unit(scale, with_prox_correction=False),
        "train_unit_prox_correction": _bench_train_unit(
            scale, with_prox_correction=True
        ),
        "flatten_unflatten": _bench_flatten(scale),
        "aggregation": _bench_aggregation(scale),
        "fedhisyn_round": _bench_fedhisyn_round(scale),
    }
    return {
        "schema": 1,
        "scale": scale.name,
        "config": asdict(scale),
        "benchmarks": benchmarks,
    }
