"""Microbenchmark definitions and the suite runner.

Four hot paths, matching where the reproduction spends its runtime:

* ``train_unit`` / ``train_unit_prox_correction`` — one local-SGD training
  unit (``LocalTrainer.train``), plain and with the FedProx proximal pull +
  SCAFFOLD correction active.  Measured against the seed per-parameter path
  (:mod:`benchmarks.perf.legacy`) on identical inputs; the two results are
  asserted bitwise equal before timing is trusted.
* ``flatten_unflatten`` — one ``get_flat_params`` + ``set_flat_params``
  round trip, fast path vs. the seed per-layer loop.
* ``aggregation`` — uniform + sample-weighted averaging of a device stack.
* ``fedhisyn_round`` — wall time per round of a small end-to-end FedHiSyn
  run (trajectory number; no legacy pair).

Fleet-scale pair (the struct-of-arrays device layer vs the per-object
path it replaced, :mod:`benchmarks.perf.legacy_fleet`):

* ``fleet_build`` — population construction: one gathered data block vs
  per-device shard copies + objects.
* ``fleet_round`` — FedAvg **round execution** over thousands of devices
  under a non-ideal (lossless) environment: selection, availability,
  slowest-link charging, result movement, aggregation.  Local SGD is
  replaced by a shared weights-through stub on *both* sides — it is
  bit-identical math either way, and including it would only dilute the
  device-layer measurement being made.  Finals are asserted bitwise
  equal between the two paths, and the report records peak device-state
  bytes for each (the O(dim x participants) vs O(dim x ever-active)
  story).
* ``fedavg_round_batched`` — one round's training phase only, the
  stacked-GEMM batched engine (:mod:`repro.device.batched`) vs the
  sequential per-device loop on identical inputs and shuffle streams.
* ``fedavg_round_e2e`` — the same pair with *real* local training and
  the batched engine enabled on the fleet side: the honest end-to-end
  round number.
* ``fault_injection_overhead`` — the e2e workload on one server, armed
  null-rate fault model vs ``faults="none"``: the cost of the fault
  machinery when it injects nothing.  Here ``speedup`` reads as the
  overhead ratio (armed / unarmed); CI gates it under 1.02.

Compression layer (trajectory numbers; the codecs are new):

* ``codec_encode`` — encode+decode round-trip throughput of the lossy
  codecs (top-k with error feedback, QSGD) on a model-sized vector.
* ``codec_bytes_ratio`` — a small FedAvg run under the ``wan`` preset,
  dense vs top-k at 10%: per-round wall time of the compressed run plus
  the exact on-wire byte ratio the codec layer buys.

Live transport (trajectory number; the backend is new):

* ``live_transport_throughput`` — loopback UDP throughput of the live
  backend's chunk/ack/reassemble reliability layer on model-sized
  blobs: messages/s and payload MB/s.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from benchmarks.perf.legacy import (
    LegacyLocalTrainer,
    legacy_get_flat_params,
    legacy_paper_mlp,
    legacy_set_flat_params,
)
from benchmarks.perf.legacy_fleet import (
    NullTrainer,
    PerObjectFedAvgServer,
    legacy_make_devices,
)
from repro.baselines.fedavg import FedAvgConfig, FedAvgServer
from repro.compression import QSGDCodec, TopKCodec
from repro.core.aggregation import sample_weighted_average, uniform_average
from repro.datasets.core import train_test_split
from repro.datasets.partition import partition_by_name
from repro.datasets.synthetic import mnist_like
from repro.device.batched import BatchedTrainer
from repro.device.device import LocalTrainer
from repro.device.fleet import make_fleet
from repro.device.heterogeneity import sample_unit_counts, unit_times_from_counts
from repro.env.availability import CapacityCorrelatedAvailability
from repro.env.environment import Environment
from repro.env.network import SampledNetwork
from repro.experiments import ExperimentSpec, build_experiment, run_experiment
from repro.faults import NoFaults, make_fault_model
from repro.nn.models import paper_mlp
from repro.simulation.metrics import ResilienceStats
from repro.nn.serialization import get_flat_params, set_flat_params
from repro.simulation.scheduler import UNIT_COMPLETE, Scheduler

__all__ = ["PerfScale", "SCALES", "run_suite"]


@dataclass(frozen=True)
class PerfScale:
    """Workload dimensions for one suite run."""

    name: str
    repeats: int  # best-of repetitions per timed call
    feature_dim: int
    num_classes: int
    hidden: tuple[int, int]
    shard_size: int
    batch_size: int
    epochs: int  # epochs per train unit (the paper's local_epochs)
    flatten_iters: int  # round trips per timed flatten call
    agg_devices: int
    round_devices: int
    round_samples: int
    rounds: int
    # Fleet-scale pair (struct-of-arrays layer vs the per-object path).
    fleet_devices: int
    fleet_samples: int
    fleet_rounds: int
    fleet_participation: float
    e2e_participation: float
    # Scheduler-throughput bench (the async runtime's hot loop).
    scheduler_devices: int
    scheduler_horizon: float
    # Million-device engine bench (calendar queue + batched waves).
    mega_sched_devices: int
    mega_sched_horizon: float


SCALES = {
    "quick": PerfScale(
        name="quick",
        repeats=11,
        feature_dim=64,
        num_classes=10,
        hidden=(48, 24),
        shard_size=250,
        batch_size=50,
        epochs=5,
        flatten_iters=200,
        agg_devices=20,
        round_devices=10,
        round_samples=600,
        rounds=2,
        fleet_devices=5000,
        fleet_samples=12500,
        fleet_rounds=3,
        fleet_participation=1.0,
        e2e_participation=0.1,
        scheduler_devices=5000,
        scheduler_horizon=2.0,
        mega_sched_devices=1_000_000,
        mega_sched_horizon=0.5,
    ),
    "full": PerfScale(
        name="full",
        repeats=15,
        feature_dim=64,
        num_classes=10,
        hidden=(200, 100),
        shard_size=1000,
        batch_size=50,
        epochs=5,
        flatten_iters=500,
        agg_devices=100,
        round_devices=20,
        round_samples=1500,
        rounds=5,
        fleet_devices=10000,
        fleet_samples=25000,
        fleet_rounds=3,
        fleet_participation=1.0,
        e2e_participation=0.1,
        scheduler_devices=5000,
        scheduler_horizon=5.0,
        mega_sched_devices=1_000_000,
        mega_sched_horizon=1.0,
    ),
}


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over ``repeats`` calls (one warmup call first)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_pair(fn_after, fn_before, repeats: int) -> tuple[float, float]:
    """Interleaved best-of timing for an (after, before) pair.

    Alternating the two sides each iteration means load spikes and
    frequency drift hit both measurements alike, which stabilizes the
    ratio far better than timing each side in its own block.
    """
    fn_after()
    fn_before()
    best_after = best_before = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_after()
        best_after = min(best_after, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_before()
        best_before = min(best_before, time.perf_counter() - t0)
    return best_after, best_before


def _pair(before_s: float, after_s: float, **detail) -> dict:
    entry = {
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }
    if detail:
        entry["detail"] = detail
    return entry


def _bench_train_unit(scale: PerfScale, with_prox_correction: bool) -> dict:
    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    # Same architecture and identical init, built from seed-path layers.
    legacy_model = legacy_paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    shard = mnist_like(
        num_samples=scale.shard_size, seed=1, feature_dim=scale.feature_dim
    )
    fused = LocalTrainer(model, lr=0.1, batch_size=scale.batch_size, seed=2)
    legacy = LegacyLocalTrainer(
        legacy_model, lr=0.1, batch_size=scale.batch_size, seed=2
    )
    w0 = get_flat_params(model)
    kwargs: dict = {}
    if with_prox_correction:
        rng = np.random.default_rng(3)
        kwargs = {
            "anchor": w0,
            "mu": 0.01,
            "correction": rng.normal(scale=1e-3, size=fused.dim),
        }

    # Both paths must produce bit-identical weights before times mean much.
    w_fused, steps = fused.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs)
    w_legacy, _ = legacy.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs)
    np.testing.assert_array_equal(w_fused, w_legacy)

    after, before = _best_pair(
        lambda: fused.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs),
        lambda: legacy.train(w0, shard, scale.epochs, stream_key=(7,), **kwargs),
        scale.repeats,
    )
    return _pair(
        before,
        after,
        dim=fused.dim,
        sgd_steps=steps,
        steps_per_s_after=steps / after,
        steps_per_s_before=steps / before,
    )


def _bench_flatten(scale: PerfScale) -> dict:
    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    w = get_flat_params(model)
    iters = scale.flatten_iters

    def fast() -> None:
        for _ in range(iters):
            set_flat_params(model, w)
            get_flat_params(model, out=w)

    def slow() -> None:
        for _ in range(iters):
            legacy_set_flat_params(model, w)
            legacy_get_flat_params(model, out=w)

    after, before = _best_pair(fast, slow, scale.repeats)
    return _pair(before / iters, after / iters, dim=w.size, round_trips=iters)


def _bench_aggregation(scale: PerfScale) -> dict:
    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    dim = model.dim
    rng = np.random.default_rng(4)
    stack = rng.normal(size=(scale.agg_devices, dim))
    counts = rng.integers(10, 200, size=scale.agg_devices)

    def agg() -> None:
        uniform_average(stack)
        sample_weighted_average(stack, counts)

    after = _best_of(agg, scale.repeats)
    return {"after_s": after, "detail": {"devices": scale.agg_devices, "dim": dim}}


def _bench_fedhisyn_round(scale: PerfScale) -> dict:
    spec = ExperimentSpec(
        method="fedhisyn",
        dataset="mnist_like",
        num_samples=scale.round_samples,
        num_devices=scale.round_devices,
        rounds=scale.rounds,
        seed=0,
        method_kwargs={"num_classes": 2},
    )

    server = build_experiment(spec)
    initial = server.global_weights.copy()

    def one_run() -> None:
        # Reset per-run state so every fit() measures identical work; the
        # build cost stays outside the timed region.
        server.history = type(server.history)()
        server.clock = type(server.clock)()
        server.meter = type(server.meter)()
        server.fit(initial_weights=initial)

    total = _best_of(one_run, max(1, scale.repeats // 3))
    return {
        "after_s": total / scale.rounds,
        "detail": {
            "rounds": scale.rounds,
            "devices": scale.round_devices,
            "total_s": total,
        },
    }


def _fleet_substrate(scale: PerfScale):
    """Shared data/partition/heterogeneity for the fleet-scale pair."""
    dataset = mnist_like(
        num_samples=scale.fleet_samples, seed=11, feature_dim=scale.feature_dim
    )
    train_set, test_set = train_test_split(dataset, 0.04, seed=12)
    parts = partition_by_name("iid", train_set, scale.fleet_devices, seed=13)
    counts = sample_unit_counts(scale.fleet_devices, 1, 10, seed=14)
    return train_set, test_set, parts, unit_times_from_counts(counts)


def _fleet_env() -> Environment:
    """Non-ideal but lossless world: per-device link quality + churn.

    Exercises the vectorized availability masks and slowest-link charging
    (the per-object path pays a Python transfer-time call per device per
    channel call); drop_prob stays 0 so both paths are deterministic and
    the fleet recycles its round arena.
    """
    return Environment(
        SampledNetwork(
            latency=0.02,
            bandwidth=200.0,
            latency_spread=0.3,
            bandwidth_spread=0.3,
            seed=5,
        ),
        CapacityCorrelatedAvailability(up_prob=0.9, slow_penalty=0.3),
        name="fleet-bench",
    )


def _reset_server(server) -> None:
    """Fresh per-run mutable state so repeated fits measure identical work."""
    server.history = type(server.history)()
    server.clock = type(server.clock)()
    server.meter = type(server.meter)()
    server.unavailable_count = 0


def _bench_fleet_build(scale: PerfScale) -> dict:
    model = paper_mlp(scale.feature_dim, scale.num_classes, seed=0, hidden=(32, 16))
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=2)
    train_set, _, parts, unit_times = _fleet_substrate(scale)
    repeats = 3

    after, before = _best_pair(
        lambda: make_fleet(train_set, parts, unit_times, trainer),
        lambda: legacy_make_devices(train_set, parts, unit_times, trainer),
        repeats,
    )
    return _pair(before, after, devices=scale.fleet_devices)


def _fleet_round_pair(scale: PerfScale, trainer, participation: float, rounds: int,
                      env_factory, batched: bool = False):
    """(after_server, before_server, fleet, legacy_devices, w0) on one
    shared substrate + trainer, finals asserted equal.

    With ``batched=True`` the fleet server additionally runs the stacked-GEMM
    training engine; since BLAS builds may compute a stacked GEMM slice with
    different instruction selection than its 2-D equivalent, the finals
    assertion relaxes to 1e-12 relative (bit-identical on builds where the
    slices match — the common case, pinned by the nn test suite)."""
    train_set, test_set, parts, unit_times = _fleet_substrate(scale)
    fleet = make_fleet(train_set, parts, unit_times, trainer)
    legacy_devices = legacy_make_devices(train_set, parts, unit_times, trainer)
    config = FedAvgConfig(
        rounds=rounds,
        participation=participation,
        local_epochs=1,
        eval_every=rounds,
        seed=3,
    )
    after_srv = FedAvgServer(fleet, test_set, config, env=env_factory())
    if batched:
        after_srv.set_device_batching("auto")
        assert after_srv.batched_trainer is not None
    before_srv = PerObjectFedAvgServer(
        legacy_devices, test_set, config, env=env_factory()
    )
    w0 = get_flat_params(trainer.model)

    # The fleet path must be the per-object path, bit for bit (1e-12 under
    # batching, see above): same selection/availability draws, same charged
    # transfer times, same finals — before any timing is trusted.
    res_after = after_srv.fit(initial_weights=w0)
    res_before = before_srv.fit(initial_weights=w0)
    if batched:
        np.testing.assert_allclose(
            res_after.final_weights, res_before.final_weights,
            rtol=1e-12, atol=1e-12,
        )
    else:
        np.testing.assert_array_equal(
            res_after.final_weights, res_before.final_weights
        )
    assert after_srv.clock.now == before_srv.clock.now
    assert after_srv.meter.server_total == before_srv.meter.server_total
    return after_srv, before_srv, fleet, legacy_devices, w0


def _state_detail(scale: PerfScale, fleet, legacy_devices) -> dict:
    per_object_rows = sum(1 for d in legacy_devices if d.weights is not None)
    per_object_bytes = sum(
        d.weights.nbytes for d in legacy_devices if d.weights is not None
    )
    return {
        "fleet_state_mb": round(fleet.state_nbytes / 1e6, 3),
        "per_object_state_mb": round(per_object_bytes / 1e6, 3),
        "fleet_rows": fleet.materialized_rows,
        "per_object_rows": per_object_rows,
        "dim": fleet.dim,
    }


def _bench_fleet_round(scale: PerfScale) -> dict:
    model = paper_mlp(scale.feature_dim, scale.num_classes, seed=0, hidden=(32, 16))
    trainer = NullTrainer(model, lr=0.1, batch_size=50, seed=2)
    after_srv, before_srv, fleet, legacy_devices, w0 = _fleet_round_pair(
        scale, trainer, scale.fleet_participation, scale.fleet_rounds, _fleet_env
    )

    def run_after() -> None:
        _reset_server(after_srv)
        after_srv.fit(initial_weights=w0)

    def run_before() -> None:
        _reset_server(before_srv)
        before_srv.fit(initial_weights=w0)

    repeats = max(3, scale.repeats // 3)
    after, before = _best_pair(run_after, run_before, repeats)
    rounds = scale.fleet_rounds
    return _pair(
        before / rounds,
        after / rounds,
        devices=scale.fleet_devices,
        rounds=rounds,
        participation=scale.fleet_participation,
        **_state_detail(scale, fleet, legacy_devices),
    )


def _bench_fedavg_e2e(scale: PerfScale) -> dict:
    """The honest end-to-end round: fleet layer *plus* the batched training
    engine vs the per-object seed path with sequential training."""
    model = paper_mlp(scale.feature_dim, scale.num_classes, seed=0, hidden=(32, 16))
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=2)
    rounds = 2
    after_srv, before_srv, fleet, legacy_devices, w0 = _fleet_round_pair(
        scale, trainer, scale.e2e_participation, rounds, Environment.ideal,
        batched=True,
    )

    def run_after() -> None:
        _reset_server(after_srv)
        after_srv.fit(initial_weights=w0)

    def run_before() -> None:
        _reset_server(before_srv)
        before_srv.fit(initial_weights=w0)

    repeats = max(5, scale.repeats // 4)
    after, before = _best_pair(run_after, run_before, repeats)
    return _pair(
        before / rounds,
        after / rounds,
        devices=scale.fleet_devices,
        rounds=rounds,
        participation=scale.e2e_participation,
        **_state_detail(scale, fleet, legacy_devices),
    )


def _bench_fedavg_round_batched(scale: PerfScale) -> dict:
    """The training phase of one FedAvg round, batched vs sequential.

    Isolates exactly what the batched engine replaces: the local-SGD loop
    over one round's selected participants (same ids, same epochs, same
    broadcast weights, same shuffle streams), with selection, channels and
    aggregation excluded.  Results are asserted equal (1e-12; bitwise on
    BLAS builds whose stacked-GEMM slices match their 2-D equivalents)
    before timing is trusted.
    """
    model = paper_mlp(scale.feature_dim, scale.num_classes, seed=0, hidden=(32, 16))
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=2)
    train_set, test_set, parts, unit_times = _fleet_substrate(scale)
    fleet = make_fleet(train_set, parts, unit_times, trainer)
    config = FedAvgConfig(
        rounds=1,
        participation=scale.e2e_participation,
        local_epochs=1,
        eval_every=1,
        seed=3,
    )
    server = FedAvgServer(fleet, test_set, config, env=Environment.ideal())
    w0 = get_flat_params(trainer.model)
    participants = server.select_participants(1)
    ids = server.ids_of(participants)
    duration = server.round_duration(participants)
    epochs = server.epochs_for(participants, duration)
    bt = BatchedTrainer(trainer, fleet)
    seq_stack = np.empty((len(participants), trainer.dim))
    bat_stack = np.empty((len(participants), trainer.dim))

    def run_seq() -> None:
        shard = fleet.shard
        for i, dev_id in enumerate(ids.tolist()):
            trainer.train(
                w0, shard(dev_id), int(epochs[i]),
                stream_key=(dev_id, 1, 0), out=seq_stack[i],
            )

    def run_bat() -> None:
        bt.train_round(ids, epochs, 1, w0, out=bat_stack)

    run_seq()
    run_bat()
    np.testing.assert_allclose(bat_stack, seq_stack, rtol=1e-12, atol=1e-12)
    max_abs = float(np.max(np.abs(bat_stack - seq_stack)))

    after, before = _best_pair(run_bat, run_seq, max(3, scale.repeats // 3))
    cohorts = {
        (int(n), int(e)) for n, e in zip(fleet.num_samples[ids], epochs)
    }
    return _pair(
        before,
        after,
        devices=scale.fleet_devices,
        participants=len(participants),
        participation=scale.e2e_participation,
        dim=trainer.dim,
        cohorts=len(cohorts),
        sgd_steps=int(np.sum(epochs * np.ceil(fleet.num_samples[ids] / 50))),
        max_abs_diff=max_abs,
    )


def _bench_fault_overhead(scale: PerfScale) -> dict:
    """Cost of the armed-but-null fault machinery on the sync round path.

    Same end-to-end FedAvg workload as ``fedavg_round_e2e``, one server,
    toggled between ``faults="none"`` (``charge_round``'s bare fast path)
    and an armed compound model with every rate zeroed — the full
    per-round effects draw and completion-time bookkeeping, injecting
    nothing.  The two runs are asserted bitwise equal first (the
    armed-null identity contract), so the pair's ``speedup`` field is the
    pure overhead ratio armed / unarmed; CI asserts it stays under 1.02.
    """
    model = paper_mlp(scale.feature_dim, scale.num_classes, seed=0, hidden=(32, 16))
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=2)
    train_set, test_set, parts, unit_times = _fleet_substrate(scale)
    fleet = make_fleet(train_set, parts, unit_times, trainer)
    rounds = 2
    config = FedAvgConfig(
        rounds=rounds,
        participation=scale.e2e_participation,
        local_epochs=1,
        eval_every=rounds,
        seed=3,
    )
    server = FedAvgServer(fleet, test_set, config, env=Environment.ideal())
    w0 = get_flat_params(trainer.model)
    null_model = make_fault_model(
        "compound", crash_prob=0.0, straggle_prob=0.0, fraction=0.0
    )

    def _fit(faults) -> object:
        _reset_server(server)
        server.resilience = ResilienceStats()
        server.set_faults(faults)
        return server.fit(initial_weights=w0)

    res_armed = _fit(null_model)
    res_plain = _fit(NoFaults())
    np.testing.assert_array_equal(
        res_armed.final_weights, res_plain.final_weights
    )
    assert res_armed.history.times == res_plain.history.times

    # Best-of timing is the wrong tool for a ratio expected to be ~1.00:
    # the two minima bottom out on different transients and the quotient
    # of two noisy floors swings +-3%.  Interleaved pairs with a *median*
    # per side cancels drift and keeps the ratio stable well inside the
    # 2% CI gate.
    repeats = max(9, scale.repeats)
    armed_t: list[float] = []
    plain_t: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        _fit(null_model)
        armed_t.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        _fit(NoFaults())
        plain_t.append(time.perf_counter() - t0)
    armed = sorted(armed_t)[repeats // 2]
    unarmed = sorted(plain_t)[repeats // 2]
    return _pair(
        armed / rounds,
        unarmed / rounds,
        devices=scale.fleet_devices,
        rounds=rounds,
        participation=scale.e2e_participation,
        repeats=repeats,
        overhead_pct=round((armed / unarmed - 1.0) * 100, 3),
    )


def _sched_events_per_device(num_devices: int, unit_times, horizon: float) -> int:
    """The seed path: one heap entry per device completion."""
    sched = Scheduler(engine="heap")

    def on_complete(ev) -> None:
        dev = ev.payload
        nxt = ev.time + unit_times[dev]
        if nxt <= horizon:
            sched.at(nxt, UNIT_COMPLETE, dev)

    sched.on(UNIT_COMPLETE, on_complete)
    for dev in range(num_devices):
        sched.at(float(unit_times[dev]), UNIT_COMPLETE, dev)
    sched.run()
    return sched.events_processed


def _sched_events_batched(num_devices: int, unit_times, horizon: float) -> int:
    """The million-device path: calendar queue + one batched event per
    completion wave (devices sharing a maturity time), mirroring how the
    async server packs the quantized unit-time schedule."""
    sched = Scheduler(engine="calendar")

    def on_complete(ev) -> None:
        ids = ev.payload
        nxt = ev.time + unit_times[ids]
        keep = nxt <= horizon
        if not keep.any():
            return
        ids = ids[keep]
        nxt = nxt[keep]
        for t in np.unique(nxt):
            sched.at_many(float(t), UNIT_COMPLETE, ids[nxt == t])

    sched.on(UNIT_COMPLETE, on_complete)
    for t in np.unique(unit_times):
        sched.at_many(float(t), UNIT_COMPLETE, np.flatnonzero(unit_times == t))
    sched.run()
    return sched.events_processed


def _bench_scheduler_events(scale: PerfScale) -> dict:
    """Discrete-event engine throughput at fleet scale, before/after.

    Replays the async runtime's hot loop — every device of a
    ``scheduler_devices``-sized fleet continuously completing and
    rescheduling training units over a virtual horizon — with the
    training itself stubbed out, so the pair is pure event machinery.
    Before: the seed engine (binary heap, one event per device
    completion).  After: the calendar queue with batched completion
    waves.  Both sides dispatch the identical logical schedule (member
    counts are asserted equal); ``events_per_s`` counts members, so the
    throughput is packing-independent.
    """
    counts = sample_unit_counts(scale.scheduler_devices, 1, 10, seed=21)
    unit_times = unit_times_from_counts(counts)
    horizon = scale.scheduler_horizon
    n = scale.scheduler_devices

    events_before = _sched_events_per_device(n, unit_times, horizon)
    events_after = _sched_events_batched(n, unit_times, horizon)
    assert events_after == events_before, (
        f"batched schedule dispatched {events_after} members, "
        f"per-device dispatched {events_before}"
    )

    after_s, before_s = _best_pair(
        lambda: _sched_events_batched(n, unit_times, horizon),
        lambda: _sched_events_per_device(n, unit_times, horizon),
        max(3, scale.repeats // 3),
    )
    return _pair(
        before_s,
        after_s,
        devices=n,
        horizon=horizon,
        events=events_before,
        events_per_s=round(events_before / after_s, 1),
    )


def _bench_scheduler_events_1m(scale: PerfScale) -> dict:
    """The calendar+batched engine at a million devices (trajectory
    number; the seed engine is far too slow to pair at this size).
    ``events_per_s`` counts batched members individually."""
    counts = sample_unit_counts(scale.mega_sched_devices, 1, 10, seed=22)
    unit_times = unit_times_from_counts(counts)
    horizon = scale.mega_sched_horizon
    n = scale.mega_sched_devices

    events = _sched_events_batched(n, unit_times, horizon)
    best = _best_of(
        lambda: _sched_events_batched(n, unit_times, horizon),
        max(2, scale.repeats // 5),
    )
    return {
        "after_s": best,
        "detail": {
            "devices": n,
            "horizon": horizon,
            "events": events,
            "events_per_s": round(events / best, 1),
        },
    }


def _bench_codec_encode(scale: PerfScale) -> dict:
    """Lossy-codec round-trip throughput on a model-sized vector.

    One encode+decode per iteration against a fixed reference, so top-k
    exercises its error-feedback residual update and QSGD its stochastic
    rounding draw — the exact per-transfer work the channel adds.
    """
    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    dim = model.dim
    rng = np.random.default_rng(6)
    ref = rng.normal(size=dim)
    vec = ref + 0.01 * rng.normal(size=dim)
    iters = 50

    def roundtrip_s(codec) -> float:
        def run() -> None:
            for _ in range(iters):
                codec.decode(codec.encode(vec, key=0, reference=ref))

        return _best_of(run, scale.repeats) / iters

    topk_s = roundtrip_s(TopKCodec(fraction=0.1))
    qsgd_s = roundtrip_s(QSGDCodec(bits=4, seed=0))
    return {
        "after_s": topk_s,
        "detail": {
            "dim": dim,
            "topk_roundtrip_s": topk_s,
            "qsgd_roundtrip_s": qsgd_s,
            "topk_coords_per_s": round(dim / topk_s, 1),
            "qsgd_coords_per_s": round(dim / qsgd_s, 1),
        },
    }


def _bench_codec_bytes_ratio(scale: PerfScale) -> dict:
    """Dense vs top-k FedAvg under the ``wan`` preset.

    Times the compressed end-to-end run (per round) and reports the
    on-wire byte ratio between the two — the headline number the codec
    layer exists to buy.  Lossless accounting on both sides: raw bytes
    must match, only the wire representation differs.
    """
    base = dict(
        method="fedavg",
        dataset="mnist_like",
        num_samples=scale.round_samples,
        num_devices=scale.round_devices,
        rounds=scale.rounds,
        seed=0,
        env="wan",
    )
    dense_spec = ExperimentSpec(**base)
    topk_spec = ExperimentSpec(
        **base, codec="topk", codec_kwargs={"fraction": 0.1}
    )
    dense = run_experiment(dense_spec)
    topk = run_experiment(topk_spec)
    assert topk.transport["raw_bytes"] == dense.transport["raw_bytes"]
    ratio = dense.transport["wire_bytes"] / topk.transport["wire_bytes"]

    total = _best_of(
        lambda: run_experiment(topk_spec), max(1, scale.repeats // 5)
    )
    return {
        "after_s": total / scale.rounds,
        "detail": {
            "rounds": scale.rounds,
            "devices": scale.round_devices,
            "bytes_ratio": round(ratio, 2),
            "dense_wire_bytes": int(dense.transport["wire_bytes"]),
            "topk_wire_bytes": int(topk.transport["wire_bytes"]),
        },
    }


def _bench_live_transport(scale: PerfScale) -> dict:
    """Loopback UDP throughput of the live transport's reliability layer.

    Two endpoints in one process, pumped alternately: one model-sized
    blob per message, chunked/acked/reassembled exactly as a live run's
    MODEL/UPDATE legs are.  Reports messages/s and payload MB/s — the
    ceiling the framed-datagram protocol puts on live-run round rate.
    """
    from repro.transport.endpoint import Endpoint
    from repro.transport.frames import MSG_MODEL

    model = paper_mlp(
        scale.feature_dim, scale.num_classes, seed=0, hidden=scale.hidden
    )
    blob = np.random.default_rng(8).normal(size=model.dim).tobytes()
    messages = 40

    def ship() -> None:
        sender = Endpoint(rank=0, chunk_bytes=1200, rto=0.05)
        receiver = Endpoint(rank=1, chunk_bytes=1200, rto=0.05)
        got = []
        receiver.on(MSG_MODEL, lambda f, p, a: got.append(len(p)))
        try:
            addr = ("127.0.0.1", receiver.port)
            for i in range(messages):
                sender.send_blob(MSG_MODEL, addr, blob, round_idx=i, dim=model.dim)
                while sender.pending_sends:
                    receiver.pump(timeout=0.001)
                    sender.pump(timeout=0.0)
            assert len(got) == messages and got[0] == len(blob)
        finally:
            sender.close()
            receiver.close()

    best = _best_of(ship, max(3, scale.repeats // 3))
    per_message = best / messages
    return {
        "after_s": per_message,
        "detail": {
            "dim": model.dim,
            "payload_bytes": len(blob),
            "messages": messages,
            "messages_per_s": round(1.0 / per_message, 1),
            "payload_mb_per_s": round(len(blob) / per_message / 1e6, 2),
        },
    }


def run_suite(scale_name: str = "quick", repeats: int | None = None) -> dict:
    """Run every benchmark at ``scale_name``; returns the JSON-ready report."""
    scale = SCALES[scale_name]
    if repeats is not None:
        scale = PerfScale(**{**asdict(scale), "repeats": repeats})
    benchmarks = {
        "train_unit": _bench_train_unit(scale, with_prox_correction=False),
        "train_unit_prox_correction": _bench_train_unit(
            scale, with_prox_correction=True
        ),
        "flatten_unflatten": _bench_flatten(scale),
        "aggregation": _bench_aggregation(scale),
        "fedhisyn_round": _bench_fedhisyn_round(scale),
        "fleet_build": _bench_fleet_build(scale),
        "fleet_round": _bench_fleet_round(scale),
        "fedavg_round_batched": _bench_fedavg_round_batched(scale),
        "fedavg_round_e2e": _bench_fedavg_e2e(scale),
        "fault_injection_overhead": _bench_fault_overhead(scale),
        "scheduler_events": _bench_scheduler_events(scale),
        "scheduler_events@1M": _bench_scheduler_events_1m(scale),
        "codec_encode": _bench_codec_encode(scale),
        "codec_bytes_ratio": _bench_codec_bytes_ratio(scale),
        "live_transport_throughput": _bench_live_transport(scale),
    }
    return {
        "schema": 1,
        "scale": scale.name,
        "config": asdict(scale),
        "benchmarks": benchmarks,
    }
