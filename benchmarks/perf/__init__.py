"""Tracked performance microbenchmarks.

``python -m benchmarks.perf --scale quick --out BENCH_perf.json`` times the
reproduction's hot paths — local-SGD train units, flatten/unflatten,
aggregation, and a full FedHiSyn round — and writes the numbers to
``BENCH_perf.json`` so every PR leaves a perf trajectory behind.

Where the flat-buffer engine replaced a measurably different code path,
the suite also runs a faithful re-implementation of the pre-flat-buffer
("legacy") path from :mod:`benchmarks.perf.legacy` on the same inputs, so
the JSON carries honest before/after pairs measured on the same hardware,
plus an equality assertion that both paths produce identical weights.
"""

# NOTE: no eager imports here — `python -m benchmarks.perf` must reach
# __main__.py's sys.path bootstrap before anything imports `repro`.

__all__ = ["SCALES", "run_suite"]


def __getattr__(name):
    if name in __all__:
        from benchmarks.perf import suite

        return getattr(suite, name)
    raise AttributeError(name)
