"""Faithful re-implementation of the pre-flat-buffer training path.

This mirrors the seed revision's per-parameter code, operation for
operation: per-layer Python loops for flatten/unflatten, per-parameter
``zero_grad``/update loops inside the train unit, separate ``loss.value``
and ``loss.grad`` passes.  It exists so the perf suite can measure the
"before" side of every before/after pair on current hardware, and so the
bitwise-equivalence tests can pin the fused engine to the seed semantics.

It intentionally does NOT import the fast paths: everything here goes
through ``model.parameters()`` and per-parameter arrays only.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.nn.layers import Dense, ReLU
from repro.nn.models import Sequential
from repro.utils.rng import SeedSequenceFactory, as_generator

__all__ = [
    "legacy_num_params",
    "legacy_get_flat_params",
    "legacy_set_flat_params",
    "legacy_zero_grad",
    "legacy_loss_and_grad",
    "legacy_paper_mlp",
    "LegacyLocalTrainer",
    "SeedDense",
]


class SeedDense(Dense):
    """The seed revision's ``Dense``: temp-allocating bias add, always
    accumulates gradients, always computes the input gradient.

    Being a *subclass*, it is excluded from ``Sequential``'s exact-type
    backward fast paths, so a model built from it runs the full seed
    backward pass even through modern entry points.
    """

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected input (N, {self.in_features}), got {x.shape}")
        self._x = x if train else None
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray, **_ignored) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        grad_in = grad_out @ self.weight.data.T
        self._x = None
        return grad_in


def legacy_paper_mlp(
    in_features: int,
    num_classes: int,
    seed: int | np.random.Generator | None = 0,
    hidden: tuple[int, int] = (200, 100),
) -> Sequential:
    """``paper_mlp`` built from :class:`SeedDense` layers — identical
    initialization draw-for-draw, seed-path forward/backward cost."""
    rng = as_generator(seed)
    h1, h2 = hidden
    return Sequential(
        [
            SeedDense(in_features, h1, rng=rng, name="fc1"),
            ReLU(),
            SeedDense(h1, h2, rng=rng, name="fc2"),
            ReLU(),
            SeedDense(h2, num_classes, rng=rng, name="head"),
        ]
    )


def legacy_num_params(model) -> int:
    """Seed ``num_params``: recomputed sum on every call."""
    return sum(p.size for p in model.parameters())


def legacy_get_flat_params(model, out: np.ndarray | None = None) -> np.ndarray:
    """Seed ``get_flat_params``: one slice copy per parameter."""
    total = legacy_num_params(model)
    if out is None:
        out = np.empty(total, dtype=np.float64)
    offset = 0
    for p in model.parameters():
        out[offset : offset + p.size] = p.data.ravel()
        offset += p.size
    return out


def legacy_set_flat_params(model, flat: np.ndarray) -> None:
    """Seed ``set_flat_params``: one reshape+copy per parameter."""
    flat = np.asarray(flat, dtype=np.float64)
    offset = 0
    for p in model.parameters():
        p.data[...] = flat[offset : offset + p.size].reshape(p.shape)
        offset += p.size


def legacy_zero_grad(model) -> None:
    """Seed ``Sequential.zero_grad``: one fill per parameter."""
    for p in model.parameters():
        p.zero_grad()


def legacy_loss_and_grad(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Seed ``Sequential.loss_and_grad``: separate value and grad passes."""
    logits = model.forward(x, train=True)
    value = model.loss.value(logits, y)
    model.backward(model.loss.grad(logits, y))
    return value


class LegacyLocalTrainer:
    """The seed revision's ``LocalTrainer.train`` loop, per-parameter.

    Same constructor surface and stream-key discipline as
    :class:`repro.device.device.LocalTrainer`, so both can be driven with
    identical inputs and compared for time and for bitwise-equal output.
    """

    def __init__(
        self,
        model: Sequential,
        lr: float = 0.1,
        batch_size: int = 50,
        seed: int | None = 0,
        momentum: float = 0.0,
    ) -> None:
        self.model = model
        self.lr = lr
        self.batch_size = batch_size
        self.momentum = momentum
        self._seeds = SeedSequenceFactory(seed)
        self._slices: list[tuple[int, int, tuple[int, ...]]] = []
        offset = 0
        for p in model.parameters():
            self._slices.append((offset, offset + p.size, p.shape))
            offset += p.size
        self.dim = offset

    def train(
        self,
        weights: np.ndarray,
        shard: ClassificationDataset,
        epochs: int,
        stream_key: tuple[int, ...] = (0,),
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
        correction: np.ndarray | None = None,
        lr: float | None = None,
    ) -> tuple[np.ndarray, int]:
        eta = self.lr if lr is None else lr
        model = self.model
        legacy_set_flat_params(model, weights)
        params = model.parameters()
        rng = self._seeds.generator(*stream_key)
        velocity = (
            [np.zeros_like(p.data) for p in params] if self.momentum > 0 else None
        )
        steps = 0
        n = len(shard)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                legacy_zero_grad(model)
                legacy_loss_and_grad(model, shard.x[idx], shard.y[idx])
                if correction is not None:
                    for (lo, hi, shape), p in zip(self._slices, params):
                        p.grad += correction[lo:hi].reshape(shape)
                if anchor is not None and mu > 0.0:
                    for (lo, hi, shape), p in zip(self._slices, params):
                        p.grad += mu * (p.data - anchor[lo:hi].reshape(shape))
                if velocity is None:
                    for p in params:
                        p.data -= eta * p.grad
                else:
                    for v, p in zip(velocity, params):
                        v *= self.momentum
                        v += p.grad
                        p.data -= eta * v
                steps += 1
        return legacy_get_flat_params(model), steps
