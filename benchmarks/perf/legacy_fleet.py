"""Faithful re-implementation of the pre-fleet per-object device path.

The struct-of-arrays :class:`~repro.device.fleet.DeviceFleet` replaced a
device layer where every participant was a Python object holding its own
weight vector and shard copy, and where every round-level operation —
selection, availability, slowest-link charging, the result stack, sample
counts, round duration — looped over those objects.  This module preserves
that path, operation for operation, so the perf suite can measure the
"before" side on current hardware and pin the fleet engine to it bitwise:

* :func:`legacy_make_devices` — the seed ``make_devices``: one
  fancy-index shard copy and one ``Device`` object per entry.
* :class:`PerObjectFedAvgServer` — ``FedAvgServer`` with the pre-fleet
  ``run_round`` body: a fresh result allocation per device
  (``theta.copy()``) plus a stack write, Python-loop sample counts and
  round duration.  Built over a device *list*, the base server also takes
  its legacy branches for selection, availability filtering and
  transfer-time charging.
* :class:`NullTrainer` — a weights-in/weights-out stub shared by both
  sides of the round-orchestration benchmark, so the measured difference
  is exactly the device-layer round execution, never the (bit-identical)
  local SGD.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.fedavg import FedAvgServer
from repro.core.aggregation import sample_weighted_average
from repro.datasets.core import ClassificationDataset
from repro.device.device import Device, LocalTrainer

__all__ = ["NullTrainer", "PerObjectFedAvgServer", "legacy_make_devices"]


class NullTrainer(LocalTrainer):
    """Training stub: the result *materializes* but no SGD runs.

    Mirrors the real trainer's output contract — a fresh ``weights.copy()``
    on the legacy path (``out=None``), one ``copyto`` into the caller's
    row on the fleet path — so each side pays exactly the result-movement
    cost its device layer implies and nothing else.
    """

    def train(
        self,
        weights: np.ndarray,
        shard: ClassificationDataset,
        epochs: int,
        stream_key: tuple[int, ...] = (0,),
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
        correction: np.ndarray | None = None,
        lr: float | None = None,
        out: np.ndarray | None = None,
    ) -> tuple[np.ndarray, int]:
        if out is None:
            return weights.copy(), 1
        np.copyto(out, weights)
        return out, 1


def legacy_make_devices(
    dataset: ClassificationDataset,
    parts: list[np.ndarray],
    unit_times: np.ndarray,
    trainer: LocalTrainer,
) -> list[Device]:
    """The seed ``make_devices``: per-device subset copies + objects."""
    if len(parts) != len(unit_times):
        raise ValueError("parts and unit_times disagree")
    return [
        Device(
            device_id=i,
            shard=dataset.subset(idx, name=f"{dataset.name}/dev{i}"),
            unit_time=float(unit_times[i]),
            trainer=trainer,
        )
        for i, idx in enumerate(parts)
    ]


class PerObjectFedAvgServer(FedAvgServer):
    """FedAvg with the pre-fleet per-object round body, op for op."""

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        duration = max(d.unit_time for d in participants)
        receivers = self.broadcast(participants)
        stack = np.empty((len(receivers), self.trainer.dim))
        for i, dev in enumerate(receivers):
            stack[i] = dev.run_unit(
                global_weights,
                self.local_epochs_for(dev, duration),
                round_idx,
                0,
            )
        arrived = self.collect(receivers)
        self.clock.advance_by(duration)
        counts = np.array([d.num_samples for d in receivers])
        stack, counts = self.filter_arrived(arrived, stack, counts)
        return sample_weighted_average(stack, counts)
