"""Ablation: k-means capacity clustering (the paper's choice, Section 4.1)
vs equal-width binning, plus direct-use vs averaging of the received ring
model (the Fig. 2 finding applied inside the full framework)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments import ExperimentSpec, run_experiment
from repro.utils.tables import format_table


def run_ablation(scale):
    table = {}
    base = dict(
        method="fedhisyn",
        dataset="cifar10_like",
        num_samples=scale.num_samples,
        num_devices=scale.num_devices,
        partition="dirichlet",
        beta=0.3,
        rounds=scale.rounds_hard,
        local_epochs=scale.local_epochs,
        model_family="mlp",
        seed=scale.seeds[0],
    )
    for clustering in ("kmeans", "equal_width"):
        spec = ExperimentSpec(
            **base,
            method_kwargs={"num_classes": 5, "clustering_method": clustering},
        )
        table[("clustering", clustering)] = run_experiment(spec).final_accuracy
    for combine in ("direct", "average"):
        spec = ExperimentSpec(
            **base, method_kwargs={"num_classes": 5, "combine": combine}
        )
        table[("combine", combine)] = run_experiment(spec).final_accuracy
    return table


def test_ablation_clustering_and_combine(benchmark, scale):
    table = benchmark.pedantic(run_ablation, args=(scale,), rounds=1, iterations=1)
    rows = [
        ["clustering", "kmeans", f"{table[('clustering', 'kmeans')]:.3f}"],
        ["clustering", "equal_width", f"{table[('clustering', 'equal_width')]:.3f}"],
        ["combine", "direct", f"{table[('combine', 'direct')]:.3f}"],
        ["combine", "average", f"{table[('combine', 'average')]:.3f}"],
    ]
    emit(
        "Ablation — clustering method and received-model handling "
        "(cifar10_like, Dir(0.3), H in [1,10])",
        format_table(["axis", "variant", "final accuracy"], rows),
    )
    for value in table.values():
        assert value > 0.4
