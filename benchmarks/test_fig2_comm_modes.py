"""Figure 2: influence of device-to-device communication on model accuracy.

Five modes on homogeneous devices (no server): no communication, random
communication (direct / averaged), ring communication (direct / averaged),
on CIFAR10-role data under IID and Dirichlet(0.3).  Reported value: mean
overall-test accuracy of the per-device models — the paper's proxy for the
Eq. (4) divergence.

Shape targets: any communication beats none by a wide margin in both
distributions; ring-based communication is at least as good as random.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.observations import COMMUNICATION_MODES, communication_mode_experiment
from repro.datasets import dirichlet_partition, iid_partition, make_dataset, train_test_split
from repro.device import LocalTrainer, make_devices
from repro.experiments import build_model
from repro.nn.serialization import get_flat_params
from repro.utils.tables import format_table


def run_fig2(scale):
    ds = make_dataset("cifar10_like", num_samples=scale.num_samples, seed=0)
    train_set, test_set = train_test_split(ds, 0.2, seed=1)
    model = build_model(test_set, "mlp", "small", seed=2)
    trainer = LocalTrainer(model, lr=0.1, batch_size=50, seed=3)
    w0 = get_flat_params(model)
    rounds = 2 * scale.num_devices  # let ring chains close at least twice

    table = {}
    for setting, parts in (
        ("IID", iid_partition(train_set, scale.num_devices, seed=4)),
        ("Dir(0.3)", dirichlet_partition(train_set, scale.num_devices, beta=0.3, seed=4)),
    ):
        devices = make_devices(train_set, parts, np.ones(scale.num_devices), trainer)
        for mode in COMMUNICATION_MODES:
            res = communication_mode_experiment(
                mode, devices, test_set, w0, rounds=rounds,
                epochs_per_round=scale.local_epochs, seed=5,
                eval_every=max(1, rounds // 5),
            )
            table[(setting, mode)] = res.final
    return table


def test_fig2_communication_modes(benchmark, scale):
    table = benchmark.pedantic(run_fig2, args=(scale,), rounds=1, iterations=1)
    rows = [
        [mode] + [f"{table[(s, mode)]:.3f}" for s in ("IID", "Dir(0.3)")]
        for mode in COMMUNICATION_MODES
    ]
    emit(
        "Figure 2 — mean device-model accuracy by communication mode "
        "(cifar10_like)",
        format_table(["mode", "IID", "Dir(0.3)"], rows),
    )
    for setting in ("IID", "Dir(0.3)"):
        none = table[(setting, "none")]
        for mode in ("random", "ring"):
            assert table[(setting, mode)] > none, (
                f"{mode} should beat no-communication under {setting}"
            )
