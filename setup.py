"""Legacy setup shim: offline environments without the `wheel` package cannot
use PEP 660 editable installs; `python setup.py develop` still works."""
from setuptools import setup

setup()
