"""Pluggable environment layer: networks, availability, named presets.

One import surface for everything that describes the simulated world
outside the algorithm::

    from repro.env import Environment, make_environment

    srv = FedAvgServer(devices, test_set, env=make_environment("flaky_mobile"))

See :mod:`repro.env.environment` for the metering/clock contract and
:mod:`repro.env.registry` for the preset catalogue.
"""

from repro.env.availability import (
    AlwaysOn,
    AvailabilityModel,
    BernoulliAvailability,
    CapacityCorrelatedAvailability,
    DiurnalAvailability,
    TraceAvailability,
)
from repro.env.environment import Environment
from repro.env.network import (
    SERVER,
    IdealNetwork,
    NetworkModel,
    SampledNetwork,
    UniformNetwork,
)
from repro.env.registry import (
    AVAILABILITY_KINDS,
    EnvironmentEntry,
    available_environments,
    environment_entries,
    make_environment,
    register_environment,
)

__all__ = [
    "SERVER",
    "NetworkModel",
    "IdealNetwork",
    "UniformNetwork",
    "SampledNetwork",
    "AvailabilityModel",
    "AlwaysOn",
    "BernoulliAvailability",
    "TraceAvailability",
    "CapacityCorrelatedAvailability",
    "DiurnalAvailability",
    "Environment",
    "EnvironmentEntry",
    "register_environment",
    "make_environment",
    "available_environments",
    "environment_entries",
    "AVAILABILITY_KINDS",
]
