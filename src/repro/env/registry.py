"""Named environment presets: sweepable world models.

Every preset is a factory keyed by a short name — ``ideal`` is the paper's
semantics, the others are progressively harsher worlds.  Presets accept
keyword overrides (the :class:`ExperimentSpec.env_kwargs` /
``--drop-prob`` path), so ``make_environment("wan", drop_prob=0.1)`` is a
lossier WAN without defining a new preset, and a campaign grid can sweep
``env`` exactly like any other spec field.

Override keys understood by every preset:

``latency``, ``bandwidth``, ``peer_latency``, ``peer_bandwidth``,
``latency_spread``, ``bandwidth_spread``, ``drop_prob``, ``seed``
    Network shape — see :mod:`repro.env.network`.  Latencies are in
    virtual-time units (a median device's training unit is ~0.5);
    bandwidths in models per unit time.
``availability``
    ``"always"`` | ``"bernoulli"`` | ``"trace"`` | ``"capacity"`` |
    ``"diurnal"``.
``up_prob``, ``slow_penalty``, ``traces``, ``default_up``, ``period``,
``min_up``, ``max_up``, ``phase``
    Availability-model parameters (see :mod:`repro.env.availability`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.env.availability import (
    AlwaysOn,
    AvailabilityModel,
    BernoulliAvailability,
    CapacityCorrelatedAvailability,
    DiurnalAvailability,
    TraceAvailability,
)
from repro.env.environment import Environment
from repro.env.network import SampledNetwork, UniformNetwork

__all__ = [
    "EnvironmentEntry",
    "register_environment",
    "make_environment",
    "available_environments",
    "environment_entries",
    "AVAILABILITY_KINDS",
]

AVAILABILITY_KINDS = ("always", "bernoulli", "trace", "capacity", "diurnal")


@dataclass(frozen=True)
class EnvironmentEntry:
    """One registered preset: its factory plus the ``list envs`` blurb."""

    name: str
    factory: Callable[..., Environment]
    description: str = ""


_REGISTRY: dict[str, EnvironmentEntry] = {}


def register_environment(
    name: str, description: str = ""
) -> Callable[[Callable[..., Environment]], Callable[..., Environment]]:
    """Decorator registering an environment factory under ``name``."""
    if not name or not name.replace("_", "").islower() or not name.isidentifier():
        raise ValueError(
            f"environment name must be a lowercase identifier, got {name!r}"
        )

    def decorate(factory: Callable[..., Environment]) -> Callable[..., Environment]:
        if name in _REGISTRY and _REGISTRY[name].factory is not factory:
            raise ValueError(f"environment {name!r} is already registered")
        _REGISTRY[name] = EnvironmentEntry(name, factory, description)
        return factory

    return decorate


def make_environment(name: str, **overrides: Any) -> Environment:
    """Instantiate a registered preset, applying keyword overrides.

    Raises ``ValueError`` for an unknown name *or* an unknown override key,
    so :class:`ExperimentSpec` validation catches bad ``env_kwargs`` at
    sweep-expansion time rather than mid-campaign.
    """
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown environment {name!r}; known: {available_environments()}"
        ) from None
    try:
        return entry.factory(**overrides)
    except TypeError as exc:
        raise ValueError(
            f"bad env_kwargs for environment {name!r}: {exc}"
        ) from None


def available_environments() -> list[str]:
    """Sorted names of every registered environment preset."""
    return sorted(_REGISTRY)


def environment_entries() -> list[EnvironmentEntry]:
    """All registered entries, sorted by name — the ``list envs`` feed."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ----------------------------------------------------------------- builder


def _build(
    name: str,
    *,
    latency: float = 0.0,
    bandwidth: float = math.inf,
    peer_latency: float | None = None,
    peer_bandwidth: float | None = None,
    latency_spread: float = 0.0,
    bandwidth_spread: float = 0.0,
    drop_prob: float = 0.0,
    availability: str = "always",
    up_prob: float | None = None,
    slow_penalty: float | None = None,
    traces: dict | None = None,
    default_up: bool = True,
    period: float = 24.0,
    min_up: float = 0.15,
    max_up: float = 0.95,
    phase: float = 0.0,
    seed: int = 0,
) -> Environment:
    """Assemble an Environment from flat, JSON-safe keyword parameters."""
    if latency_spread or bandwidth_spread:
        network = SampledNetwork(
            latency=latency,
            bandwidth=bandwidth,
            drop_prob=drop_prob,
            peer_latency=peer_latency,
            peer_bandwidth=peer_bandwidth,
            latency_spread=latency_spread,
            bandwidth_spread=bandwidth_spread,
            seed=seed,
        )
    else:
        network = UniformNetwork(
            latency=latency,
            bandwidth=bandwidth,
            drop_prob=drop_prob,
            peer_latency=peer_latency,
            peer_bandwidth=peer_bandwidth,
        )
    avail: AvailabilityModel
    if availability == "always":
        avail = AlwaysOn()
    elif availability == "bernoulli":
        avail = BernoulliAvailability(0.9 if up_prob is None else up_prob)
    elif availability == "trace":
        avail = TraceAvailability(traces or {}, default=default_up)
    elif availability == "capacity":
        avail = CapacityCorrelatedAvailability(
            0.95 if up_prob is None else up_prob,
            0.4 if slow_penalty is None else slow_penalty,
        )
    elif availability == "diurnal":
        avail = DiurnalAvailability(
            period=period, min_up=min_up, max_up=max_up, phase=phase
        )
    else:
        raise TypeError(
            f"availability must be one of {AVAILABILITY_KINDS}, got {availability!r}"
        )
    return Environment(network, avail, name=name)


# ----------------------------------------------------------------- presets


@register_environment(
    "ideal", "paper semantics: instant lossless links, always-on devices"
)
def _ideal(**overrides: Any) -> Environment:
    return _build("ideal", **overrides)


@register_environment(
    "lan", "data-center floor: sub-unit latency, fat pipes, no loss"
)
def _lan(**overrides: Any) -> Environment:
    return _build("lan", **{"latency": 0.005, "bandwidth": 200.0, **overrides})


@register_environment(
    "wan", "cross-region links: tens-of-ms-scale latency spread, 1% loss"
)
def _wan(**overrides: Any) -> Environment:
    return _build(
        "wan",
        **{
            "latency": 0.05,
            "bandwidth": 20.0,
            "latency_spread": 0.5,
            "drop_prob": 0.01,
            **overrides,
        },
    )


@register_environment(
    "flaky_mobile",
    "cellular fleet: slow lossy links, slow devices churn out of rounds",
)
def _flaky_mobile(**overrides: Any) -> Environment:
    return _build(
        "flaky_mobile",
        **{
            "latency": 0.08,
            "bandwidth": 5.0,
            "latency_spread": 1.0,
            "bandwidth_spread": 0.5,
            "drop_prob": 0.05,
            "availability": "capacity",
            "up_prob": 0.9,
            "slow_penalty": 0.4,
            **overrides,
        },
    )


@register_environment(
    "satellite", "high-latency narrow uplink: big RTT dominates small models"
)
def _satellite(**overrides: Any) -> Environment:
    return _build(
        "satellite",
        **{"latency": 0.3, "bandwidth": 2.0, "drop_prob": 0.02, **overrides},
    )


@register_environment(
    "churn", "perfect network, unreliable fleet: 30% of devices offline per round"
)
def _churn(**overrides: Any) -> Environment:
    return _build(
        "churn", **{"availability": "bernoulli", "up_prob": 0.7, **overrides}
    )


@register_environment(
    "diurnal",
    "perfect network, day/night fleet: sinusoidal online probability",
)
def _diurnal(**overrides: Any) -> Environment:
    return _build("diurnal", **{"availability": "diurnal", **overrides})
