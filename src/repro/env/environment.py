"""The Environment: one object describing the world outside the algorithm.

An :class:`Environment` bundles a :class:`~repro.env.network.NetworkModel`
(link latency, bandwidth, message loss) with an
:class:`~repro.env.availability.AvailabilityModel` (device churn).  The
server's channel API (:meth:`FederatedServer.broadcast` /
:meth:`~FederatedServer.collect` / :meth:`~FederatedServer.peer_send`)
reads transfer times and drop probabilities from it; participant sampling
filters through :meth:`Environment.available`; the FedHiSyn ring engine
uses the same network model for peer hops.

The contract that keeps experiments comparable:

* ``Environment.ideal()`` — instant lossless links, always-on devices —
  reproduces the paper's semantics **bit-for-bit**: no rng stream is
  touched, no transfer time is charged, no message is dropped.
* Any other environment only ever *removes* messages/participants or
  *adds* virtual time; the training mathematics per delivered model is
  untouched.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.env.availability import AlwaysOn, AvailabilityModel
from repro.env.network import SERVER, IdealNetwork, NetworkModel

__all__ = ["Environment"]


class Environment:
    """Network conditions + device availability for one simulated world."""

    def __init__(
        self,
        network: NetworkModel | None = None,
        availability: AvailabilityModel | None = None,
        name: str = "custom",
    ) -> None:
        self.network = network if network is not None else IdealNetwork()
        self.availability = (
            availability if availability is not None else AlwaysOn()
        )
        if not isinstance(self.network, NetworkModel):
            raise ValueError(
                f"network must be a NetworkModel, got {type(self.network).__name__}"
            )
        if not isinstance(self.availability, AvailabilityModel):
            raise ValueError(
                "availability must be an AvailabilityModel, "
                f"got {type(self.availability).__name__}"
            )
        self.name = name

    @classmethod
    def ideal(cls) -> "Environment":
        """Paper semantics: the default environment of every server."""
        return cls(IdealNetwork(), AlwaysOn(), name="ideal")

    # ------------------------------------------------------------ queries

    @property
    def is_ideal(self) -> bool:
        """True when the environment can never perturb a run."""
        return (
            self.network.is_instant
            and self.network.drop_prob == 0.0
            and self.availability.always_on
        )

    def available(
        self,
        round_idx: int,
        devices: Sequence,
        rng: np.random.Generator,
    ) -> list:
        """Online subset of ``devices`` this round — never empty.

        An all-offline draw falls back to one rng-chosen device: a round
        with zero participants would stall every method, and in practice a
        server simply waits for the first device to reappear.
        """
        devices = list(devices)
        if not devices or self.availability.always_on:
            return devices
        mask = self.availability.available_mask(round_idx, devices, rng)
        online = [d for d, up in zip(devices, mask) if up]
        if not online:
            online = [devices[int(rng.integers(len(devices)))]]
        return online

    def available_ids(
        self,
        round_idx: int,
        device_ids: np.ndarray,
        unit_times: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Array twin of :meth:`available`: online subset of an id array.

        ``unit_times`` is aligned with ``device_ids`` (what capacity-aware
        models read).  Draws the same rng stream as the object path, so a
        fleet server and a device-list server see identical churn.
        """
        device_ids = np.asarray(device_ids, dtype=np.intp)
        if not len(device_ids) or self.availability.always_on:
            return device_ids
        mask = self.online_mask_ids(round_idx, device_ids, unit_times, rng)
        return device_ids[mask]

    def online_mask_ids(
        self,
        round_idx: int,
        device_ids: np.ndarray,
        unit_times: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean online mask over ``device_ids`` — never all-False.

        The mask form of :meth:`available_ids`, with **identical rng
        draws** (one model draw, plus the same fallback draw when every
        device came up offline).  Callers that keep population-sized
        state — the async server's churn epochs — diff this mask against
        the previous one and touch only the devices whose state actually
        flips, instead of rebuilding membership sets each epoch.
        """
        n = len(device_ids)
        if not n or self.availability.always_on:
            return np.ones(n, dtype=bool)
        mask = np.asarray(
            self.availability.available_mask_ids(
                round_idx, device_ids, unit_times, rng
            ),
            dtype=bool,
        )
        if not mask.any():
            # The all-offline fallback: one rng-chosen device stays up
            # (same draw as the object path's ``available``).
            mask = mask.copy()
            mask[int(rng.integers(n))] = True
        return mask

    def server_transfer_time(
        self, devices: Sequence, model_units: float | np.ndarray = 1.0
    ) -> float:
        """Time until the slowest server↔device link finishes one transfer.

        Links are symmetric in every bundled network model, so this serves
        both broadcast (down) and collect (up).  ``model_units`` may be an
        array aligned with ``devices`` (codec uploads size per sender).
        """
        net = self.network
        if net.is_instant or not devices:
            return 0.0
        if np.ndim(model_units) == 0:
            return max(
                net.transfer_time(SERVER, d.device_id, model_units)
                for d in devices
            )
        return max(
            net.transfer_time(SERVER, d.device_id, float(u))
            for d, u in zip(devices, model_units)
        )

    def server_transfer_time_ids(
        self, device_ids: np.ndarray, model_units: float | np.ndarray = 1.0
    ) -> float:
        """Slowest server-link transfer over an id array, vectorized."""
        net = self.network
        if net.is_instant or not len(device_ids):
            return 0.0
        return float(net.server_transfer_times(device_ids, model_units).max())

    def describe(self) -> str:
        """One-line summary for ``repro list envs``."""
        return (
            f"network={type(self.network).__name__} "
            f"drop={self.network.drop_prob:g} "
            f"availability={type(self.availability).__name__}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Environment({self.name!r}: {self.describe()})"
