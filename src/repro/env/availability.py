"""Device-availability models: who is online this round.

The paper's evaluation keeps every sampled device online for the whole
round; real fleets churn.  An :class:`AvailabilityModel` maps a round index
and a candidate device list to a boolean online mask — the server applies
it *after* participant sampling, so availability composes with any
selection policy (a device can be picked and then found offline).

All models are pure functions of ``(round_idx, devices, rng)``; the server
owns the rng stream so runs stay reproducible and campaign-cacheable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.utils.config import validate_fraction

__all__ = [
    "AvailabilityModel",
    "AlwaysOn",
    "BernoulliAvailability",
    "TraceAvailability",
    "CapacityCorrelatedAvailability",
    "DiurnalAvailability",
]


class AvailabilityModel:
    """Interface: per-round online mask over a device list."""

    #: True for models that never take a device offline — the server skips
    #: the rng stream entirely for them (the ``ideal`` bit-identity path).
    always_on: bool = False

    def available_mask(
        self,
        round_idx: int,
        devices: Sequence,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean mask, True where ``devices[i]`` is online in ``round_idx``."""
        raise NotImplementedError

    def available_mask_ids(
        self,
        round_idx: int,
        device_ids: np.ndarray,
        unit_times: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Array-based twin of :meth:`available_mask` for fleet servers.

        Consumes the population *arrays* (``device_ids`` and the aligned
        ``unit_times``) instead of device objects, so fleet-scale rounds
        never materialize facades just to ask who is online.  Every
        bundled model implements it with **identical rng draws** to the
        object path — the two are interchangeable bit-for-bit.  The
        default falls back to :meth:`available_mask` with lightweight
        stand-ins for third-party models that only know the object
        protocol.
        """
        stand_ins = [
            _DeviceStandIn(int(i), float(t))
            for i, t in zip(device_ids, unit_times)
        ]
        return self.available_mask(round_idx, stand_ins, rng)


class _DeviceStandIn:
    """The two attributes availability models may read, without a Device."""

    __slots__ = ("device_id", "unit_time")

    def __init__(self, device_id: int, unit_time: float) -> None:
        self.device_id = device_id
        self.unit_time = unit_time


class AlwaysOn(AvailabilityModel):
    """Paper semantics: every device is online every round."""

    always_on = True

    def available_mask(self, round_idx, devices, rng):
        return np.ones(len(devices), dtype=bool)

    def available_mask_ids(self, round_idx, device_ids, unit_times, rng):
        return np.ones(len(device_ids), dtype=bool)


class BernoulliAvailability(AvailabilityModel):
    """Independent churn: each device is online with probability ``up_prob``."""

    def __init__(self, up_prob: float = 0.9) -> None:
        validate_fraction(up_prob, "up_prob")
        self.up_prob = float(up_prob)

    def available_mask(self, round_idx, devices, rng):
        if self.up_prob >= 1.0:
            return np.ones(len(devices), dtype=bool)
        return rng.random(len(devices)) < self.up_prob

    def available_mask_ids(self, round_idx, device_ids, unit_times, rng):
        if self.up_prob >= 1.0:
            return np.ones(len(device_ids), dtype=bool)
        return rng.random(len(device_ids)) < self.up_prob


class TraceAvailability(AvailabilityModel):
    """Trace-driven availability: a per-device on/off schedule.

    ``traces`` maps a device id to a sequence of booleans indexed by round
    (cycled when the run outlasts the trace).  Devices without a trace use
    ``default``.  Round indices are 1-based (the server's convention), so
    round ``r`` reads ``trace[(r - 1) % len(trace)]``.

    Keys are coerced with ``int()``, so string device ids are accepted —
    use string keys (``{"0": [...]}``) when the traces travel through
    ``ExperimentSpec.env_kwargs``: JSON object keys are always strings,
    and integer keys would make the spec's dict round-trip unequal even
    though the run itself behaves identically.
    """

    def __init__(
        self,
        traces: Mapping[int, Sequence[bool]],
        default: bool = True,
    ) -> None:
        self.traces = {
            int(dev_id): [bool(v) for v in trace]
            for dev_id, trace in dict(traces).items()
        }
        for dev_id, trace in self.traces.items():
            if not trace:
                raise ValueError(f"trace for device {dev_id} is empty")
        self.default = bool(default)
        # Streamed array form: the traced schedules live once as one flat
        # boolean block plus (id, offset, length) arrays, and an epoch's
        # values are a single modular gather — per-epoch cost scales with
        # the number of *traced* devices, no matter how many devices the
        # caller's id array holds, and nothing is ever materialized per
        # untraced device.
        tids = sorted(self.traces)
        self._trace_ids = np.asarray(tids, dtype=np.intp)
        lens = np.asarray([len(self.traces[i]) for i in tids], dtype=np.intp)
        self._trace_lengths = lens
        self._trace_offsets = np.concatenate(
            ([0], np.cumsum(lens[:-1]))
        ).astype(np.intp) if tids else np.zeros(0, dtype=np.intp)
        self._trace_flat = np.asarray(
            [v for i in tids for v in self.traces[i]], dtype=bool
        )

    def available_mask(self, round_idx, devices, rng):
        mask = np.empty(len(devices), dtype=bool)
        for i, dev in enumerate(devices):
            trace = self.traces.get(dev.device_id)
            if trace is None:
                mask[i] = self.default
            else:
                mask[i] = trace[(round_idx - 1) % len(trace)]
        return mask

    def available_mask_ids(self, round_idx, device_ids, unit_times, rng):
        ids = np.asarray(device_ids)
        mask = np.full(len(ids), self.default, dtype=bool)
        tids = self._trace_ids
        if not tids.size or not ids.size:
            return mask
        # This epoch's value for every traced device: one modular gather
        # from the flat trace block (round indices are 1-based).
        vals = self._trace_flat[
            self._trace_offsets + (round_idx - 1) % self._trace_lengths
        ]
        # Locate the traced devices inside ``ids`` — O(traced x log n),
        # untraced devices are never enumerated.  Cohort id arrays are
        # ascending in practice; fall back to an argsort when not.
        if ids.size > 1 and np.any(np.diff(ids) < 0):
            sorter = np.argsort(ids, kind="stable")
            rows = sorter[np.minimum(np.searchsorted(ids, tids, sorter=sorter), ids.size - 1)]
        else:
            rows = np.minimum(np.searchsorted(ids, tids), ids.size - 1)
        hit = ids[rows] == tids
        mask[rows[hit]] = vals[hit]
        return mask


class DiurnalAvailability(AvailabilityModel):
    """Day/night cycle: the fleet's online probability follows a sinusoid
    of the round index (synchronous servers) or churn-epoch index (async
    servers) — both tick once per "round" of virtual time, so ``period``
    is the cycle length in rounds.

    ``up_prob(t) = min_up + (max_up - min_up) * (1 + sin(2*pi*(t/period
    + phase))) / 2`` — peaks at ``max_up`` (evening plugged-in-and-idle
    fleets), troughs at ``min_up``.  ``phase`` in [0, 1) shifts where in
    the cycle round 0 lands.  Every device shares the cycle (it models
    one timezone's fleet); the per-device draws stay independent.
    """

    def __init__(
        self,
        period: float = 24.0,
        min_up: float = 0.15,
        max_up: float = 0.95,
        phase: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        validate_fraction(min_up, "min_up", inclusive_low=True)
        validate_fraction(max_up, "max_up")
        if min_up > max_up:
            raise ValueError(
                f"min_up ({min_up}) must not exceed max_up ({max_up})"
            )
        self.period = float(period)
        self.min_up = float(min_up)
        self.max_up = float(max_up)
        self.phase = float(phase)

    def up_prob(self, round_idx: int) -> float:
        """The cycle's online probability at tick ``round_idx``."""
        wave = np.sin(2.0 * np.pi * (round_idx / self.period + self.phase))
        return float(self.min_up + (self.max_up - self.min_up) * 0.5 * (1.0 + wave))

    def available_mask(self, round_idx, devices, rng):
        return rng.random(len(devices)) < self.up_prob(round_idx)

    def available_mask_ids(self, round_idx, device_ids, unit_times, rng):
        return rng.random(len(device_ids)) < self.up_prob(round_idx)


class CapacityCorrelatedAvailability(AvailabilityModel):
    """Slow devices drop out more: the mobile-fleet failure mode.

    A device's online probability falls linearly with its normalized unit
    time within the candidate set: the fastest candidate is up with
    ``up_prob``, the slowest with ``up_prob - slow_penalty`` (floored at
    5% so no device is permanently dark).
    """

    def __init__(self, up_prob: float = 0.95, slow_penalty: float = 0.4) -> None:
        validate_fraction(up_prob, "up_prob")
        validate_fraction(slow_penalty, "slow_penalty", inclusive_low=True)
        self.up_prob = float(up_prob)
        self.slow_penalty = float(slow_penalty)

    def available_mask(self, round_idx, devices, rng):
        times = np.array([d.unit_time for d in devices], dtype=np.float64)
        return self._mask_from_times(times, rng)

    def available_mask_ids(self, round_idx, device_ids, unit_times, rng):
        times = np.asarray(unit_times, dtype=np.float64)
        return self._mask_from_times(times, rng)

    def _mask_from_times(self, times: np.ndarray, rng) -> np.ndarray:
        lo, hi = times.min(), times.max()
        norm = np.zeros_like(times) if hi == lo else (times - lo) / (hi - lo)
        probs = np.clip(self.up_prob - self.slow_penalty * norm, 0.05, 1.0)
        return rng.random(len(times)) < probs
