"""Network models: per-link latency, bandwidth and message loss.

The seed code only modelled device-to-device link delays (for the FedHiSyn
ring) via :class:`repro.device.network.LinkDelayModel`; server↔device
transfers were free and lossless.  :class:`NetworkModel` generalizes the
link-delay interface to *every* link — the server is addressed by the
:data:`SERVER` sentinel — and adds two quantities the paper's robustness
story turns on:

* **bandwidth** (models per unit of virtual time): a transfer of ``u``
  model units over a link takes ``latency + u / bandwidth``;
* **drop_prob**: independent per-message loss, subsuming the
  ``RingRoundEngine.drop_prob`` failure injection and extending it to
  server links.

Because :class:`NetworkModel` subclasses :class:`LinkDelayModel`, the ring
engine and the Eq. 5 ring builder consume it unchanged for peer hops.
"""

from __future__ import annotations

import math

import numpy as np

from repro.device.network import LinkDelayModel
from repro.utils.config import validate_non_negative

__all__ = ["SERVER", "NetworkModel", "IdealNetwork", "UniformNetwork", "SampledNetwork"]

#: Link endpoint denoting the central server (device ids are >= 0).
SERVER = -1


def _validate_bandwidth(value: float, name: str) -> float:
    """Bandwidth is models per virtual-time unit; zero would make every
    transfer take forever, so it is rejected rather than silently producing
    infinite round times (``math.inf`` means an instant link)."""
    if not value > 0:
        raise ValueError(
            f"{name} must be positive (models per time unit); "
            f"use math.inf for instant links, got {value}"
        )
    return float(value)


class NetworkModel(LinkDelayModel):
    """Interface: transfer times and loss for server↔device and peer links.

    Subclasses implement :meth:`latency` and :meth:`bandwidth` for any
    ``(src, dst)`` pair (either endpoint may be :data:`SERVER`) and expose
    ``drop_prob``.  The inherited :class:`LinkDelayModel` protocol
    (``delay``/``delay_row``) reports the one-model transfer time, which is
    what ring construction and the ring engine mean by "link delay".
    """

    drop_prob: float = 0.0

    @property
    def is_instant(self) -> bool:
        """True when every link is zero-latency and infinite-bandwidth —
        lets the channel layer skip per-transfer work under ``ideal``."""
        return False

    def latency(self, src: int, dst: int) -> float:
        raise NotImplementedError

    def bandwidth(self, src: int, dst: int) -> float:
        raise NotImplementedError

    def transfer_time(self, src: int, dst: int, model_units: float = 1.0) -> float:
        """Virtual time to move ``model_units`` across the ``src -> dst`` link."""
        bw = self.bandwidth(src, dst)
        lat = self.latency(src, dst)
        if bw == math.inf:
            return lat
        return lat + model_units / bw

    def server_transfer_times(
        self, device_ids: np.ndarray, model_units: float = 1.0
    ) -> np.ndarray:
        """Per-device server-link transfer times as one vectorized read.

        The fleet server charges the slowest link of a broadcast/collect;
        a Python ``transfer_time`` call per device would make that O(n)
        interpreted work every channel call.  Subclasses with per-device
        structure (:class:`SampledNetwork`) override this with array math;
        the generic fallback loops.  ``model_units`` may be an array
        aligned with ``device_ids`` (per-sender codec wire sizes).
        """
        units = np.broadcast_to(model_units, (len(device_ids),))
        return np.array(
            [
                self.transfer_time(SERVER, int(d), float(u))
                for d, u in zip(device_ids, units)
            ],
            dtype=np.float64,
        )

    # ------------------------------------------- LinkDelayModel protocol

    def delay(self, src: int, dst: int) -> float:
        return self.transfer_time(src, dst, 1.0)

    def delay_row(self, src: int, dsts: np.ndarray) -> np.ndarray:
        return np.array(
            [self.transfer_time(src, int(d), 1.0) for d in dsts], dtype=np.float64
        )


class UniformNetwork(NetworkModel):
    """One latency/bandwidth for every link, optional peer-link overrides.

    ``latency``/``bandwidth`` describe server↔device links;
    ``peer_latency``/``peer_bandwidth`` default to the same values and
    govern device-to-device ring hops.
    """

    def __init__(
        self,
        latency: float = 0.0,
        bandwidth: float = math.inf,
        drop_prob: float = 0.0,
        peer_latency: float | None = None,
        peer_bandwidth: float | None = None,
    ) -> None:
        validate_non_negative(latency, "latency")
        _validate_bandwidth(bandwidth, "bandwidth")
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self._latency = float(latency)
        self._bandwidth = float(bandwidth)
        self.drop_prob = float(drop_prob)
        self._peer_latency = (
            self._latency if peer_latency is None
            else validate_non_negative(peer_latency, "peer_latency")
        )
        self._peer_bandwidth = (
            self._bandwidth if peer_bandwidth is None
            else _validate_bandwidth(peer_bandwidth, "peer_bandwidth")
        )

    @property
    def is_instant(self) -> bool:
        return (
            self._latency == 0.0
            and self._peer_latency == 0.0
            and self._bandwidth == math.inf
            and self._peer_bandwidth == math.inf
        )

    def _is_server_link(self, src: int, dst: int) -> bool:
        return src == SERVER or dst == SERVER

    def latency(self, src: int, dst: int) -> float:
        return self._latency if self._is_server_link(src, dst) else self._peer_latency

    def bandwidth(self, src: int, dst: int) -> float:
        return self._bandwidth if self._is_server_link(src, dst) else self._peer_bandwidth

    def delay_row(self, src: int, dsts: np.ndarray) -> np.ndarray:
        # delay_row is only queried for peer hops (ring construction), so
        # the whole row shares one per-hop time.
        time_per_hop = self._peer_latency + (
            0.0 if self._peer_bandwidth == math.inf else 1.0 / self._peer_bandwidth
        )
        return np.full(len(dsts), time_per_hop)

    def server_transfer_times(
        self, device_ids: np.ndarray, model_units: float = 1.0
    ) -> np.ndarray:
        t = self._latency + (
            0.0 if self._bandwidth == math.inf else model_units / self._bandwidth
        )
        if np.ndim(t) == 0:
            return np.full(len(device_ids), t)
        return np.asarray(np.broadcast_to(t, (len(device_ids),)), dtype=np.float64)


class SampledNetwork(UniformNetwork):
    """Per-device link quality sampled deterministically from the device id.

    Each device draws a latency multiplier ``exp(N(0, latency_spread))``
    and a bandwidth divisor ``exp(N(0, bandwidth_spread))`` from an RNG
    keyed by ``(seed, device_id)``, so a device's links look the same
    regardless of fleet size, round count or query order.  A link's
    latency is the base latency scaled by the mean of its endpoints'
    multipliers (the server's multiplier is 1).
    """

    def __init__(
        self,
        latency: float = 0.0,
        bandwidth: float = math.inf,
        drop_prob: float = 0.0,
        peer_latency: float | None = None,
        peer_bandwidth: float | None = None,
        latency_spread: float = 0.0,
        bandwidth_spread: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(latency, bandwidth, drop_prob, peer_latency, peer_bandwidth)
        validate_non_negative(latency_spread, "latency_spread")
        validate_non_negative(bandwidth_spread, "bandwidth_spread")
        self.latency_spread = float(latency_spread)
        self.bandwidth_spread = float(bandwidth_spread)
        self.seed = int(seed)
        self._factors: dict[int, tuple[float, float]] = {SERVER: (1.0, 1.0)}
        # Dense factor cache for the vectorized fleet path: row i holds
        # device i's (latency multiplier, bandwidth divisor); NaN = not
        # yet drawn.  Grown on demand, filled once per device, then every
        # server_transfer_times call is pure array indexing.
        self._factor_table = np.full((0, 2), np.nan)

    def _device_factors(self, endpoint: int) -> tuple[float, float]:
        """(latency multiplier, bandwidth divisor) for one endpoint, cached."""
        cached = self._factors.get(endpoint)
        if cached is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(endpoint,))
            )
            lat_mult = float(np.exp(rng.normal(0.0, self.latency_spread))) \
                if self.latency_spread else 1.0
            bw_div = float(np.exp(rng.normal(0.0, self.bandwidth_spread))) \
                if self.bandwidth_spread else 1.0
            cached = (lat_mult, bw_div)
            self._factors[endpoint] = cached
        return cached

    @property
    def is_instant(self) -> bool:
        # Spreads only scale the base values; instant iff the base is.
        return super().is_instant

    def latency(self, src: int, dst: int) -> float:
        base = super().latency(src, dst)
        if base == 0.0 or self.latency_spread == 0.0:
            return base
        m_src = self._device_factors(src)[0]
        m_dst = self._device_factors(dst)[0]
        return base * 0.5 * (m_src + m_dst)

    def bandwidth(self, src: int, dst: int) -> float:
        base = super().bandwidth(src, dst)
        if base == math.inf or self.bandwidth_spread == 0.0:
            return base
        d_src = self._device_factors(src)[1]
        d_dst = self._device_factors(dst)[1]
        return base / (0.5 * (d_src + d_dst))

    def delay_row(self, src: int, dsts: np.ndarray) -> np.ndarray:
        # Vectorized row read — build_ring_eq5 calls this once per ring
        # position, so a per-destination Python transfer_time loop would
        # put the Eq. 5 construction back in O(n^2) interpreted code.
        # Factor lookups are cached dict reads after the first round.
        dsts = np.asarray(dsts, dtype=np.intp)
        lat_mult_src, bw_div_src = self._device_factors(src)
        lat_mults = np.empty(len(dsts))
        bw_divs = np.empty(len(dsts))
        for i, d in enumerate(dsts):
            lat_mults[i], bw_divs[i] = self._device_factors(int(d))

        lat_base = self._peer_latency
        if lat_base == 0.0 or self.latency_spread == 0.0:
            lat = np.full(len(dsts), lat_base)
        else:
            lat = lat_base * 0.5 * (lat_mult_src + lat_mults)

        bw_base = self._peer_bandwidth
        if bw_base == math.inf:
            return lat
        if self.bandwidth_spread == 0.0:
            return lat + 1.0 / bw_base
        return lat + 0.5 * (bw_div_src + bw_divs) / bw_base

    def _factor_columns(self, device_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(latency multipliers, bandwidth divisors) for an id array."""
        device_ids = np.asarray(device_ids, dtype=np.intp)
        table = self._factor_table
        top = int(device_ids.max()) + 1 if len(device_ids) else 0
        if top > table.shape[0]:
            grown = np.full((top, 2), np.nan)
            grown[: table.shape[0]] = table
            self._factor_table = table = grown
        rows = device_ids[np.isnan(table[device_ids, 0])]
        for d in rows:
            table[d] = self._device_factors(int(d))
        return table[device_ids, 0], table[device_ids, 1]

    def server_transfer_times(
        self, device_ids: np.ndarray, model_units: float = 1.0
    ) -> np.ndarray:
        # Mirrors transfer_time(SERVER, d) element for element (same op
        # order, so the slowest-link max is bitwise equal to the loop).
        n = len(device_ids)
        lat_base = self._latency
        bw_base = self._bandwidth
        need_lat = lat_base != 0.0 and self.latency_spread != 0.0
        need_bw = bw_base != math.inf and self.bandwidth_spread != 0.0
        if need_lat or need_bw:
            lat_mults, bw_divs = self._factor_columns(device_ids)
        if need_lat:
            lat = lat_base * 0.5 * (1.0 + lat_mults)
        else:
            lat = np.full(n, lat_base)
        if bw_base == math.inf:
            return lat
        if need_bw:
            bw = bw_base / (0.5 * (1.0 + bw_divs))
        else:
            bw = np.full(n, bw_base)
        return lat + model_units / bw


class IdealNetwork(UniformNetwork):
    """The paper's semantics: instant, lossless links everywhere."""

    def __init__(self) -> None:
        super().__init__(latency=0.0, bandwidth=math.inf, drop_prob=0.0)

    @property
    def is_instant(self) -> bool:
        return True
