"""Experiment campaigns: grid expansion, parallel execution, result cache.

Every result in the paper is a *sweep* — a grid over methods x datasets x
participation x K x heterogeneity x seeds — so the campaign layer makes
"run this grid" a single call:

>>> from repro import ExperimentSpec
>>> from repro.campaign import Campaign, sweep
>>> specs = sweep(ExperimentSpec(rounds=5), {
...     "method": ["fedhisyn", "fedavg"],
...     "seed": [0, 1, 2],
... }, method_kwargs={"fedhisyn": {"num_classes": 5}})
>>> result = Campaign(specs, cache_dir=".repro-cache").run(workers=2)  # doctest: +SKIP
>>> print(result.to_table(target=0.8))                                 # doctest: +SKIP

Three design points:

- **Stable cache keys.**  :func:`spec_hash` digests the canonical JSON of
  ``ExperimentSpec.to_dict()``; every run is memoised under
  ``<cache_dir>/<hash>.json``, so re-running a campaign (or a superset of
  it) only pays for the new cells.  Runs are deterministic given a spec,
  which is what makes caching sound.
- **Process-level parallelism.**  Training is pure NumPy number crunching,
  so threads would serialise on the GIL; ``Campaign.run(workers=N)`` ships
  spec dicts to a :class:`~concurrent.futures.ProcessPoolExecutor` and
  gets result dicts back (both sides of that wire format are the lossless
  ``to_dict``/``from_dict`` round-trips on the spec and result types).
- **Seed aggregation.**  :meth:`CampaignResult.aggregate` groups runs that
  differ only in ``seed`` and reports mean±std, which is how the paper's
  averaged figures (and any honest benchmark) want their numbers.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.experiments import ExperimentSpec, run_experiment
from repro.simulation.results import RunResult
from repro.utils.tables import format_table

__all__ = [
    "spec_hash",
    "sweep",
    "Campaign",
    "CampaignEntry",
    "CampaignResult",
]


def spec_hash(spec: ExperimentSpec) -> str:
    """Stable content hash of a spec — the campaign cache key.

    Canonical JSON (sorted keys, no whitespace drift) of ``to_dict()``,
    sha256-truncated to 16 hex chars.  Any field change, including inside
    ``method_kwargs``, changes the hash.
    """
    payload = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def sweep(
    base_spec: ExperimentSpec,
    grid: Mapping[str, Iterable[Any]],
    method_kwargs: Mapping[str, dict[str, Any]] | None = None,
    codec_kwargs: Mapping[str, dict[str, Any]] | None = None,
    fault_kwargs: Mapping[str, dict[str, Any]] | None = None,
    transport_kwargs: Mapping[str, dict[str, Any]] | None = None,
) -> list[ExperimentSpec]:
    """Expand a Cartesian grid of field overrides into concrete specs.

    ``grid`` maps :class:`ExperimentSpec` field names to value lists; the
    product is enumerated in the given key order (last key fastest).
    ``method_kwargs`` optionally maps a method name to extra kwargs merged
    into each matching spec's ``method_kwargs`` — the way FedHiSyn gets its
    ``num_classes`` while the baselines take none.  ``codec_kwargs`` and
    ``fault_kwargs`` do the same per codec / fault-model name, so ``--grid
    codec=none,topk`` can carry a top-k fraction that only lands on the
    topk cells and ``--grid faults=none,byzantine`` a byzantine fraction
    that only lands on the byzantine cells.  ``transport_kwargs`` follows
    the same rule per backend name, so ``--grid transport=sim,live`` can
    carry a worker count that only lands on the live cells.

    Every expanded spec re-runs ``__post_init__`` validation, so an invalid
    grid value fails here rather than mid-campaign.
    """
    spec_fields = {f.name for f in fields(ExperimentSpec)}
    unknown = sorted(set(grid) - spec_fields)
    if unknown:
        raise ValueError(
            f"unknown ExperimentSpec field(s) in grid: {unknown}"
        )
    names = list(grid)
    value_lists = [list(grid[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ValueError(f"grid axis {name!r} is empty")
    method_kwargs = dict(method_kwargs or {})
    codec_kwargs = dict(codec_kwargs or {})
    fault_kwargs = dict(fault_kwargs or {})
    transport_kwargs = dict(transport_kwargs or {})

    specs: list[ExperimentSpec] = []
    for combo in itertools.product(*value_lists):
        overrides: dict[str, Any] = dict(zip(names, combo))
        merged = dict(base_spec.to_dict(), **overrides)
        # The base spec's method_kwargs belong to the base *method*: when
        # the grid swaps the method, they would be rejected by the other
        # method's config class, so they only survive on the base method.
        if "method" in names and "method_kwargs" not in names:
            if merged["method"] != base_spec.method:
                merged["method_kwargs"] = {}
        # Same for codec kwargs: a topk fraction makes no sense on the
        # "none" cell of a --grid codec=none,topk axis.
        if "codec" in names and "codec_kwargs" not in names:
            if merged["codec"] != base_spec.codec:
                merged["codec_kwargs"] = {}
        # And for fault kwargs: a byzantine fraction makes no sense on the
        # "crash" cell of a --grid faults=crash,byzantine axis.
        if "faults" in names and "fault_kwargs" not in names:
            if merged["faults"] != base_spec.faults:
                merged["fault_kwargs"] = {}
        # And for transport kwargs: a live worker count makes no sense on
        # the "sim" cell of a --grid transport=sim,live axis.
        if "transport" in names and "transport_kwargs" not in names:
            if merged["transport"] != base_spec.transport:
                merged["transport_kwargs"] = {}
        extra = method_kwargs.get(merged["method"])
        if extra:
            merged["method_kwargs"] = {**merged["method_kwargs"], **extra}
        extra_codec = codec_kwargs.get(merged["codec"])
        if extra_codec:
            merged["codec_kwargs"] = {**merged["codec_kwargs"], **extra_codec}
        extra_fault = fault_kwargs.get(merged["faults"])
        if extra_fault:
            merged["fault_kwargs"] = {**merged["fault_kwargs"], **extra_fault}
        extra_transport = transport_kwargs.get(merged["transport"])
        if extra_transport:
            merged["transport_kwargs"] = {
                **merged["transport_kwargs"], **extra_transport
            }
        specs.append(ExperimentSpec.from_dict(merged))
    return specs


def _run_spec_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: spec dict in, result dict out.

    Module-level so ProcessPoolExecutor can pickle it; dict-in/dict-out so
    the wire format is exactly the JSON cache format.
    """
    spec = ExperimentSpec.from_dict(payload)
    return run_experiment(spec).to_dict()


@dataclass(frozen=True)
class CampaignEntry:
    """One campaign cell: the spec, its result, and whether it was cached."""

    spec: ExperimentSpec
    result: RunResult
    cached: bool


class Campaign:
    """A batch of experiment specs plus how to execute them.

    ``cache_dir=None`` disables the on-disk cache (every run executes);
    otherwise each finished run is written to ``<cache_dir>/<hash>.json``
    and later campaigns containing the same spec load it back instead of
    re-training.
    """

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        cache_dir: str | Path | None = None,
    ) -> None:
        if not specs:
            raise ValueError("campaign needs at least one spec")
        self.specs = list(specs)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    # ------------------------------------------------------------- caching

    def _cache_path(self, spec: ExperimentSpec) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{spec_hash(spec)}.json"

    def _load_cached(self, spec: ExperimentSpec) -> RunResult | None:
        if self.cache_dir is None:
            return None
        path = self._cache_path(spec)
        if not path.exists():
            return None
        try:
            with path.open("r", encoding="utf-8") as fh:
                data = json.load(fh)
            return RunResult.from_dict(data["result"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A torn or stale cache file is a miss, not a crash.
            return None

    def _store(self, spec: ExperimentSpec, result: RunResult) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._cache_path(spec)
        # pid-unique tmp name: campaigns sharing a cache dir may finish the
        # same spec concurrently, and each needs its own staging file for
        # the rename to stay atomic.
        tmp = path.with_suffix(f".json.tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump({"spec": spec.to_dict(), "result": result.to_dict()}, fh)
        tmp.replace(path)  # atomic: concurrent readers never see a torn file

    # ----------------------------------------------------------- execution

    def run(
        self,
        workers: int = 1,
        progress: Callable[[str], None] | None = None,
    ) -> "CampaignResult":
        """Execute every spec (cache-first) and collect the results.

        ``workers > 1`` fans the uncached specs out to a process pool;
        ``progress`` (e.g. ``print``) receives one line per completed cell.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        notify = progress if progress is not None else (lambda _msg: None)

        entries: dict[int, CampaignEntry] = {}
        pending: list[int] = []
        done = 0  # completion counter, monotonic regardless of cache order
        for i, spec in enumerate(self.specs):
            cached = self._load_cached(spec)
            if cached is not None:
                entries[i] = CampaignEntry(spec, cached, cached=True)
                done += 1
                notify(f"[{done}/{len(self.specs)}] {self._label(spec)}: cached")
            else:
                pending.append(i)

        if pending:
            payloads = [self.specs[i].to_dict() for i in pending]
            if workers == 1:
                result_dicts = map(_run_spec_payload, payloads)
            else:
                pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
                result_dicts = pool.map(_run_spec_payload, payloads)
            try:
                for i, result_dict in zip(pending, result_dicts):
                    result = RunResult.from_dict(result_dict)
                    self._store(self.specs[i], result)
                    entries[i] = CampaignEntry(self.specs[i], result, cached=False)
                    done += 1
                    notify(
                        f"[{done}/{len(self.specs)}] {self._label(self.specs[i])}: "
                        f"final acc {result.final_accuracy:.4f}"
                    )
            finally:
                if workers > 1:
                    pool.shutdown()

        return CampaignResult([entries[i] for i in range(len(self.specs))])

    @staticmethod
    def _label(spec: ExperimentSpec) -> str:
        # Device count (or the fleet profile that pinned it) matters at
        # fleet scale: a grid over fleet_profile produces runs that differ
        # in nothing else, so the progress line must tell them apart.
        scale = spec.fleet_profile or f"n{spec.num_devices}"
        return f"{spec.method}/{spec.dataset}/{scale}/seed{spec.seed}"


class CampaignResult:
    """Ordered campaign outcomes plus seed-aggregation and rendering."""

    def __init__(self, entries: Sequence[CampaignEntry]) -> None:
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def results(self) -> list[RunResult]:
        return [e.result for e in self.entries]

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.entries if e.cached)

    # -------------------------------------------------------- aggregation

    def varying_fields(self) -> list[str]:
        """Spec fields (other than ``seed``) that differ across the campaign.

        ``method_kwargs`` only counts as varying when it differs *within* a
        method — across methods it just mirrors the ``method`` column
        (FedHiSyn takes ``num_classes``, the baselines take nothing).
        ``codec_kwargs`` gets the same treatment per codec.
        """
        names = [f.name for f in fields(ExperimentSpec) if f.name != "seed"]
        kwargs_of = {"method_kwargs": "method", "codec_kwargs": "codec"}
        varying = []
        for name in names:
            entries = self.entries
            if name in kwargs_of:
                owner = kwargs_of[name]
                by_owner: dict[str, set[str]] = {}
                for e in entries:
                    key = json.dumps(getattr(e.spec, name), sort_keys=True, default=str)
                    by_owner.setdefault(getattr(e.spec, owner), set()).add(key)
                if any(len(v) > 1 for v in by_owner.values()):
                    varying.append(name)
                continue
            values = {
                json.dumps(getattr(e.spec, name), sort_keys=True, default=str)
                for e in entries
            }
            if len(values) > 1:
                varying.append(name)
        return varying

    def aggregate(self, target: float | None = None) -> list[dict[str, Any]]:
        """Group runs differing only in ``seed``; report mean±std per group.

        Each row carries the group's distinguishing spec fields, the seed
        count, final/best accuracy statistics and — when ``target`` is
        given — the mean relative cost-to-target over the seeds that
        reached it (``None`` if no seed did).
        """
        group_fields = self.varying_fields()
        groups: dict[str, dict[str, Any]] = {}
        for entry in self.entries:
            spec_dict = entry.spec.to_dict()
            spec_dict.pop("seed")
            key = json.dumps(spec_dict, sort_keys=True, default=str)
            groups.setdefault(key, {"entries": []})["entries"].append(entry)

        rows: list[dict[str, Any]] = []
        for group in groups.values():
            entries: list[CampaignEntry] = group["entries"]
            finals = [e.result.final_accuracy for e in entries]
            bests = [e.result.best_accuracy for e in entries]
            row: dict[str, Any] = {
                name: getattr(entries[0].spec, name) for name in group_fields
            }
            row["seeds"] = len(entries)
            row["final_mean"] = _mean(finals)
            row["final_std"] = _std(finals)
            row["best_mean"] = _mean(bests)
            row["best_std"] = _std(bests)
            # On-wire traffic (exact bytes through the codec); absent from
            # results cached before the transport snapshot existed.
            wire = [
                e.result.transport.get("wire_bytes")
                for e in entries
                if e.result.transport.get("wire_bytes") is not None
            ]
            row["wire_bytes_mean"] = _mean(wire) if wire else None
            if target is not None:
                costs = [e.result.cost_to_target(target) for e in entries]
                reached = [c for c in costs if c is not None]
                row["cost_mean"] = _mean(reached) if reached else None
                row["cost_reached"] = len(reached)
                times = [e.result.time_to_target(target) for e in entries]
                t_reached = [t for t in times if t is not None]
                row["vtime_mean"] = _mean(t_reached) if t_reached else None
                row["vtime_reached"] = len(t_reached)
            rows.append(row)
        return rows

    # ---------------------------------------------------------- rendering

    def to_table(self, target: float | None = None, title: str | None = None) -> str:
        """Aggregated mean±std table via :func:`repro.utils.tables.format_table`."""
        group_fields = self.varying_fields()
        rows = self.aggregate(target=target)
        show_wire = any(row["wire_bytes_mean"] is not None for row in rows)
        headers = [*group_fields, "seeds", "final acc", "best acc"]
        if show_wire:
            headers.append("wire MB")
        if target is not None:
            headers.append(f"cost@{target:.0%}")
            headers.append(f"vtime@{target:.0%}")
        table_rows = []
        for row in rows:
            cells: list[Any] = [row[name] for name in group_fields]
            cells.append(row["seeds"])
            cells.append(_pm(row["final_mean"], row["final_std"], row["seeds"]))
            cells.append(_pm(row["best_mean"], row["best_std"], row["seeds"]))
            if show_wire:
                mb = row["wire_bytes_mean"]
                cells.append("?" if mb is None else f"{mb / 1e6:.2f}")
            if target is not None:
                if row["cost_mean"] is None:
                    cells.append("X")
                else:
                    cells.append(
                        f"{row['cost_mean']:.1f} "
                        f"({row['cost_reached']}/{row['seeds']} seeds)"
                    )
                if row["vtime_mean"] is None:
                    cells.append("X")
                else:
                    cells.append(f"{row['vtime_mean']:.2f}")
            table_rows.append(cells)
        return format_table(headers, table_rows, title=title)

    def to_json(self, target: float | None = None) -> str:
        """Aggregated rows as a JSON document (the CLI's ``--json`` output)."""
        return json.dumps(self.aggregate(target=target), indent=2)


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    m = _mean(values)
    return (sum((v - m) ** 2 for v in values) / len(values)) ** 0.5


def _pm(mean: float, std: float, n: int) -> str:
    if n <= 1:
        return f"{mean:.4f}"
    return f"{mean:.4f} ±{std:.4f}"
