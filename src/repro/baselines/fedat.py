"""FedAT baseline (Chai et al., SC'21): synchronous tiers, asynchronous
cross-tier updates.

Devices are clustered into ``num_tiers`` capacity tiers (same 1-D k-means
the paper's own framework uses).  A tier runs an internal synchronous
FedAvg round that lasts as long as its *own* slowest member — so fast
tiers complete several tier-rounds while the slowest completes one.  Each
tier-round uploads a tier model, and the server rebuilds the global model
as a cross-tier weighted average that favours *less frequently updating*
(slower) tiers, FedAT's inverse-frequency compensation for update-rate
bias.

Tier identity is **stable across rounds**: the fleet is clustered once at
construction (unit times never change), and each round's participants are
grouped by their fixed tier.  Clustering the per-round participant list
instead — as the seed code did — made "tier m" mean a different device
population from round to round under partial participation, silently
averaging unrelated models in ``_tier_models``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import sample_weighted_average, weighted_average
from repro.core.clustering import cluster_by_capacity
from repro.core.registry import register_method
from repro.core.server import FederatedServer, ServerConfig
from repro.device.device import Device
from repro.simulation.engine import async_upload_schedule

__all__ = ["FedATConfig", "FedATServer"]


@dataclass
class FedATConfig(ServerConfig):
    """``num_tiers``: number of capacity tiers (FedAT's M)."""

    num_tiers: int = 5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_tiers <= 0:
            raise ValueError(f"num_tiers must be positive, got {self.num_tiers}")


@register_method(
    "fedat",
    config=FedATConfig,
    description="capacity tiers: synchronous inside, asynchronous across",
)
class FedATServer(FederatedServer):
    method = "fedat"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Fixed fleet-wide tier assignment (tier 0 = fastest).  Keying the
        # cross-round tier state by this stable id — not by the index of a
        # per-round re-clustering — is what keeps ``_tier_models[m]`` the
        # history of one device population under partial participation.
        # The assignment is computed from the population's unit-time
        # *array* (no per-device objects) and kept both as a dense array
        # (``tier_of[device_id]``, the fleet-scale lookup) and as the
        # ``device_tier`` dict the original API exposed.
        num_tiers = getattr(self.config, "num_tiers", 5)
        n = len(self.devices)
        if self.fleet is not None:
            times = self._unit_times
            ids = self.fleet.device_ids
        else:
            times = np.array([d.unit_time for d in self.devices])
            ids = np.fromiter(
                (d.device_id for d in self.devices), dtype=np.intp, count=n
            )
        classes = cluster_by_capacity(times, min(num_tiers, n))
        tiers = np.empty(n, dtype=np.intp)
        for tier_idx, members in enumerate(classes):
            tiers[members] = tier_idx
        self.tier_of = tiers  # position-aligned with the population arrays
        self.device_tier: dict[int, int] = {
            int(dev_id): int(t) for dev_id, t in zip(ids, tiers)
        }
        self._tier_models: dict[int, np.ndarray] = {}
        self._tier_update_counts: dict[int, int] = {}

    def _cross_tier_average(self, fallback: np.ndarray) -> np.ndarray:
        """Weighted average of tier models, favouring slow tiers.

        Weight of tier m is ``1 + max_count - count_m`` so the least
        frequently updated tier weighs the most (FedAT Section 3.2's
        inverse-frequency idea in its simplest monotone form).
        """
        if not self._tier_models:
            return fallback
        tiers = sorted(self._tier_models)
        counts = np.array([self._tier_update_counts[t] for t in tiers], dtype=float)
        weights = 1.0 + counts.max() - counts
        stack = np.stack([self._tier_models[t] for t in tiers])
        return weighted_average(stack, weights)

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        cfg: FedATConfig = self.config  # type: ignore[assignment]
        duration = self.round_duration(participants)
        # Register this round's weight rows up front so every tier-round
        # result snapshots into recycled fleet storage, not into
        # per-device allocations that outlive the round.
        self.register_round(participants)

        # This round's participants grouped by their stable tier, in
        # participant order; absent tiers simply run no tier-round.  With
        # a fleet, ids equal positions, so the dense array resolves the
        # whole participant list in one gather.
        members_by_tier: dict[int, list[Device]] = {}
        if self.fleet is not None:
            tiers = self.tier_of[self.ids_of(participants)].tolist()
            for dev, tier in zip(participants, tiers):
                members_by_tier.setdefault(tier, []).append(dev)
        else:
            for dev in participants:
                members_by_tier.setdefault(
                    self.device_tier[dev.device_id], []
                ).append(dev)

        current = global_weights
        # Tier-round completion times over this reporting round: tier m
        # finishes a tier-round every max-unit-time-in-tier (among the
        # members actually present this round).
        tier_span = {
            t: float(max(d.unit_time for d in members))
            for t, members in members_by_tier.items()
        }
        schedule = async_upload_schedule(tier_span, duration)

        unit_counter = {d.device_id: 0 for d in participants}
        for _time, tier_idx in schedule:
            members = members_by_tier[tier_idx]
            # Tier-synchronous FedAvg round from the current global model
            # (the decoded broadcast view when a codec is active).
            receivers, tier_view = self.broadcast_model(
                members, current, ensure_one=False
            )
            if not receivers:
                continue  # every pull lost: the tier idles this slot
            stack = np.empty((len(receivers), self.trainer.dim))
            for i, dev in enumerate(receivers):
                dev.run_unit(
                    tier_view,
                    cfg.local_epochs,
                    round_idx,
                    unit_counter[dev.device_id],
                    out=stack[i],
                )
                unit_counter[dev.device_id] += 1
            arrived, stack = self.collect_models(
                receivers, stack, reference=tier_view, ensure_one=False
            )
            if not arrived:
                continue  # every upload lost: no tier model this slot
            counts = self.counts_of(receivers)
            stack, counts = self.filter_arrived(arrived, stack, counts)
            self._tier_models[tier_idx] = sample_weighted_average(stack, counts)
            self._tier_update_counts[tier_idx] = (
                self._tier_update_counts.get(tier_idx, 0) + 1
            )
            current = self._cross_tier_average(current)

        self.clock.advance_by(duration)
        return current
