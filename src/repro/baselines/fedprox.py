"""FedProx baseline.

FedAvg's round structure (heterogeneous devices run however many epochs fit
in the round) plus a proximal term ``(mu/2) ||w - w_global||^2`` in every
device objective, which bounds how far partial/extended local work can
drift from the round-start model (Section 2.2/6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fedavg import FedAvgServer
from repro.core.aggregation import sample_weighted_average
from repro.core.registry import register_method
from repro.core.server import ServerConfig
from repro.device.device import Device
from repro.utils.config import validate_non_negative

__all__ = ["FedProxConfig", "FedProxServer"]


@dataclass
class FedProxConfig(ServerConfig):
    """``mu``: strength of the proximal pull toward the round-start model."""

    mu: float = 0.01

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_non_negative(self.mu, "mu")


@register_method(
    "fedprox",
    config=FedProxConfig,
    description="FedAvg plus a proximal term toward the round-start model",
)
class FedProxServer(FedAvgServer):
    method = "fedprox"

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        cfg: FedProxConfig = self.config  # type: ignore[assignment]
        duration = self.round_duration(participants)
        receivers, view = self.broadcast_model(participants, global_weights)
        epochs = self.epochs_for(receivers, duration)
        stack = self.round_rows(receivers)
        # The proximal anchor is the model devices received — the decoded
        # broadcast under a lossy codec, global_weights itself otherwise.
        self.train_round(stack=stack, receivers=receivers, epochs=epochs,
                         round_idx=round_idx, global_weights=view,
                         anchor=view, mu=cfg.mu)
        arrived, stack = self.collect_models(receivers, stack, reference=view)
        arrived, stack = self.charge_round(
            round_idx, receivers, duration, stack, arrived
        )
        counts = self.counts_of(receivers)
        stack, counts = self.filter_arrived(arrived, stack, counts)
        return sample_weighted_average(stack, counts)
