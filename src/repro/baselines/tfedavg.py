"""TFedAvg baseline: strictly synchronous FedAvg.

Every participant performs exactly one local-training unit (the paper's 5
epochs) and then idles until the slowest finishes; the server aggregates
once per round with sample-count weights.  This is the straggler-bound
configuration that motivates the whole paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import sample_weighted_average
from repro.core.registry import register_method
from repro.core.server import FederatedServer, ServerConfig
from repro.device.device import Device

__all__ = ["TFedAvgConfig", "TFedAvgServer"]


@dataclass
class TFedAvgConfig(ServerConfig):
    """TFedAvg has no extra hyper-parameters beyond the shared ones."""


@register_method(
    "tfedavg",
    config=TFedAvgConfig,
    description="strictly synchronous FedAvg: the server waits for the slowest",
)
class TFedAvgServer(FederatedServer):
    method = "tfedavg"

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        duration = self.round_duration(participants)  # wait for the straggler
        receivers, view = self.broadcast_model(participants, global_weights)
        stack = self.round_rows(receivers)
        epochs = np.full(len(receivers), self.config.local_epochs)
        self.train_round(stack=stack, receivers=receivers, epochs=epochs,
                         round_idx=round_idx, global_weights=view)
        arrived, stack = self.collect_models(receivers, stack, reference=view)
        self.clock.advance_by(duration)
        counts = self.counts_of(receivers)
        stack, counts = self.filter_arrived(arrived, stack, counts)
        return sample_weighted_average(stack, counts)
