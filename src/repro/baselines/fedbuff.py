"""FedBuff (Nguyen et al., 2022): buffered asynchronous aggregation.

Uploads accumulate in a server-side buffer as model *deltas* (trained
minus the model the device actually started from).  When the buffer
reaches its goal size K the server applies one aggregated step,

    w <- w + eta_g * sum_i(s_i * delta_i) / sum_i(s_i),

with per-entry staleness weights ``s_i = decay(staleness_i)`` — stale
updates leak through the same ``constant`` / ``polynomial`` / ``hinge``
hooks FedAsync uses, rather than being discarded.  Between flushes the
server still replies to every upload with the current global model, so
devices keep training near-fresh models while the buffer fills.

Buffering trades FedAsync's per-upload reactivity for an update whose
noise averages over K devices — the configuration that dominates
time-to-accuracy under heavy heterogeneity (fast devices fill the buffer
while stragglers would still be holding a synchronous round's barrier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.async_server import AsyncFederatedServer, AsyncServerConfig
from repro.core.registry import register_method
from repro.utils.config import validate_positive

__all__ = ["FedBuffConfig", "FedBuffServer"]


@dataclass
class FedBuffConfig(AsyncServerConfig):
    """``buffer_goal``: uploads per aggregation (FedBuff's K);
    ``global_lr``: server step size on the buffered mean delta."""

    buffer_goal: int = 10
    global_lr: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.buffer_goal <= 0:
            raise ValueError(
                f"buffer_goal must be positive, got {self.buffer_goal}"
            )
        validate_positive(self.global_lr, "global_lr")


@register_method(
    "fedbuff",
    config=FedBuffConfig,
    description="async FL with a K-sized aggregation buffer and staleness leak",
)
class FedBuffServer(AsyncFederatedServer):
    method = "fedbuff"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # (delta, staleness_weight) pairs awaiting the next flush.
        self._buffer: list[tuple[np.ndarray, float]] = []

    def apply_upload(
        self, dev_id: int, trained: np.ndarray, base: np.ndarray, staleness: int
    ) -> bool:
        cfg: FedBuffConfig = self.config  # type: ignore[assignment]
        self._buffer.append((trained - base, self.mix_weight(staleness)))
        # The flush goal shrinks to the unsuspected cohort size so the
        # buffer never waits on devices the failure detector parked.
        if len(self._buffer) < self.live_target(cfg.buffer_goal):
            return False
        total = sum(weight for _, weight in self._buffer)
        delta = sum(weight * d for d, weight in self._buffer) / total
        # Replace, never mutate: in-flight broadcast payloads alias the
        # previous global vector.
        self.global_weights = self.global_weights + cfg.global_lr * delta
        self._buffer.clear()
        self._version += 1
        return True
