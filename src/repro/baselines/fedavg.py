"""FedAvg baseline.

The paper runs FedAvg "in an asynchronous setting": the server collects
weights at regular intervals (one round = the slowest participant's unit
time), so a fast device fits several local-training units into the round
while a slow one fits exactly one — "devices with more computing power are
able to do more rounds of local training" (Section 6.1).  Aggregation is
the classic sample-count weighting (Eq. 3) by default; the ``aggregator``
config swaps in the robust rules from :mod:`repro.core.aggregation`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import (
    AGGREGATORS,
    coordinate_median,
    krum,
    multi_krum,
    sample_weighted_average,
    trimmed_mean,
    uniform_average,
)
from repro.core.registry import register_method
from repro.core.server import FederatedServer, ServerConfig
from repro.device.device import Device

__all__ = ["FedAvgConfig", "FedAvgServer"]


@dataclass
class FedAvgConfig(ServerConfig):
    """FedAvg's only knob beyond the shared ones is the aggregation rule."""

    #: One of :data:`repro.core.aggregation.AGGREGATORS`; "sample" is the
    #: paper's Eq. 3 weighting, "median"/"trimmed_mean"/"krum"/"multi_krum"
    #: the robust rules.
    aggregator: str = "sample"
    #: Per-tail trim fraction when ``aggregator="trimmed_mean"``.
    trim_fraction: float = 0.1
    #: Byzantine bound f for krum/multi_krum; None derives the classic
    #: maximum the guarantee supports, ``floor((n - 3) / 2)`` of the
    #: arrived stack.
    krum_malicious: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"aggregator must be one of {AGGREGATORS}, got {self.aggregator!r}"
            )
        if self.krum_malicious is not None and self.krum_malicious < 0:
            raise ValueError(
                f"krum_malicious must be >= 0, got {self.krum_malicious}"
            )


@register_method(
    "fedavg",
    config=FedAvgConfig,
    description="asynchronous-setting FedAvg: fast devices fit extra epochs",
)
class FedAvgServer(FederatedServer):
    method = "fedavg"

    def aggregate_stack(self, stack: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Apply the configured aggregation rule to the arrived stack."""
        agg = getattr(self.config, "aggregator", "sample")
        if agg == "uniform":
            return uniform_average(stack)
        if agg == "median":
            return coordinate_median(stack)
        if agg == "trimmed_mean":
            return trimmed_mean(stack, getattr(self.config, "trim_fraction", 0.1))
        if agg in ("krum", "multi_krum"):
            f = getattr(self.config, "krum_malicious", None)
            if f is None:
                f = max((len(stack) - 3) // 2, 0)
            if agg == "krum":
                return krum(stack, f)
            return multi_krum(stack, f)
        return sample_weighted_average(stack, counts)

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        duration = self.round_duration(participants)
        # ``view`` is the model devices actually receive — global_weights
        # itself under the identity codec, the decoded broadcast otherwise.
        receivers, view = self.broadcast_model(participants, global_weights)
        epochs = self.epochs_for(receivers, duration)
        # In recycled-fleet mode these rows double as the devices' weight
        # rows: each unit trains straight into fleet state, no per-device
        # result copy, and the stack feeds aggregation as-is.
        stack = self.round_rows(receivers)
        self.train_round(stack=stack, receivers=receivers, epochs=epochs,
                         round_idx=round_idx, global_weights=view)
        arrived, stack = self.collect_models(receivers, stack, reference=view)
        # Fault/deadline-aware round close: on the fast path this is
        # exactly clock.advance_by(duration); with faults armed it draws
        # the round's completion delays, corrupts byzantine uploads and
        # cuts stragglers at the configured deadline.
        arrived, stack = self.charge_round(
            round_idx, receivers, duration, stack, arrived
        )
        counts = self.counts_of(receivers)
        stack, counts = self.filter_arrived(arrived, stack, counts)
        return self.aggregate_stack(stack, counts)
