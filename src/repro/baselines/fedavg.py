"""FedAvg baseline.

The paper runs FedAvg "in an asynchronous setting": the server collects
weights at regular intervals (one round = the slowest participant's unit
time), so a fast device fits several local-training units into the round
while a slow one fits exactly one — "devices with more computing power are
able to do more rounds of local training" (Section 6.1).  Aggregation is
the classic sample-count weighting (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import sample_weighted_average
from repro.core.registry import register_method
from repro.core.server import FederatedServer, ServerConfig
from repro.device.device import Device

__all__ = ["FedAvgConfig", "FedAvgServer"]


@dataclass
class FedAvgConfig(ServerConfig):
    """FedAvg has no extra hyper-parameters beyond the shared ones."""


@register_method(
    "fedavg",
    config=FedAvgConfig,
    description="asynchronous-setting FedAvg: fast devices fit extra epochs",
)
class FedAvgServer(FederatedServer):
    method = "fedavg"

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        duration = self.round_duration(participants)
        receivers = self.broadcast(participants)
        epochs = self.epochs_for(receivers, duration)
        # In recycled-fleet mode these rows double as the devices' weight
        # rows: each unit trains straight into fleet state, no per-device
        # result copy, and the stack feeds aggregation as-is.
        stack = self.round_rows(receivers)
        self.train_round(stack=stack, receivers=receivers, epochs=epochs,
                         round_idx=round_idx, global_weights=global_weights)
        arrived = self.collect(receivers)
        self.clock.advance_by(duration)
        counts = self.counts_of(receivers)
        stack, counts = self.filter_arrived(arrived, stack, counts)
        return sample_weighted_average(stack, counts)
