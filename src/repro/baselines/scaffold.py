"""SCAFFOLD baseline (Karimireddy et al., 2020).

Synchronous rounds with control variates: each device SGD step uses the
corrected gradient ``g + c - c_i`` where ``c`` is the server variate and
``c_i`` the device's.  After local training the device refreshes its
variate with SCAFFOLD's "option II",

    c_i+ = c_i - c + (x - y_i) / (K * eta),

and the server applies

    x   += (lr_g / |S|) * sum_i (y_i - x)
    c   += (|S| / N)    * mean_i (c_i+ - c_i).

Every device<->server transfer carries the model *and* a variate, so the
meter records two model units per transfer — the paper halves SCAFFOLD's
reported rounds for the same reason (Section 6.1, Metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.registry import register_method
from repro.core.server import FederatedServer, ServerConfig
from repro.device.device import Device
from repro.device.fleet import FleetState
from repro.utils.config import validate_positive

__all__ = ["ScaffoldConfig", "ScaffoldServer"]


@dataclass
class ScaffoldConfig(ServerConfig):
    """``global_lr``: server step size on the aggregated model delta."""

    global_lr: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_positive(self.global_lr, "global_lr")


@register_method(
    "scaffold",
    config=ScaffoldConfig,
    description="synchronous control variates; each transfer costs 2 model units",
)
class ScaffoldServer(FederatedServer):
    method = "scaffold"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        dim = self.trainer.dim
        self.server_variate = np.zeros(dim)
        # Control variates live in a fleet-owned lazy state pool keyed by
        # stable device id: an idle device costs nothing (reads resolve to
        # one shared zeros row), a deselected-then-reselected device finds
        # its variate untouched, and the mapping interface keeps the old
        # ``dict[int, ndarray]`` surface.
        self.device_variates = FleetState(len(self.devices), dim)
        # Reusable buffer for the per-device corrected-gradient term c - c_i;
        # the trainer only reads it while training that device.
        self._correction = np.empty(dim)

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        cfg: ScaffoldConfig = self.config  # type: ignore[assignment]
        duration = self.round_duration(participants)
        eta = self.trainer.lr

        # Broadcast model + server variate: 2 model units per participant.
        # Only the model goes through the codec; the variate rides along
        # dense as one extra unit (server state, not a model update).
        receivers, view = self.broadcast_model(
            participants, global_weights, extra_units=1.0
        )

        # Per-device updates are staged and only summed for the uploads
        # that reach the server; a device whose upload is lost still keeps
        # its locally refreshed variate (it did the training).  Trained
        # models land in the round's fleet rows (`out=`), so device state
        # costs no extra copies.
        rows = self.round_rows(receivers)
        live = self.rows_live  # trained rows already are device state
        epochs = self.epochs_for(receivers, duration)
        if self.batched_trainer is not None:
            variate_deltas = self._run_round_batched(
                receivers, rows, live, epochs, round_idx, view, eta
            )
        else:
            variate_deltas = []
            for i, dev in enumerate(receivers):
                c_i = self.device_variates[dev.device_id]
                correction = np.subtract(
                    self.server_variate, c_i, out=self._correction
                )
                y_i, steps = self.trainer.train(
                    view,
                    dev.shard,
                    int(epochs[i]),
                    stream_key=(dev.device_id, round_idx, 0),
                    correction=correction,
                    out=rows[i],
                )
                if not live:
                    dev.weights = y_i
                # Option II variate refresh, anchored on the received model.
                c_plus = c_i - self.server_variate + (view - y_i) / (steps * eta)
                variate_deltas.append(c_plus - c_i)
                self.device_variates.set(dev.device_id, c_plus)

        arrived, decoded = self.collect_models(
            receivers, rows, reference=view, extra_units=1.0
        )
        self.clock.advance_by(duration)

        delta_model = np.zeros_like(global_weights)
        delta_variate = np.zeros_like(self.server_variate)
        for i in arrived:
            delta_model += decoded[i] - view
            delta_variate += variate_deltas[i]
        s = len(arrived)
        new_global = global_weights + cfg.global_lr * delta_model / s
        self.server_variate = self.server_variate + delta_variate / len(self.devices)
        return new_global

    def _run_round_batched(
        self,
        receivers: list[Device],
        rows: np.ndarray,
        live: bool,
        epochs: np.ndarray,
        round_idx: int,
        view: np.ndarray,
        eta: float,
    ) -> np.ndarray:
        """The per-device training loop of :meth:`run_round` as matrix math.

        Stacks the receivers' control variates, hands the corrections to the
        batched engine as one ``(P, dim)`` matrix, and performs the option-II
        variate refresh as whole-matrix ops.  Row ``i`` of every intermediate
        sees exactly the float ops the sequential loop applies to receiver
        ``i``, so the two paths agree wherever stacked GEMMs are exact.
        """
        ids = self.ids_of(receivers)
        c_stack = np.empty((len(receivers), self.trainer.dim))
        for i, dev_id in enumerate(ids.tolist()):
            np.copyto(c_stack[i], self.device_variates[dev_id])
        corrections = np.subtract(self.server_variate, c_stack)
        steps = self.batched_trainer.train_round(
            ids, epochs, round_idx, view, out=rows, corrections=corrections
        )
        if not live:
            for i, dev in enumerate(receivers):
                dev.weights = rows[i]
        denom = steps.astype(np.float64) * eta
        c_plus = c_stack - self.server_variate + (view - rows) / denom[:, None]
        variate_deltas = c_plus - c_stack
        for i, dev_id in enumerate(ids.tolist()):
            self.device_variates.set(dev_id, c_plus[i])
        return variate_deltas
