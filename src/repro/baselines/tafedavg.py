"""TAFedAvg baseline: fully asynchronous FedAvg.

"Each device uploads its local model to the server just after finishing its
own training process.  The server is responsible for accepting the new
models and aggregating them to the original model" (Section 6.1).

Within a reporting round of duration R, every upload event mixes the
device's model into the global with a constant rate ``alpha`` and the
server immediately returns the updated global to the device — so a fast
device cycles ~H times per round while a slow one cycles once, training on
increasingly *stale* views of the global model.  That staleness is exactly
the failure mode the paper observes at low participation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.registry import register_method
from repro.core.server import FederatedServer, ServerConfig
from repro.device.device import Device
from repro.simulation.engine import async_upload_schedule
from repro.utils.config import validate_fraction

__all__ = ["TAFedAvgConfig", "TAFedAvgServer"]


@dataclass
class TAFedAvgConfig(ServerConfig):
    """``alpha``: base server mixing rate per upload (FedAsync-style).

    ``staleness_exponent`` > 0 enables FedAsync's polynomial staleness
    damping [Xie et al. 2019, cited by the paper]: an upload computed
    against a global model that has since absorbed ``s`` other uploads is
    mixed with rate ``alpha * (1 + s) ** -staleness_exponent``, so stale
    contributions from slow devices move the global model less.
    """

    alpha: float = 0.1
    staleness_exponent: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_fraction(self.alpha, "alpha")
        if self.staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be >= 0, got {self.staleness_exponent}"
            )


@register_method(
    "tafedavg",
    config=TAFedAvgConfig,
    description="fully asynchronous FedAvg: immediate staleness-weighted mixing",
)
class TAFedAvgServer(FederatedServer):
    method = "tafedavg"

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        cfg: TAFedAvgConfig = self.config  # type: ignore[assignment]
        duration = self.round_duration(participants)
        self.register_round(participants)
        by_id = {d.device_id: d for d in participants}

        # Round start: every participant pulls the current global model; a
        # device whose pull is lost keeps training its previous weights.
        # Under a codec the pull delivers the decoded broadcast view.
        receivers, view0 = self.broadcast_model(participants, global_weights)
        views = self.start_views(participants, receivers, view0)
        local_view: dict[int, np.ndarray] = (
            views if isinstance(views, dict)
            else {d.device_id: view0 for d in participants}
        )
        unit_counter: dict[int, int] = {d.device_id: 0 for d in participants}
        # Server version counter for staleness: the version each device's
        # view was taken at, vs the version at its upload.
        version = 0
        view_version: dict[int, int] = {d.device_id: 0 for d in participants}

        schedule = async_upload_schedule(
            {d.device_id: d.unit_time for d in participants}, duration
        )
        current = global_weights
        for _time, dev_id in schedule:
            dev = by_id[dev_id]
            trained = dev.run_unit(
                local_view[dev_id],
                cfg.local_epochs,
                round_idx,
                unit_counter[dev_id],
            )
            unit_counter[dev_id] += 1
            arrived, uploaded = self.collect_models(
                [dev], trained.reshape(1, -1),
                reference=local_view[dev_id], ensure_one=False,
            )
            if not arrived:
                continue  # upload lost: the global model never sees it
            rate = cfg.alpha
            if cfg.staleness_exponent > 0:
                staleness = version - view_version[dev_id]
                rate = cfg.alpha * (1.0 + staleness) ** -cfg.staleness_exponent
            current = (1.0 - rate) * current + rate * uploaded[0]
            version += 1
            # Server replies with the fresh global; device trains it next
            # (a lost reply leaves the device on its stale view).
            delivered, reply = self.broadcast_model([dev], current, ensure_one=False)
            if delivered:
                local_view[dev_id] = reply
                view_version[dev_id] = version

        self.clock.advance_by(duration)
        return current
