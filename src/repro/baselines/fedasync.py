"""FedAsync (Xie et al., 2019): fully asynchronous staleness-weighted mixing.

Every arrived upload immediately moves the global model,

    w <- (1 - alpha_s) * w + alpha_s * w_device,
    alpha_s = alpha * decay(staleness),

where staleness counts the global versions absorbed since the device's
base model was dispatched, and ``decay`` is one of the shared
``constant`` / ``polynomial`` / ``hinge`` families.  Devices never wait:
they train continuously at their unit-time rates on whatever model is
freshest locally, so fast devices contribute often with low staleness and
stragglers contribute rarely with high staleness — which the decay damps.

This is the event-driven generalization of what :mod:`~repro.baselines.
tafedavg` approximates inside a reporting round: here arrivals follow the
environment's real per-link latencies and drops, and virtual time (not a
round counter) orders everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.async_server import AsyncFederatedServer, AsyncServerConfig
from repro.core.registry import register_method
from repro.utils.config import validate_fraction

__all__ = ["FedAsyncConfig", "FedAsyncServer"]


@dataclass
class FedAsyncConfig(AsyncServerConfig):
    """``alpha``: base mixing rate per upload, damped by the staleness
    decay (``staleness_decay`` / ``staleness_exponent`` / ``hinge_delay``
    from the shared async config)."""

    alpha: float = 0.3

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_fraction(self.alpha, "alpha")


@register_method(
    "fedasync",
    config=FedAsyncConfig,
    description="event-driven async FL: every upload mixes with staleness decay",
)
class FedAsyncServer(AsyncFederatedServer):
    method = "fedasync"

    def apply_upload(
        self, dev_id: int, trained: np.ndarray, base: np.ndarray, staleness: int
    ) -> bool:
        cfg: FedAsyncConfig = self.config  # type: ignore[assignment]
        rate = cfg.alpha * self.mix_weight(staleness)
        # Replace, never mutate: in-flight broadcast payloads alias the
        # previous global vector.
        self.global_weights = (1.0 - rate) * self.global_weights + rate * trained
        self._version += 1
        return True
