"""The paper's six comparison methods plus the event-driven async family.

All subclass :class:`repro.core.server.FederatedServer`, so they share
participant sampling, the virtual clock, transmission metering and
evaluation with FedHiSyn — only the round algorithm differs.

========== =============================================================
Method      One round (duration R = slowest participant's unit time)
========== =============================================================
FedAvg      every participant trains for the whole R (fast devices run
            more epochs), sample-weighted average (the paper's
            "asynchronous-setting FedAvg" description)
TFedAvg     strictly synchronous: exactly one training unit each, the
            server waits for the slowest
TAFedAvg    fully asynchronous: a device uploads after every unit, the
            server mixes it into the global model immediately
FedProx     FedAvg plus a proximal term toward the round-start model
FedAT       capacity tiers; synchronous inside a tier, tiers update the
            server asynchronously, cross-tier weighted aggregation
SCAFFOLD    synchronous control-variate correction; each transfer costs
            two model units (model + variate)
========== =============================================================

The asynchronous pair runs on the discrete-event scheduler instead of
rounds (``config.rounds`` counts server aggregations):

========== =============================================================
FedAsync    every arrived upload immediately mixes into the global model
            with rate ``alpha * decay(staleness)``
FedBuff     uploads buffer as staleness-weighted deltas; the server steps
            once per ``buffer_goal`` arrivals
========== =============================================================
"""

from repro.baselines.fedavg import FedAvgConfig, FedAvgServer
from repro.baselines.fedasync import FedAsyncConfig, FedAsyncServer
from repro.baselines.fedat import FedATConfig, FedATServer
from repro.baselines.fedbuff import FedBuffConfig, FedBuffServer
from repro.baselines.fedprox import FedProxConfig, FedProxServer
from repro.baselines.scaffold import ScaffoldConfig, ScaffoldServer
from repro.baselines.tafedavg import TAFedAvgConfig, TAFedAvgServer
from repro.baselines.tfedavg import TFedAvgConfig, TFedAvgServer
from repro.core.registry import method_entries

#: Derived from the registry (every import above has registered itself), so
#: a new baseline module added here shows up without a second hand-edit.
ALL_BASELINES = {
    entry.name: entry.server_cls
    for entry in method_entries()
    if entry.server_cls.__module__.startswith("repro.baselines.")
}

__all__ = [
    "FedAvgConfig",
    "FedAvgServer",
    "FedAsyncConfig",
    "FedAsyncServer",
    "FedBuffConfig",
    "FedBuffServer",
    "TFedAvgConfig",
    "TFedAvgServer",
    "TAFedAvgConfig",
    "TAFedAvgServer",
    "FedProxConfig",
    "FedProxServer",
    "FedATConfig",
    "FedATServer",
    "ScaffoldConfig",
    "ScaffoldServer",
    "ALL_BASELINES",
]
