"""Device-selection strategies.

The paper's Section 2.2 surveys selection-based answers to resource
heterogeneity — FedCS picks devices with sufficient compute, Oort favours
"excellent" devices — and argues they shrink the participant pool and lose
the data held by slow devices.  This module implements those strategies as
pluggable policies so the claim is testable against FedHiSyn's
keep-everyone-busy design (the ``selection`` ablation bench).

A policy maps (round index, devices, rng) to the participating subset.
:class:`~repro.core.server.FederatedServer` uses :class:`BernoulliSelection`
(the paper's per-device participation probability) by default.
"""

from __future__ import annotations

import numpy as np

from repro.device.device import Device
from repro.utils.config import validate_fraction

__all__ = [
    "SelectionPolicy",
    "BernoulliSelection",
    "FastestSelection",
    "DataSizeSelection",
    "SELECTION_POLICIES",
    "make_policy",
]


class SelectionPolicy:
    """Interface: pick this round's participants (never empty)."""

    def select(
        self,
        round_idx: int,
        devices: list[Device],
        rng: np.random.Generator,
    ) -> list[Device]:
        raise NotImplementedError

    @property
    def expected_fraction(self) -> float | None:
        """Expected fraction of the fleet participating per round.

        The server normalizes transfer costs by the transfers of one FedAvg
        round with this many participants (the Table 1 denominator), so a
        policy should say how many devices it typically admits.  ``None``
        (the default) makes the server fall back to its configured
        participation.
        """
        return None

    @staticmethod
    def _non_empty(
        chosen: list[Device], devices: list[Device], rng: np.random.Generator
    ) -> list[Device]:
        if chosen:
            return chosen
        return [devices[rng.integers(len(devices))]]


class BernoulliSelection(SelectionPolicy):
    """The paper's setting: each device joins with probability ``p``."""

    def __init__(self, participation: float) -> None:
        validate_fraction(participation, "participation")
        self.participation = participation

    @property
    def expected_fraction(self) -> float:
        return self.participation

    def select(self, round_idx, devices, rng):
        if self.participation >= 1.0:
            return list(devices)
        mask = rng.random(len(devices)) < self.participation
        chosen = [d for d, m in zip(devices, mask) if m]
        return self._non_empty(chosen, devices, rng)


class FastestSelection(SelectionPolicy):
    """FedCS-style: take the ``fraction`` of devices with the smallest unit
    time — maximal throughput, but slow devices' data never participates."""

    def __init__(self, fraction: float) -> None:
        validate_fraction(fraction, "fraction")
        self.fraction = fraction

    @property
    def expected_fraction(self) -> float:
        return self.fraction

    def select(self, round_idx, devices, rng):
        k = max(1, int(round(self.fraction * len(devices))))
        ranked = sorted(devices, key=lambda d: (d.unit_time, d.device_id))
        return ranked[:k]


class DataSizeSelection(SelectionPolicy):
    """Oort-flavoured utility sampling: inclusion probability proportional
    to the shard size (more data = more useful update), ``fraction`` of the
    fleet per round, without replacement."""

    def __init__(self, fraction: float) -> None:
        validate_fraction(fraction, "fraction")
        self.fraction = fraction

    @property
    def expected_fraction(self) -> float:
        return self.fraction

    def select(self, round_idx, devices, rng):
        k = max(1, int(round(self.fraction * len(devices))))
        sizes = np.array([d.num_samples for d in devices], dtype=np.float64)
        probs = sizes / sizes.sum()
        idx = rng.choice(len(devices), size=min(k, len(devices)),
                         replace=False, p=probs)
        return [devices[i] for i in sorted(idx)]


#: Name -> class map; ``ExperimentSpec.selection`` and the CLI's
#: ``--selection``/``list selections`` read from it.
SELECTION_POLICIES: dict[str, type[SelectionPolicy]] = {
    "bernoulli": BernoulliSelection,
    "fastest": FastestSelection,
    "datasize": DataSizeSelection,
}


def make_policy(name: str, fraction: float) -> SelectionPolicy:
    """Policy factory: 'bernoulli' (paper default), 'fastest', 'datasize'."""
    try:
        cls = SELECTION_POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown selection policy {name!r}; "
            f"known: {sorted(SELECTION_POLICIES)}"
        ) from None
    return cls(fraction)
