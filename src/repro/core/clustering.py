"""Capacity clustering: group devices by local-training time.

The paper clusters the devices selected each round into ``K`` classes with
k-means on the (scalar) time to complete local training (Section 4.1),
class 1 being the fastest.  One-dimensional k-means is solved here with
quantile initialization + Lloyd iterations — for 1-D data this converges in
a handful of passes and is deterministic given the input.

``equal_width_bins`` is provided as an ablation alternative.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kmeans_1d", "equal_width_bins", "cluster_by_capacity"]


def kmeans_1d(
    values: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-10,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means on scalars.

    Returns ``(labels, centers)`` with centers sorted ascending, so label 0
    is the cluster of smallest values.  ``k`` is clipped to the number of
    distinct values (extra clusters would be empty).
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot cluster an empty array")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    distinct = np.unique(values)
    k = min(k, distinct.size)

    # Quantile init over distinct values avoids duplicate/empty centers.
    qs = (np.arange(k) + 0.5) / k
    centers = np.quantile(distinct, qs)

    labels = np.zeros(values.size, dtype=np.intp)
    for _ in range(max_iter):
        # Assign: nearest center (vectorized over the n x k distance table).
        dist = np.abs(values[:, None] - centers[None, :])
        labels = dist.argmin(axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = values[labels == j]
            if members.size:
                new_centers[j] = members.mean()
        new_centers.sort()
        if np.max(np.abs(new_centers - centers)) < tol:
            centers = new_centers
            break
        centers = new_centers
    # Final assignment against sorted centers; relabel so 0 = smallest.
    dist = np.abs(values[:, None] - centers[None, :])
    labels = dist.argmin(axis=1)
    return labels, centers


def equal_width_bins(values: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Ablation: split the value range into ``k`` equal-width bins.

    Same return convention as :func:`kmeans_1d`; empty bins are allowed
    (their center is the bin midpoint).
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot bin an empty array")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    lo, hi = values.min(), values.max()
    if lo == hi or k == 1:
        return np.zeros(values.size, dtype=np.intp), np.array([(lo + hi) / 2.0])
    edges = np.linspace(lo, hi, k + 1)
    labels = np.clip(np.searchsorted(edges, values, side="right") - 1, 0, k - 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return labels.astype(np.intp), centers


def cluster_by_capacity(
    unit_times: np.ndarray,
    k: int,
    method: str = "kmeans",
) -> list[np.ndarray]:
    """Group device *positions* into capacity classes, fastest class first.

    Returns a list of index arrays (into ``unit_times``); every position
    appears in exactly one class, empty classes are dropped.  This is the
    server's Cluster() step in Algorithm 1 line 4.
    """
    unit_times = np.asarray(unit_times, dtype=np.float64).ravel()
    if method == "kmeans":
        labels, _ = kmeans_1d(unit_times, k)
    elif method == "equal_width":
        labels, _ = equal_width_bins(unit_times, k)
    else:
        raise ValueError(f"unknown clustering method {method!r}")
    classes = [np.flatnonzero(labels == j) for j in range(labels.max() + 1)]
    classes = [c for c in classes if c.size]
    # Order classes fastest-first by mean unit time (class 1 of the paper).
    classes.sort(key=lambda idx: unit_times[idx].mean())
    return classes
