"""FedHiSyn core: the paper's primary contribution.

- :mod:`repro.core.clustering` — capacity clustering (1-D k-means on local
  training time, Section 4.1).
- :mod:`repro.core.ring` — intra-class ring topologies (small-to-large,
  large-to-small, random; Observation 2).
- :mod:`repro.core.aggregation` — uniform (Eq. 9), class-time-weighted
  (Eq. 10) and sample-weighted (Eq. 3) aggregation.
- :mod:`repro.core.server` — shared federated-server scaffolding reused by
  every baseline.
- :mod:`repro.core.registry` — the method registry every server class
  registers itself into (``@register_method``).
- :mod:`repro.core.fedhisyn` — Algorithm 1.
"""

from repro.core.aggregation import (
    class_time_weighted_average,
    sample_weighted_average,
    uniform_average,
)
from repro.core.clustering import cluster_by_capacity, equal_width_bins, kmeans_1d
from repro.core.fedhisyn import FedHiSynConfig, FedHiSynServer
from repro.core.registry import (
    MethodEntry,
    available_methods,
    get_method,
    register_method,
)
from repro.core.ring import build_ring, build_ring_eq5, build_rings
from repro.core.selection import (
    SELECTION_POLICIES,
    BernoulliSelection,
    DataSizeSelection,
    FastestSelection,
    SelectionPolicy,
    make_policy,
)
from repro.core.server import FederatedServer, ServerConfig

__all__ = [
    "kmeans_1d",
    "equal_width_bins",
    "cluster_by_capacity",
    "build_ring",
    "build_rings",
    "build_ring_eq5",
    "SelectionPolicy",
    "BernoulliSelection",
    "FastestSelection",
    "DataSizeSelection",
    "SELECTION_POLICIES",
    "make_policy",
    "MethodEntry",
    "register_method",
    "get_method",
    "available_methods",
    "uniform_average",
    "class_time_weighted_average",
    "sample_weighted_average",
    "FederatedServer",
    "ServerConfig",
    "FedHiSynConfig",
    "FedHiSynServer",
]
