"""Method registry: one decorator instead of three parallel dicts.

Before this module existed, adding a federated method meant editing three
files: the server class itself, ``ALL_BASELINES`` in
:mod:`repro.baselines`, and the ``METHODS``/``_METHOD_CONFIGS`` pair in
:mod:`repro.experiments`.  Now a server class registers itself::

    @register_method("fedavg", config=FedAvgConfig)
    class FedAvgServer(FederatedServer):
        method = "fedavg"
        ...

and every consumer — :func:`repro.experiments.build_experiment`, the CLI's
``list``/``run``/``sweep`` subcommands, the campaign runner — reads the
same registry.  ``METHODS``/``_METHOD_CONFIGS`` in ``experiments.py`` are
live :class:`~collections.abc.Mapping` views over it, so existing call
sites (``"fedavg" in METHODS``, ``sorted(METHODS)``) keep working
unchanged.

The registry is lazily populated: looking up a method imports the built-in
method modules (whose decorators fill it in) on first use, so importing
this module alone stays cheap and cycle-free.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

__all__ = [
    "MethodEntry",
    "register_method",
    "get_method",
    "available_methods",
    "method_entries",
    "MethodView",
    "METHOD_SERVERS",
    "METHOD_CONFIGS",
]

S = TypeVar("S", bound=type)


@dataclass(frozen=True)
class MethodEntry:
    """Everything the experiment layer needs to instantiate one method."""

    name: str
    server_cls: type
    config_cls: type
    description: str = ""


_REGISTRY: dict[str, MethodEntry] = {}


def register_method(
    name: str, *, config: type, description: str = ""
) -> Callable[[S], S]:
    """Class decorator registering a :class:`FederatedServer` subclass.

    ``name`` is the public method identifier (CLI, ``ExperimentSpec.method``);
    ``config`` is the :class:`~repro.core.server.ServerConfig` subclass the
    experiment builder instantiates from spec fields plus ``method_kwargs``.
    Registering two different classes under one name is an error;
    re-applying the decorator to the same class — including the fresh class
    object a module reload creates — replaces the entry (same module and
    qualname means "the same class, possibly newer").
    """
    if not name or not name.islower() or not name.isidentifier():
        raise ValueError(
            f"method name must be a lowercase identifier, got {name!r}"
        )

    def decorate(server_cls: S) -> S:
        existing = _REGISTRY.get(name)
        if existing is not None and not _same_class(existing.server_cls, server_cls):
            raise ValueError(
                f"method {name!r} is already registered to "
                f"{existing.server_cls.__name__}; pick a different name"
            )
        desc = description or _first_docstring_line(server_cls)
        _REGISTRY[name] = MethodEntry(name, server_cls, config, desc)
        return server_cls

    return decorate


def _same_class(a: type, b: type) -> bool:
    """Identity, or the module-reload case: same module and qualname."""
    return a is b or (
        a.__module__ == b.__module__ and a.__qualname__ == b.__qualname__
    )


def _first_docstring_line(cls: type) -> str:
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def _ensure_builtin_methods() -> None:
    """Import the modules whose decorators populate the registry.

    Idempotent and cycle-safe: the built-in method modules import this
    module only for :func:`register_method`, which touches nothing below.
    """
    import repro.baselines  # noqa: F401  (registers the six baselines)
    import repro.core.fedhisyn  # noqa: F401  (registers fedhisyn)


def get_method(name: str) -> MethodEntry:
    """Look up a registered method; raises ``ValueError`` with the known set."""
    _ensure_builtin_methods()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; known: {available_methods()}"
        ) from None


def available_methods() -> list[str]:
    """Sorted names of every registered method."""
    _ensure_builtin_methods()
    return sorted(_REGISTRY)


def method_entries() -> list[MethodEntry]:
    """All registered entries, sorted by name — the ``list`` subcommand's feed."""
    _ensure_builtin_methods()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


class MethodView(Mapping):
    """Live read-only ``name -> <entry attribute>`` view over the registry.

    ``METHODS`` and ``_METHOD_CONFIGS`` in :mod:`repro.experiments` are
    instances; a method registered after import shows up immediately.
    """

    def __init__(self, attr: str) -> None:
        self._attr = attr

    def __getitem__(self, name: str) -> type:
        _ensure_builtin_methods()
        return getattr(_REGISTRY[name], self._attr)

    def __iter__(self) -> Iterator[str]:
        _ensure_builtin_methods()
        return iter(sorted(_REGISTRY))

    def __len__(self) -> int:
        _ensure_builtin_methods()
        return len(_REGISTRY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        _ensure_builtin_methods()
        return f"MethodView({self._attr}: {sorted(_REGISTRY)})"


METHOD_SERVERS: Mapping[str, type] = MethodView("server_cls")
METHOD_CONFIGS: Mapping[str, type] = MethodView("config_cls")
