"""Server-side model aggregation rules.

* :func:`uniform_average` — Eq. (9), FedHiSyn's default: every uploaded
  model weighs the same, because each has already traversed several
  devices and its "sample count" is not meaningful.
* :func:`class_time_weighted_average` — Eq. (10): weight by the average
  local-training time of the uploader's capacity class, so slow classes
  (fewer ring hops per round) are not drowned out by fast ones.
* :func:`sample_weighted_average` — Eq. (3), classic FedAvg weighting,
  used by the baselines.

All functions take a 2-D stack ``(num_models, dim)`` and return a flat
vector; they are pure NumPy reductions (one pass, no copies of the stack).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_average",
    "sample_weighted_average",
    "class_time_weighted_average",
    "weighted_average",
]


def _check_stack(stack: np.ndarray) -> np.ndarray:
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 2 or stack.shape[0] == 0:
        raise ValueError(f"expected a non-empty (num_models, dim) stack, got {stack.shape}")
    return stack


def weighted_average(stack: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Convex combination of model vectors; weights are normalized here."""
    stack = _check_stack(stack)
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.size != stack.shape[0]:
        raise ValueError(
            f"got {weights.size} weights for {stack.shape[0]} models"
        )
    if np.any(weights < 0):
        raise ValueError("aggregation weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("aggregation weights must not all be zero")
    return (weights / total) @ stack


def uniform_average(stack: np.ndarray) -> np.ndarray:
    """Eq. (9): plain mean over uploaded models."""
    stack = _check_stack(stack)
    return stack.mean(axis=0)


def sample_weighted_average(stack: np.ndarray, num_samples: np.ndarray) -> np.ndarray:
    """Eq. (3): weight each model by its device's sample count (FedAvg)."""
    return weighted_average(stack, np.asarray(num_samples, dtype=np.float64))


def class_time_weighted_average(
    stack: np.ndarray, class_mean_times: np.ndarray
) -> np.ndarray:
    """Eq. (10): weight model ``i`` by ``l_i / L`` where ``l_i`` is the mean
    local-training time of the uploader's capacity class.

    Slower classes get *larger* weight: they completed fewer ring passes,
    so without this their information would be under-represented.
    """
    return weighted_average(stack, np.asarray(class_mean_times, dtype=np.float64))
