"""Server-side model aggregation rules.

* :func:`uniform_average` — Eq. (9), FedHiSyn's default: every uploaded
  model weighs the same, because each has already traversed several
  devices and its "sample count" is not meaningful.
* :func:`class_time_weighted_average` — Eq. (10): weight by the average
  local-training time of the uploader's capacity class, so slow classes
  (fewer ring hops per round) are not drowned out by fast ones.
* :func:`sample_weighted_average` — Eq. (3), classic FedAvg weighting,
  used by the baselines.
* :func:`coordinate_median` / :func:`trimmed_mean` — robust aggregators
  (coordinate-wise): insensitive to a bounded fraction of outlier or
  adversarial uploads, the starting point for the byzantine scenario
  axis.  Sweepable on FedAvg via ``ExperimentSpec.aggregator``.
* :func:`krum` / :func:`multi_krum` — distance-based byzantine-robust
  selection (Blanchard et al., NeurIPS 2017): score each upload by its
  summed squared distance to its nearest neighbors and keep the most
  central one (Krum) or average the ``m`` most central (multi-Krum).
  Unlike the coordinate-wise rules these select whole models, so a
  byzantine upload cannot poison even a single coordinate.

All functions take a 2-D stack ``(num_models, dim)`` and return a flat
vector; they are pure NumPy reductions (one pass, no copies of the stack).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AGGREGATORS",
    "uniform_average",
    "sample_weighted_average",
    "class_time_weighted_average",
    "weighted_average",
    "coordinate_median",
    "trimmed_mean",
    "krum_scores",
    "krum",
    "multi_krum",
]

#: Names accepted by ``ExperimentSpec.aggregator`` (FedAvg's sweepable
#: aggregation rule); "sample" is the paper's Eq. 3 default.
AGGREGATORS = ("sample", "uniform", "median", "trimmed_mean", "krum", "multi_krum")


def _check_stack(stack: np.ndarray) -> np.ndarray:
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 2 or stack.shape[0] == 0:
        raise ValueError(f"expected a non-empty (num_models, dim) stack, got {stack.shape}")
    return stack


def weighted_average(stack: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Convex combination of model vectors; weights are normalized here."""
    stack = _check_stack(stack)
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if weights.size != stack.shape[0]:
        raise ValueError(
            f"got {weights.size} weights for {stack.shape[0]} models"
        )
    if np.any(weights < 0):
        raise ValueError("aggregation weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("aggregation weights must not all be zero")
    return (weights / total) @ stack


def uniform_average(stack: np.ndarray) -> np.ndarray:
    """Eq. (9): plain mean over uploaded models."""
    stack = _check_stack(stack)
    return stack.mean(axis=0)


def sample_weighted_average(stack: np.ndarray, num_samples: np.ndarray) -> np.ndarray:
    """Eq. (3): weight each model by its device's sample count (FedAvg)."""
    return weighted_average(stack, np.asarray(num_samples, dtype=np.float64))


def coordinate_median(stack: np.ndarray) -> np.ndarray:
    """Coordinate-wise median of the uploaded models.

    Robust to up to half the uploads being arbitrary; ignores sample
    counts (a byzantine uploader controls its own count).
    """
    stack = _check_stack(stack)
    return np.median(stack, axis=0)


def trimmed_mean(stack: np.ndarray, trim_fraction: float = 0.1) -> np.ndarray:
    """Coordinate-wise mean after dropping the ``trim_fraction`` smallest
    and largest values per coordinate.

    ``floor(trim_fraction * n)`` models are trimmed from each tail, so a
    small stack (nothing to trim) degrades gracefully to the plain mean.
    """
    stack = _check_stack(stack)
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    n = stack.shape[0]
    cut = int(np.floor(trim_fraction * n))
    if cut == 0:
        return stack.mean(axis=0)
    ordered = np.sort(stack, axis=0)
    return ordered[cut : n - cut].mean(axis=0)


def krum_scores(stack: np.ndarray, num_malicious: int = 0) -> np.ndarray:
    """Per-model Krum scores: sum of squared distances to the
    ``n - num_malicious - 2`` nearest other models.

    Lower is more central.  The neighbor count clamps to ``[1, n - 1]``
    so tiny stacks degrade gracefully instead of erroring (with a single
    upload the score is 0 and Krum returns it).
    """
    stack = _check_stack(stack)
    if num_malicious < 0:
        raise ValueError(f"num_malicious must be >= 0, got {num_malicious}")
    n = stack.shape[0]
    if n == 1:
        return np.zeros(1)
    # Pairwise squared distances via the Gram trick; clip the tiny
    # negatives float cancellation can produce on near-identical rows.
    sq = np.einsum("ij,ij->i", stack, stack)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (stack @ stack.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, np.inf)  # a model is not its own neighbor
    k = min(max(n - num_malicious - 2, 1), n - 1)
    nearest = np.partition(d2, k - 1, axis=1)[:, :k]
    return nearest.sum(axis=1)


def krum(stack: np.ndarray, num_malicious: int = 0) -> np.ndarray:
    """Krum: the single most central upload, by nearest-neighbor score.

    With ``n >= 2 * num_malicious + 3`` honest models outnumber the
    attackers in every neighborhood, so the winner is provably an honest
    upload.  Ties break to the lowest index (argmin), which is
    deterministic because stacks are built in participant order.
    """
    stack = _check_stack(stack)
    return stack[int(np.argmin(krum_scores(stack, num_malicious)))].copy()


def multi_krum(
    stack: np.ndarray, num_malicious: int = 0, m: int | None = None
) -> np.ndarray:
    """Multi-Krum: mean of the ``m`` most central uploads.

    ``m`` defaults to ``n - num_malicious - 2`` (every model Krum's
    guarantee covers), clamped to ``[1, n]``; ``m = 1`` is exactly Krum.
    Averaging the central cluster recovers most of the variance reduction
    plain averaging has over single-model selection.
    """
    stack = _check_stack(stack)
    n = stack.shape[0]
    if m is None:
        m = n - num_malicious - 2
    m = min(max(int(m), 1), n)
    scores = krum_scores(stack, num_malicious)
    chosen = np.argsort(scores, kind="stable")[:m]
    return stack[chosen].mean(axis=0)


def class_time_weighted_average(
    stack: np.ndarray, class_mean_times: np.ndarray
) -> np.ndarray:
    """Eq. (10): weight model ``i`` by ``l_i / L`` where ``l_i`` is the mean
    local-training time of the uploader's capacity class.

    Slower classes get *larger* weight: they completed fewer ring passes,
    so without this their information would be under-represented.
    """
    return weighted_average(stack, np.asarray(class_mean_times, dtype=np.float64))
