"""Event-driven asynchronous federated server.

Where the synchronous :class:`~repro.core.server.FederatedServer` runs
rounds as degenerate barrier events, :class:`AsyncFederatedServer` runs a
*real* schedule on the same :class:`~repro.simulation.scheduler.Scheduler`:
devices train continuously at their fleet unit-time rates, every message
crosses the environment's per-link latency (not the round's slowest link),
message drops hit individual transfers, and availability churn fires as
``availability_change`` events instead of per-round masks.

The device lifecycle (one state machine per cohort member):

1. ``broadcast_arrival`` — a server push lands; a *parked* (idle) device
   wakes and starts a unit, a training device banks the newest model for
   its next unit (models arriving mid-unit never interrupt — the same
   rule as the FedHiSyn ring engine).
2. ``unit_complete`` — the unit's training actually executes (one
   ``run_unit`` call), the result is uploaded through the env channel,
   and the next unit begins immediately from the freshest model on hand:
   the newest server push if one arrived, else the device's own result.
   Devices never idle waiting for the server — a lost reply just means
   more local continuation, exactly the failure mode staleness decay
   exists to damp.
3. ``upload_arrival`` — the upload lands after its uplink latency; the
   subclass hook :meth:`apply_upload` mixes it (FedAsync) or buffers it
   (FedBuff).  The server replies with the current global model, which
   feeds step 1.

**Staleness** is version-counted: the server increments a global version
per aggregation, every dispatched model is stamped with it, and an upload
computed against version ``v`` arriving at version ``V`` has staleness
``V - v``.  :func:`staleness_weight` maps that to a mixing multiplier via
the ``constant`` / ``polynomial`` / ``hinge`` decay families of Xie et
al.'s FedAsync — shared by both async methods (FedBuff leaks stale buffer
entries through the same hook).

``config.rounds`` means *server aggregations* (global model versions), so
``eval_every`` and campaign comparisons keep their shape across the
sync/async divide; time-to-accuracy comparisons use virtual time and the
``eval_time_every`` checkpoint process.

Determinism: the cohort draw uses seed stream ``(0, 1)`` (synchronous
rounds draw ``(round >= 1, 1)``, so the streams are disjoint), training
streams are ``(device, 0, unit_idx)`` (sync units use round >= 1),
churn epochs draw ``(epoch, 3)`` and message drops the persistent
``(0, 101)`` stream — two identically-seeded runs replay the exact same
event trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.server import (
    _AVAILABILITY_STREAM,
    FederatedServer,
    ServerConfig,
)
from repro.device.device import Device
from repro.env.network import SERVER
from repro.simulation.results import RunResult
from repro.simulation.scheduler import (
    AVAILABILITY_CHANGE,
    BROADCAST_ARRIVAL,
    EVAL_CHECKPOINT,
    UNIT_COMPLETE,
    UPLOAD_ARRIVAL,
    Scheduler,
)
from repro.utils.config import validate_positive

__all__ = [
    "STALENESS_DECAYS",
    "staleness_weight",
    "AsyncServerConfig",
    "AsyncFederatedServer",
]

#: The staleness-decay families (FedAsync Section 5.2, adopted by FedBuff):
#: ``constant`` ignores staleness, ``polynomial`` damps as
#: ``(1 + s) ** -a``, ``hinge`` is flat up to a grace of ``b`` versions
#: then decays as ``1 / (a * (s - b) + 1)``.
STALENESS_DECAYS = ("constant", "polynomial", "hinge")


def staleness_weight(
    staleness: int,
    decay: str,
    exponent: float = 0.5,
    hinge_delay: int = 4,
) -> float:
    """Mixing multiplier in (0, 1] for an upload ``staleness`` versions old."""
    if staleness < 0:
        raise ValueError(f"staleness must be non-negative, got {staleness}")
    if decay == "constant":
        return 1.0
    if decay == "polynomial":
        return float((1.0 + staleness) ** -exponent)
    if decay == "hinge":
        if staleness <= hinge_delay:
            return 1.0
        return float(1.0 / (exponent * (staleness - hinge_delay) + 1.0))
    raise ValueError(f"decay must be one of {STALENESS_DECAYS}, got {decay!r}")


@dataclass
class AsyncServerConfig(ServerConfig):
    """Shared knobs of the asynchronous method family.

    ``rounds`` (inherited) counts server aggregations.  ``churn_period``
    is the virtual-time spacing of availability re-draws; None uses the
    cohort's slowest unit time (the async analogue of a round).
    """

    staleness_decay: str = "polynomial"
    staleness_exponent: float = 0.5
    hinge_delay: int = 4
    churn_period: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.staleness_decay not in STALENESS_DECAYS:
            raise ValueError(
                f"staleness_decay must be one of {STALENESS_DECAYS}, "
                f"got {self.staleness_decay!r}"
            )
        if self.staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be >= 0, got {self.staleness_exponent}"
            )
        if self.hinge_delay < 0:
            raise ValueError(
                f"hinge_delay must be >= 0, got {self.hinge_delay}"
            )
        if self.churn_period is not None:
            validate_positive(self.churn_period, "churn_period")


class AsyncFederatedServer(FederatedServer):
    """Base class of the asynchronous methods; subclasses implement one
    hook, :meth:`apply_upload`, and inherit the whole event loop."""

    method = "async-base"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Set True (e.g. by tests) before fit() to record the event trace.
        self.record_trace = False
        # Server aggregation counter — the staleness reference frame.
        self._version = 0
        self._finished = False

    # ---------------------------------------------------------------- hook

    def apply_upload(
        self, dev_id: int, trained: np.ndarray, base: np.ndarray, staleness: int
    ) -> bool:
        """Absorb one arrived upload; return True when it produced a new
        global model version (the server must have bumped ``_version`` and
        *replaced* — never mutated — ``global_weights``, which in-flight
        broadcast payloads alias)."""
        raise NotImplementedError

    # -------------------------------------------------------------- helpers

    def mix_weight(self, staleness: int) -> float:
        """The configured staleness decay evaluated at ``staleness``."""
        cfg: AsyncServerConfig = self.config  # type: ignore[assignment]
        return staleness_weight(
            staleness, cfg.staleness_decay, cfg.staleness_exponent, cfg.hinge_delay
        )

    def _select_cohort(self) -> list[Device]:
        """The devices participating in this run — the server's shared
        Bernoulli(participation) sampling core, drawn once on stream
        ``(0, 1)`` (sync rounds use ``(round >= 1, 1)``).  Availability is
        *not* filtered here: churn is event-driven over the run's span."""
        rng = self._seeds.generator(0, 1)
        if self.selection_policy is not None:
            return list(self.selection_policy.select(0, self.devices, rng))
        if self.fleet is not None:
            ids = self._bernoulli_ids(rng)
            return list(map(self.fleet.device, np.asarray(ids).tolist()))
        return self._bernoulli_devices(rng)

    def _send_down(self, dev: Device) -> tuple[float | None, np.ndarray | None]:
        """Meter one server→device push of the current global model.

        Returns ``(latency, payload)`` — ``(None, None)`` when the message
        is lost.  ``payload`` is the model the device will receive:
        ``global_weights`` itself under the identity codec, the decoded
        (lossy) reconstruction otherwise.  Each device has its own
        downlink reference chain (async pushes are per-link, not
        population-wide), advanced only on delivery — a dropped push
        leaves the receiver on its old reference.
        """
        codec = self.codec
        if codec.is_identity:
            self.meter.record_download(1)
            if self._drop_one():
                return None, None
            return (
                self.env.network.transfer_time(SERVER, dev.device_id, 1.0),
                self.global_weights,
            )
        dev_id = dev.device_id
        enc = codec.encode(
            self.global_weights,
            key=("down", dev_id),
            reference=self._down_refs.get(dev_id),
        )
        self.meter.record_download(1, enc.model_units, raw_units=1.0)
        if self._drop_one():
            return None, None
        view = codec.decode(enc)
        self._down_refs[dev_id] = view
        return (
            self.env.network.transfer_time(SERVER, dev_id, enc.model_units),
            view,
        )

    def _send_up(
        self, dev: Device, trained: np.ndarray, start: np.ndarray
    ) -> tuple[float | None, np.ndarray | None]:
        """Meter one device→server upload of ``trained`` (encoded against
        ``start``, the model the unit ran from — both endpoints hold it).
        Returns ``(latency, payload)``; ``(None, None)`` when lost."""
        codec = self.codec
        if codec.is_identity:
            self.meter.record_upload(1)
            if self._drop_one():
                return None, None
            return (
                self.env.network.transfer_time(dev.device_id, SERVER, 1.0),
                trained,
            )
        enc = codec.encode(trained, key=int(dev.device_id), reference=start)
        self.meter.record_upload(1, enc.model_units, raw_units=1.0)
        if self._drop_one():
            return None, None
        return (
            self.env.network.transfer_time(dev.device_id, SERVER, enc.model_units),
            codec.decode(enc),
        )

    def _dispatch_global(self, dev_id: int) -> None:
        """Reply to a device with the current global model (stamped with
        the current version) through the downlink."""
        lat, payload = self._send_down(self._by_id[dev_id])
        if lat is not None:
            self.scheduler.at(
                self.scheduler.now + lat,
                BROADCAST_ARRIVAL,
                (dev_id, payload, self._version),
            )

    # ------------------------------------------------------------- handlers

    def _begin_unit(self, dev_id: int) -> None:
        """Start the device's next unit from the freshest model on hand:
        the newest arrived server push, else its own latest result."""
        arrival = self._inbox.pop(dev_id, None)
        if arrival is not None:
            self._start_model[dev_id], self._base_version[dev_id] = arrival
        else:
            self._start_model[dev_id] = self._own_model[dev_id]
        self.scheduler.at(
            self.scheduler.now + self._unit_time[dev_id], UNIT_COMPLETE, dev_id
        )

    def _on_broadcast_arrival(self, ev) -> None:
        dev_id, weights, version = ev.payload
        banked = self._inbox.get(dev_id)
        # Newest version wins; an older in-flight reply never clobbers it.
        if banked is None or version >= banked[1]:
            self._inbox[dev_id] = (weights, version)
        if dev_id in self._parked and dev_id not in self._offline:
            self._parked.discard(dev_id)
            self._begin_unit(dev_id)

    def _on_unit_complete(self, ev) -> None:
        dev_id = ev.payload
        dev = self._by_id[dev_id]
        start = self._start_model[dev_id]
        trained = dev.run_unit(
            start, self.config.local_epochs, 0, self._unit_idx[dev_id], sync=False
        )
        self._unit_idx[dev_id] += 1
        self._own_model[dev_id] = trained
        if dev_id in self._offline:
            # Went offline mid-unit: the result stays local, the device
            # parks until a later availability epoch brings it back.
            self._parked.add(dev_id)
            return
        lat, payload = self._send_up(dev, trained, start)
        if lat is not None:
            self.scheduler.at(
                self.scheduler.now + lat,
                UPLOAD_ARRIVAL,
                (dev_id, payload, start, self._base_version[dev_id]),
            )
        self._begin_unit(dev_id)

    def _on_upload_arrival(self, ev) -> None:
        dev_id, trained, base, base_version = ev.payload
        staleness = self._version - base_version
        aggregated = self.apply_upload(dev_id, trained, base, staleness)
        if aggregated:
            self._deployed_weights = self.global_weights
            self._after_aggregate()
        if not self._finished:
            self._dispatch_global(dev_id)

    def _on_availability_change(self, ev) -> None:
        """Churn epoch boundary: re-draw who is online (same rng stream
        family as the synchronous per-round masks, keyed by epoch), park
        departures at their next unit end, wake returners now."""
        epoch = ev.payload
        rng = self._seeds.generator(epoch, _AVAILABILITY_STREAM)
        if self.fleet is not None:
            online = self.env.available_ids(
                epoch,
                self._cohort_ids,
                self._unit_times[self._cohort_ids],
                rng,
            )
            online_set = set(int(i) for i in online)
        else:
            online = self.env.available(epoch, self.cohort, rng)
            online_set = {d.device_id for d in online}
        offline = self._all_ids - online_set
        self.unavailable_count += len(offline)
        self._offline = offline
        for dev_id in sorted(self._parked - offline):
            self._parked.discard(dev_id)
            self._begin_unit(dev_id)
        self.scheduler.at(
            (epoch + 1) * self._churn_period, AVAILABILITY_CHANGE, epoch + 1
        )

    def _after_aggregate(self) -> None:
        """Bookkeeping after a new global version: periodic round-indexed
        eval (version plays the round's role) and termination."""
        v = self._version
        cfg = self.config
        if v % cfg.eval_every == 0 or v >= cfg.rounds:
            acc, loss = self.evaluate(self.global_weights)
            self.history.record(
                v, self.clock.now, self.meter.server_total, acc, loss
            )
            self.logger.log(
                round=v,
                accuracy=round(acc, 4),
                loss=round(loss, 4),
                transfers=self.meter.server_total,
                vtime=round(self.clock.now, 3),
            )
        if v >= cfg.rounds:
            self._finished = True
            self.scheduler.stop()

    # --------------------------------------------------------------- driver

    def fit(self, initial_weights: np.ndarray | None = None) -> RunResult:
        """Run the event loop until ``config.rounds`` aggregations land."""
        if initial_weights is not None:
            self.global_weights = np.asarray(initial_weights, dtype=np.float64).copy()
        cfg: AsyncServerConfig = self.config  # type: ignore[assignment]
        sched = Scheduler(clock=self.clock, record_trace=self.record_trace)
        self.scheduler = sched
        self._version = 0
        self._finished = False
        self._deployed_weights = self.global_weights
        self._checkpoint_eval = None

        self.cohort = self._select_cohort()
        ids = [d.device_id for d in self.cohort]
        self._cohort_ids = np.asarray(ids, dtype=np.intp)
        self._all_ids = set(ids)
        self._by_id = {d.device_id: d for d in self.cohort}
        self._unit_time = {d.device_id: d.unit_time for d in self.cohort}
        self._start_model: dict[int, np.ndarray] = {}
        self._base_version = {i: 0 for i in ids}
        self._own_model = {i: self.global_weights for i in ids}
        self._inbox: dict[int, tuple[np.ndarray, int]] = {}
        self._unit_idx = {i: 0 for i in ids}
        self._offline: set[int] = set()
        self._parked: set[int] = set(ids)
        self._churn_period = (
            cfg.churn_period
            if cfg.churn_period is not None
            else float(max(self._unit_time.values()))
        )

        sched.on(BROADCAST_ARRIVAL, self._on_broadcast_arrival)
        sched.on(UNIT_COMPLETE, self._on_unit_complete)
        sched.on(UPLOAD_ARRIVAL, self._on_upload_arrival)
        sched.on(AVAILABILITY_CHANGE, self._on_availability_change)
        sched.on(EVAL_CHECKPOINT, self._on_eval_checkpoint)
        if not self.env.availability.always_on:
            sched.at(self._churn_period, AVAILABILITY_CHANGE, 1)
        if cfg.eval_time_every is not None:
            sched.at(cfg.eval_time_every, EVAL_CHECKPOINT)

        # Per-device downlink codec references; seeded by provisioning.
        self._down_refs: dict[int, np.ndarray] = {}

        # t=0 provisioning: the server pushes the initial model to the
        # whole cohort.  Metered per link but lossless and dense — a fleet
        # is provisioned with the initial model out of band, and a "lost"
        # provisioning push would just re-deliver the identical vector.
        # The dense push establishes every device's downlink reference.
        for dev in self.cohort:
            self.meter.record_download(1)
            lat = self.env.network.transfer_time(SERVER, dev.device_id, 1.0)
            sched.at(lat, BROADCAST_ARRIVAL, (dev.device_id, self.global_weights, 0))
            if not self.codec.is_identity:
                self._down_refs[dev.device_id] = self.global_weights

        sched.run()
        return self._assemble_result()

    def run_round(self, round_idx, participants, global_weights):
        raise NotImplementedError(
            "async servers run on the event loop, not per-round hooks"
        )
