"""Event-driven asynchronous federated server.

Where the synchronous :class:`~repro.core.server.FederatedServer` runs
rounds as degenerate barrier events, :class:`AsyncFederatedServer` runs a
*real* schedule on the same :class:`~repro.simulation.scheduler.Scheduler`:
devices train continuously at their fleet unit-time rates, every message
crosses the environment's per-link latency (not the round's slowest link),
message drops hit individual transfers, and availability churn fires as
``availability_change`` events instead of per-round masks.

The device lifecycle (one state machine per cohort member):

1. ``broadcast_arrival`` — a server push lands; a *parked* (idle) device
   wakes and starts a unit, a training device banks the newest model for
   its next unit (models arriving mid-unit never interrupt — the same
   rule as the FedHiSyn ring engine).
2. ``unit_complete`` — the unit's training actually executes (one
   ``run_unit`` call), the result is uploaded through the env channel,
   and the next unit begins immediately from the freshest model on hand:
   the newest server push if one arrived, else the device's own result.
   Devices never idle waiting for the server — a lost reply just means
   more local continuation, exactly the failure mode staleness decay
   exists to damp.
3. ``upload_arrival`` — the upload lands after its uplink latency; the
   subclass hook :meth:`apply_upload` mixes it (FedAsync) or buffers it
   (FedBuff).  The server replies with the current global model, which
   feeds step 1.

**Batched events** (the million-device path): with no fault model armed,
the server packs same-timestamp work into single scheduler entries — one
``unit_complete`` carrying an int32 id array for a whole completion wave,
one ``upload_arrival``/``broadcast_arrival`` per distinct link latency —
instead of one event per device.  The quantized unit-time schedule
(``unit_times_from_counts`` yields ``round_length / k`` for small integer
``k``) makes devices that start together complete together, so waves are
large and the event engine's per-device overhead amortizes away.  Handlers
consume the id arrays **in array order**, which makes a batch
observationally identical to the per-device events it replaces: the same
rng draws in the same order (training streams, the shared drop stream),
the same metering, the same aggregation sequence.  Packing follows the
scheduler's tie-break contract — members of a batch were scheduled
consecutively at one moment, so no foreign event's sequence number can
fall between them.  Arming a fault model disables batching (per-member
``unit_complete`` cancellation and crash/heartbeat tie ordering need
per-device handles); ``event_batching = False`` forces the per-device
path for A/B equivalence tests.

**Staleness** is version-counted: the server increments a global version
per aggregation, every dispatched model is stamped with it, and an upload
computed against version ``v`` arriving at version ``V`` has staleness
``V - v``.  :func:`staleness_weight` maps that to a mixing multiplier via
the ``constant`` / ``polynomial`` / ``hinge`` decay families of Xie et
al.'s FedAsync — shared by both async methods (FedBuff leaks stale buffer
entries through the same hook).

``config.rounds`` means *server aggregations* (global model versions), so
``eval_every`` and campaign comparisons keep their shape across the
sync/async divide; time-to-accuracy comparisons use virtual time and the
``eval_time_every`` checkpoint process.

Determinism: the cohort draw uses seed stream ``(0, 1)`` (synchronous
rounds draw ``(round >= 1, 1)``, so the streams are disjoint), training
streams are ``(device, 0, unit_idx)`` (sync units use round >= 1),
churn epochs draw ``(epoch, 3)`` and message drops the persistent
``(0, 101)`` stream — two identically-seeded runs replay the exact same
event trace.

**Fault tolerance** (armed only when a non-null :mod:`repro.faults` model
is installed; the clean path runs zero extra draws or events): every unit
start draws a straggler slowdown and a crash point from the persistent
``(0, 202)`` fault stream.  A crash cancels the pending ``unit_complete``
(the partial unit is lost), takes the device down for its downtime, and a
``device_restart`` rejoins it.  Uploads arm an ``upload_timeout``
retransmission timer — a drop (or a timeout beaten by a slow link) backs
off exponentially through ``retry_upload`` events up to
``config.max_retries``, at-least-once semantics: a retry racing its own
late delivery can double-deliver, exactly like a real retransmission
protocol.  Devices emit ``heartbeat`` beacons every
``config.heartbeat_period``; the ``suspect`` sweep marks devices silent
past ``config.suspicion_timeout`` as suspected — detected crashes for the
resilience accounting, and the count the buffered methods subtract from
their flush goal (:meth:`AsyncFederatedServer.live_target`) so an
aggregation never waits on a parked device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.server import (
    _AVAILABILITY_STREAM,
    _FAULT_ASYNC_STREAM_KEY,
    FederatedServer,
    ServerConfig,
)
from repro.device.device import Device
from repro.env.network import SERVER
from repro.simulation.results import RunResult
from repro.simulation.scheduler import (
    AVAILABILITY_CHANGE,
    BROADCAST_ARRIVAL,
    DEVICE_CRASH,
    DEVICE_RESTART,
    EVAL_CHECKPOINT,
    HEARTBEAT,
    RETRY_UPLOAD,
    SUSPECT,
    UNIT_COMPLETE,
    UPLOAD_ARRIVAL,
    UPLOAD_TIMEOUT,
    Scheduler,
)
from repro.utils.config import validate_positive

__all__ = [
    "STALENESS_DECAYS",
    "staleness_weight",
    "AsyncServerConfig",
    "AsyncFederatedServer",
]


def _wave_groups(
    times: np.ndarray, ids: np.ndarray
) -> list[tuple[float, np.ndarray]]:
    """Split ``ids`` into maturity groups: one ``(time, ids_at_time)`` pair
    per distinct value of ``times``, in increasing time, preserving the
    input order of ids inside each group (stable sort) — the batched
    analogue of scheduling ``len(ids)`` consecutive per-device events."""
    if len(ids) == 1:
        return [(float(times[0]), ids)]
    order = np.argsort(times, kind="stable")
    st = times[order]
    sids = ids[order]
    cuts = np.flatnonzero(st[1:] != st[:-1]) + 1
    if not cuts.size:
        return [(float(st[0]), sids)]
    bounds = [0, *cuts.tolist(), len(sids)]
    return [
        (float(st[a]), sids[a:b]) for a, b in zip(bounds[:-1], bounds[1:])
    ]

#: The staleness-decay families (FedAsync Section 5.2, adopted by FedBuff):
#: ``constant`` ignores staleness, ``polynomial`` damps as
#: ``(1 + s) ** -a``, ``hinge`` is flat up to a grace of ``b`` versions
#: then decays as ``1 / (a * (s - b) + 1)``.
STALENESS_DECAYS = ("constant", "polynomial", "hinge")


def staleness_weight(
    staleness: int,
    decay: str,
    exponent: float = 0.5,
    hinge_delay: int = 4,
) -> float:
    """Mixing multiplier in (0, 1] for an upload ``staleness`` versions old."""
    if staleness < 0:
        raise ValueError(f"staleness must be non-negative, got {staleness}")
    if decay == "constant":
        return 1.0
    if decay == "polynomial":
        return float((1.0 + staleness) ** -exponent)
    if decay == "hinge":
        if staleness <= hinge_delay:
            return 1.0
        return float(1.0 / (exponent * (staleness - hinge_delay) + 1.0))
    raise ValueError(f"decay must be one of {STALENESS_DECAYS}, got {decay!r}")


@dataclass
class AsyncServerConfig(ServerConfig):
    """Shared knobs of the asynchronous method family.

    ``rounds`` (inherited) counts server aggregations.  ``churn_period``
    is the virtual-time spacing of availability re-draws; None uses the
    cohort's slowest unit time (the async analogue of a round).
    """

    staleness_decay: str = "polynomial"
    staleness_exponent: float = 0.5
    hinge_delay: int = 4
    churn_period: float | None = None
    # Fault tolerance (active only with a non-null fault model installed):
    # an upload unacknowledged after ``upload_timeout`` retries with
    # exponential backoff (``retry_backoff * 2**attempt``) up to
    # ``max_retries`` retransmissions; devices heartbeat every
    # ``heartbeat_period`` and fall suspected after ``suspicion_timeout``
    # of silence.  Times are virtual-time units (a median unit is ~0.5).
    max_retries: int = 3
    retry_backoff: float = 0.25
    upload_timeout: float = 1.0
    heartbeat_period: float = 0.5
    suspicion_timeout: float = 1.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        validate_positive(self.retry_backoff, "retry_backoff")
        validate_positive(self.upload_timeout, "upload_timeout")
        validate_positive(self.heartbeat_period, "heartbeat_period")
        validate_positive(self.suspicion_timeout, "suspicion_timeout")
        if self.staleness_decay not in STALENESS_DECAYS:
            raise ValueError(
                f"staleness_decay must be one of {STALENESS_DECAYS}, "
                f"got {self.staleness_decay!r}"
            )
        if self.staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be >= 0, got {self.staleness_exponent}"
            )
        if self.hinge_delay < 0:
            raise ValueError(
                f"hinge_delay must be >= 0, got {self.hinge_delay}"
            )
        if self.churn_period is not None:
            validate_positive(self.churn_period, "churn_period")


class AsyncFederatedServer(FederatedServer):
    """Base class of the asynchronous methods; subclasses implement one
    hook, :meth:`apply_upload`, and inherit the whole event loop."""

    method = "async-base"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Set True (e.g. by tests) before fit() to record the event trace.
        self.record_trace = False
        # Batched event kinds (id-array payloads) on the clean path; set
        # False before fit() to force one event per device — the per-device
        # path the equivalence tests compare against.  Arming a fault model
        # disables batching regardless (per-member timer cancellation).
        self.event_batching = True
        # Server aggregation counter — the staleness reference frame.
        self._version = 0
        self._finished = False
        # Off until fit() arms it with a non-null fault model; here so
        # live_target() works when hooks are driven outside the loop.
        self._fault_machinery = False
        self._suspected: set[int] = set()

    # ---------------------------------------------------------------- hook

    def apply_upload(
        self, dev_id: int, trained: np.ndarray, base: np.ndarray, staleness: int
    ) -> bool:
        """Absorb one arrived upload; return True when it produced a new
        global model version (the server must have bumped ``_version`` and
        *replaced* — never mutated — ``global_weights``, which in-flight
        broadcast payloads alias)."""
        raise NotImplementedError

    # -------------------------------------------------------------- helpers

    def mix_weight(self, staleness: int) -> float:
        """The configured staleness decay evaluated at ``staleness``."""
        cfg: AsyncServerConfig = self.config  # type: ignore[assignment]
        return staleness_weight(
            staleness, cfg.staleness_decay, cfg.staleness_exponent, cfg.hinge_delay
        )

    def _select_cohort(self) -> list[Device]:
        """The devices participating in this run — the server's shared
        Bernoulli(participation) sampling core, drawn once on stream
        ``(0, 1)`` (sync rounds use ``(round >= 1, 1)``).  Availability is
        *not* filtered here: churn is event-driven over the run's span."""
        rng = self._seeds.generator(0, 1)
        if self.selection_policy is not None:
            return list(self.selection_policy.select(0, self.devices, rng))
        if self.fleet is not None:
            ids = self._bernoulli_ids(rng)
            return list(map(self.fleet.device, np.asarray(ids).tolist()))
        return self._bernoulli_devices(rng)

    def _send_down(self, dev: Device) -> tuple[float | None, np.ndarray | None]:
        """Meter one server→device push of the current global model.

        Returns ``(latency, payload)`` — ``(None, None)`` when the message
        is lost.  ``payload`` is the model the device will receive:
        ``global_weights`` itself under the identity codec, the decoded
        (lossy) reconstruction otherwise.  Each device has its own
        downlink reference chain (async pushes are per-link, not
        population-wide), advanced only on delivery — a dropped push
        leaves the receiver on its old reference.
        """
        codec = self.codec
        if codec.is_identity:
            self.meter.record_download(1)
            if self._drop_one():
                return None, None
            return (
                self.env.network.transfer_time(SERVER, dev.device_id, 1.0),
                self.global_weights,
            )
        dev_id = dev.device_id
        enc = codec.encode(
            self.global_weights,
            key=("down", dev_id),
            reference=self._down_refs.get(dev_id),
        )
        self.meter.record_download(1, enc.model_units, raw_units=1.0)
        if self._drop_one():
            return None, None
        view = codec.decode(enc)
        self._down_refs[dev_id] = view
        return (
            self.env.network.transfer_time(SERVER, dev_id, enc.model_units),
            view,
        )

    def _send_up(
        self, dev: Device, trained: np.ndarray, start: np.ndarray
    ) -> tuple[float | None, np.ndarray | None]:
        """Meter one device→server upload of ``trained`` (encoded against
        ``start``, the model the unit ran from — both endpoints hold it).
        Returns ``(latency, payload)``; ``(None, None)`` when lost."""
        codec = self.codec
        if codec.is_identity:
            self.meter.record_upload(1)
            if self._drop_one():
                return None, None
            return (
                self.env.network.transfer_time(dev.device_id, SERVER, 1.0),
                trained,
            )
        enc = codec.encode(trained, key=int(dev.device_id), reference=start)
        self.meter.record_upload(1, enc.model_units, raw_units=1.0)
        if self._drop_one():
            return None, None
        return (
            self.env.network.transfer_time(dev.device_id, SERVER, enc.model_units),
            codec.decode(enc),
        )

    def _dispatch_global(self, dev_id: int) -> None:
        """Reply to a device with the current global model (stamped with
        the current version) through the downlink."""
        lat, payload = self._send_down(self._by_id[dev_id])
        if lat is not None:
            self.scheduler.at(
                self.scheduler.now + lat,
                BROADCAST_ARRIVAL,
                (dev_id, payload, self._version),
            )

    def live_target(self, goal: int) -> int:
        """``goal`` capped at the unsuspected cohort size — how many
        distinct contributors an aggregation can still hope for.  The
        failure detector's *parking* output: a buffered method that waits
        for K uploads must not count devices the detector has written off.
        Exactly ``goal`` while nothing is suspected (the clean-path
        bit-identity guarantee)."""
        if not self._fault_machinery or not self._suspected:
            return goal
        return max(1, min(goal, len(self._all_ids) - len(self._suspected)))

    # ------------------------------------------------------------- handlers

    def _begin_unit(self, dev_id: int) -> None:
        """Start the device's next unit from the freshest model on hand:
        the newest arrived server push, else its own latest result.

        With the fault machinery armed the unit's duration picks up the
        model's straggler slowdown and its crash draw may schedule a
        ``device_crash`` strictly inside the unit — which will cancel the
        pending ``unit_complete`` handle kept in ``_unit_events``.
        """
        arrival = self._inbox.pop(dev_id, None)
        if arrival is not None:
            self._start_model[dev_id], self._base_version[dev_id] = arrival
        else:
            self._start_model[dev_id] = self._own_model[dev_id]
        if not self._fault_machinery:
            self.scheduler.at(
                self.scheduler.now + self._unit_time[dev_id], UNIT_COMPLETE, dev_id
            )
            return
        unit_time = self._unit_time[dev_id]
        slow = self.faults.unit_slowdown(dev_id, self._fault_rng)
        if slow != 1.0:
            self.resilience.injected_slowdowns += 1
            unit_time *= slow
        crash = self.faults.unit_crash(dev_id, self._fault_rng)
        self._unit_events[dev_id] = self.scheduler.at(
            self.scheduler.now + unit_time, UNIT_COMPLETE, dev_id
        )
        if crash is not None:
            frac, downtime = crash
            lost = frac * unit_time
            self.scheduler.at(
                self.scheduler.now + lost, DEVICE_CRASH, (dev_id, lost, downtime)
            )

    def _begin_units(self, ids: np.ndarray) -> None:
        """Batched :meth:`_begin_unit` (clean path only): pop inboxes in id
        order, then schedule one ``unit_complete`` per distinct maturity
        time — the wave grouping the quantized unit-time schedule makes
        large."""
        inbox = self._inbox
        start = self._start_model
        basev = self._base_version
        own = self._own_model
        for dev_id in ids.tolist():
            arrival = inbox.pop(dev_id, None)
            if arrival is not None:
                start[dev_id], basev[dev_id] = arrival
            else:
                start[dev_id] = own[dev_id]
        times = self.scheduler.now + self._unit_time_of[ids]
        for t, group in _wave_groups(times, ids):
            if len(group) == 1:
                self.scheduler.at(t, UNIT_COMPLETE, int(group[0]))
            else:
                self.scheduler.at_many(t, UNIT_COMPLETE, group)

    def _on_broadcast_arrival(self, ev) -> None:
        dev_id, weights, version = ev.payload
        if isinstance(dev_id, np.ndarray):
            self._on_broadcast_batch(dev_id, weights, version)
            return
        banked = self._inbox.get(dev_id)
        # Newest version wins; an older in-flight reply never clobbers it.
        if banked is None or version >= banked[1]:
            self._inbox[dev_id] = (weights, version)
        if (
            self._parked_mask[dev_id]
            and not self._offline_mask[dev_id]
            and dev_id not in self._crashed
        ):
            self._parked_mask[dev_id] = False
            self._begin_unit(dev_id)

    def _on_broadcast_batch(self, ids, weights, version) -> None:
        """A broadcast wave lands (clean path): ``weights``/``version`` are
        either one shared payload (provisioning) or lists aligned with
        ``ids`` (grouped replies stamped at different server versions)."""
        inbox = self._inbox
        if isinstance(weights, np.ndarray):
            for dev_id in ids.tolist():
                banked = inbox.get(dev_id)
                if banked is None or version >= banked[1]:
                    inbox[dev_id] = (weights, version)
        else:
            for k, dev_id in enumerate(ids.tolist()):
                banked = inbox.get(dev_id)
                if banked is None or version[k] >= banked[1]:
                    inbox[dev_id] = (weights[k], version[k])
        wake = ids[self._parked_mask[ids] & ~self._offline_mask[ids]]
        if wake.size:
            self._parked_mask[wake] = False
            self._begin_units(wake)

    def _on_unit_complete(self, ev) -> None:
        dev_id = ev.payload
        if isinstance(dev_id, np.ndarray):
            self._on_unit_batch(dev_id)
            return
        self._unit_events.pop(dev_id, None)
        dev = self._by_id[dev_id]
        start = self._start_model[dev_id]
        trained = dev.run_unit(
            start, self.config.local_epochs, 0, self._unit_idx[dev_id], sync=False
        )
        self._unit_idx[dev_id] += 1
        self._own_model[dev_id] = trained
        if self._offline_mask[dev_id]:
            # Went offline mid-unit: the result stays local, the device
            # parks until a later availability epoch brings it back.
            self._parked_mask[dev_id] = True
            return
        payload = trained
        if self._fault_machinery and self.faults.is_byzantine(dev_id):
            # The device trains honestly (its own state is `trained`) but
            # lies on the wire.
            payload = self.faults.corrupt(trained, dev_id, self._fault_rng)
            self.resilience.injected_corruptions += 1
        self._send_attempt(dev, payload, start, self._base_version[dev_id], 0)
        self._begin_unit(dev_id)

    def _on_unit_batch(self, ids) -> None:
        """A completion wave (clean path).  Members are processed in array
        order — run_unit calls, the shared drop-stream draws and upload
        metering happen exactly as ``len(ids)`` consecutive per-device
        events would — then the follow-up uploads and next units are
        regrouped by maturity time into batched events of their own."""
        epochs = self.config.local_epochs
        offline = self._offline_mask
        up: list[tuple] = []  # (lat, dev_id, delivered, start, base_version)
        next_ids: list[int] = []
        for dev_id in ids.tolist():
            dev = self._by_id[dev_id]
            start = self._start_model[dev_id]
            trained = dev.run_unit(
                start, epochs, 0, self._unit_idx[dev_id], sync=False
            )
            self._unit_idx[dev_id] += 1
            self._own_model[dev_id] = trained
            if offline[dev_id]:
                self._parked_mask[dev_id] = True
                continue
            lat, delivered = self._send_up(dev, trained, start)
            if lat is not None:
                up.append((lat, dev_id, delivered, start, self._base_version[dev_id]))
            next_ids.append(dev_id)
        if up:
            now = self.scheduler.now
            lats = np.asarray([u[0] for u in up])
            for t, gidx in _wave_groups(lats, np.arange(len(up))):
                if len(gidx) == 1:
                    _, d, delivered, start, basev = up[int(gidx[0])]
                    self.scheduler.at(
                        now + t, UPLOAD_ARRIVAL, (d, delivered, start, basev, None)
                    )
                else:
                    members = [up[int(k)] for k in gidx.tolist()]
                    mids = np.asarray([m[1] for m in members], dtype=np.int32)
                    self.scheduler.at_many(
                        now + t,
                        UPLOAD_ARRIVAL,
                        mids,
                        payload=(
                            mids,
                            [m[2] for m in members],
                            [m[3] for m in members],
                            [m[4] for m in members],
                        ),
                    )
        if next_ids:
            self._begin_units(np.asarray(next_ids, dtype=np.intp))

    def _send_attempt(
        self,
        dev: Device,
        payload: np.ndarray,
        start: np.ndarray,
        base_version: int,
        attempt: int,
    ) -> None:
        """One upload transmission (original or retry).  With the fault
        machinery armed every attempt arms an ``upload_timeout``
        retransmission timer, cancelled when the delivery is processed."""
        dev_id = dev.device_id
        lat, delivered = self._send_up(dev, payload, start)
        if not self._fault_machinery:
            if lat is not None:
                self.scheduler.at(
                    self.scheduler.now + lat,
                    UPLOAD_ARRIVAL,
                    (dev_id, delivered, start, base_version, None),
                )
            return
        self.resilience.uploads_sent += 1
        token = self._upload_seq
        self._upload_seq += 1
        timer = self.scheduler.at(
            self.scheduler.now + self.config.upload_timeout, UPLOAD_TIMEOUT, token
        )
        self._upload_timers[token] = (
            timer, dev_id, payload, start, base_version, attempt,
        )
        if lat is not None:
            self.scheduler.at(
                self.scheduler.now + lat,
                UPLOAD_ARRIVAL,
                (dev_id, delivered, start, base_version, token),
            )

    def _on_upload_timeout(self, ev) -> None:
        """The retransmission timer matured unacknowledged: the upload was
        dropped (or its link is slower than the timeout).  Back off
        exponentially and retry, up to ``config.max_retries``."""
        token = ev.payload
        record = self._upload_timers.pop(token, None)
        if record is None:
            return  # acknowledged before the timer fired
        _, dev_id, payload, start, base_version, attempt = record
        res = self.resilience
        res.upload_timeouts += 1
        if attempt >= self.config.max_retries or self._finished:
            res.dropped_updates += 1
            return
        res.retries += 1
        backoff = self.config.retry_backoff * (2.0 ** attempt)
        self.scheduler.at(
            self.scheduler.now + backoff,
            RETRY_UPLOAD,
            (dev_id, payload, start, base_version, attempt + 1),
        )

    def _on_retry_upload(self, ev) -> None:
        dev_id, payload, start, base_version, attempt = ev.payload
        if dev_id in self._crashed:
            # The retransmission queue dies with its device.
            self.resilience.dropped_updates += 1
            return
        self._send_attempt(self._by_id[dev_id], payload, start, base_version, attempt)

    def _on_device_crash(self, ev) -> None:
        """Fail-stop mid-unit: the pending ``unit_complete`` is cancelled
        (the cancellable-timer path), the partial work is lost, and the
        heartbeat chain goes silent until restart."""
        dev_id, lost, downtime = ev.payload
        pending = self._unit_events.pop(dev_id, None)
        if pending is not None:
            self.scheduler.cancel(pending)
        beat = self._beat_events.pop(dev_id, None)
        if beat is not None:
            self.scheduler.cancel(beat)
        self._crashed.add(dev_id)
        self._crash_detected[dev_id] = False
        self._parked_mask[dev_id] = False
        res = self.resilience
        res.injected_crashes += 1
        res.wasted_time += lost
        self.scheduler.at(self.scheduler.now + downtime, DEVICE_RESTART, dev_id)

    def _on_device_restart(self, ev) -> None:
        dev_id = ev.payload
        self._crashed.discard(dev_id)
        # Immediate rejoin announcement: the beat un-suspects the device
        # and restarts its heartbeat chain.
        self._schedule_beat(dev_id, self.scheduler.now)
        if self._offline_mask[dev_id]:
            self._parked_mask[dev_id] = True
        else:
            self._begin_unit(dev_id)

    def _schedule_beat(self, dev_id: int, time: float) -> None:
        self._beat_events[dev_id] = self.scheduler.at(time, HEARTBEAT, dev_id)

    def _on_heartbeat(self, ev) -> None:
        dev_id = ev.payload
        self._last_heard[dev_id] = ev.time
        # A beat from a suspected device is a rejoin: forgive it.
        self._suspected.discard(dev_id)
        self._schedule_beat(dev_id, ev.time + self.config.heartbeat_period)

    def _on_suspect(self, ev) -> None:
        """Failure-detector sweep: park devices silent past the suspicion
        timeout.  A suspicion of a genuinely crashed device is a
        *detection* (counted once per crash); of a live one, a false
        suspicion its next beat will clear."""
        cfg: AsyncServerConfig = self.config  # type: ignore[assignment]
        now = ev.time
        res = self.resilience
        for dev_id in sorted(self._all_ids):
            if dev_id in self._suspected:
                continue
            if now - self._last_heard[dev_id] > cfg.suspicion_timeout:
                self._suspected.add(dev_id)
                if dev_id in self._crashed:
                    if not self._crash_detected.get(dev_id, False):
                        self._crash_detected[dev_id] = True
                        res.detected_crashes += 1
                else:
                    res.false_suspicions += 1
        self.scheduler.at(now + cfg.heartbeat_period, SUSPECT)

    def _on_upload_arrival(self, ev) -> None:
        payload = ev.payload
        if isinstance(payload[0], np.ndarray):
            self._on_upload_batch(*payload)
            return
        dev_id, trained, base, base_version, token = payload
        if token is not None:
            record = self._upload_timers.pop(token, None)
            if record is not None:
                self.scheduler.cancel(record[0])
        staleness = self._version - base_version
        aggregated = self.apply_upload(dev_id, trained, base, staleness)
        if aggregated:
            self._deployed_weights = self.global_weights
            self._after_aggregate()
        if not self._finished:
            self._dispatch_global(dev_id)

    def _on_upload_batch(self, ids, payloads, starts, versions) -> None:
        """An upload wave lands (clean path).  Members aggregate in array
        order — staleness is read against the version as it stands when
        each member's turn comes, exactly as consecutive per-device events
        would — and the replies are regrouped by downlink latency, each
        stamped with the version current at its member's reply moment."""
        down: list[tuple] = []  # (lat, dev_id, reply_payload, version)
        for k, dev_id in enumerate(ids.tolist()):
            staleness = self._version - versions[k]
            aggregated = self.apply_upload(dev_id, payloads[k], starts[k], staleness)
            if aggregated:
                self._deployed_weights = self.global_weights
                self._after_aggregate()
            if self._finished:
                # Per-device semantics: stop() keeps the rest of the wave
                # from ever dispatching, and the finisher gets no reply.
                break
            lat, reply = self._send_down(self._by_id[dev_id])
            if lat is not None:
                down.append((lat, dev_id, reply, self._version))
        if down:
            now = self.scheduler.now
            lats = np.asarray([d[0] for d in down])
            for t, gidx in _wave_groups(lats, np.arange(len(down))):
                if len(gidx) == 1:
                    _, d, reply, ver = down[int(gidx[0])]
                    self.scheduler.at(now + t, BROADCAST_ARRIVAL, (d, reply, ver))
                else:
                    members = [down[int(k)] for k in gidx.tolist()]
                    mids = np.asarray([m[1] for m in members], dtype=np.int32)
                    self.scheduler.at_many(
                        now + t,
                        BROADCAST_ARRIVAL,
                        mids,
                        payload=(
                            mids,
                            [m[2] for m in members],
                            [m[3] for m in members],
                        ),
                    )

    def _on_availability_change(self, ev) -> None:
        """Churn epoch boundary: re-draw who is online (same rng stream
        family as the synchronous per-round masks, keyed by epoch), park
        departures at their next unit end, wake returners now.

        O(active) churn: the draw is one vectorized mask over the cohort
        id array, the offline set is a population-sized boolean mask
        rebuilt by one scatter, and the only devices *touched* are the
        wakers — parked devices whose state actually flips online."""
        epoch = ev.payload
        rng = self._seeds.generator(epoch, _AVAILABILITY_STREAM)
        cohort_ids = self._cohort_ids
        if self.fleet is not None:
            online_mask = self.env.online_mask_ids(
                epoch, cohort_ids, self._unit_times[cohort_ids], rng
            )
        else:
            online = self.env.available(epoch, self.cohort, rng)
            online_set = {d.device_id for d in online}
            online_mask = np.fromiter(
                (d.device_id in online_set for d in self.cohort),
                dtype=bool,
                count=len(self.cohort),
            )
        new_off = np.zeros(self._id_bound, dtype=bool)
        new_off[cohort_ids[~online_mask]] = True
        self.unavailable_count += int(len(cohort_ids) - online_mask.sum())
        wake = np.flatnonzero(self._parked_mask & ~new_off)
        self._offline_mask = new_off
        if wake.size:
            self._parked_mask[wake] = False
            if self._batch:
                self._begin_units(wake)
            else:
                for dev_id in wake.tolist():
                    self._begin_unit(dev_id)
        self.scheduler.at(
            (epoch + 1) * self._churn_period, AVAILABILITY_CHANGE, epoch + 1
        )

    def _after_aggregate(self) -> None:
        """Bookkeeping after a new global version: periodic round-indexed
        eval (version plays the round's role) and termination."""
        v = self._version
        cfg = self.config
        if v % cfg.eval_every == 0 or v >= cfg.rounds:
            acc, loss = self.evaluate(self.global_weights)
            self.history.record(
                v, self.clock.now, self.meter.server_total, acc, loss
            )
            self.logger.log(
                round=v,
                accuracy=round(acc, 4),
                loss=round(loss, 4),
                transfers=self.meter.server_total,
                vtime=round(self.clock.now, 3),
            )
        if v >= cfg.rounds:
            self._finished = True
            self.scheduler.stop()

    # --------------------------------------------------------------- driver

    def fit(self, initial_weights: np.ndarray | None = None) -> RunResult:
        """Run the event loop until ``config.rounds`` aggregations land."""
        if initial_weights is not None:
            self.global_weights = np.asarray(initial_weights, dtype=np.float64).copy()
        cfg: AsyncServerConfig = self.config  # type: ignore[assignment]
        sched = Scheduler(
            clock=self.clock,
            record_trace=self.record_trace,
            engine=self.scheduler_engine,
        )
        self.scheduler = sched
        self._version = 0
        self._finished = False
        self._deployed_weights = self.global_weights
        self._checkpoint_eval = None

        self.cohort = self._select_cohort()
        ids = [d.device_id for d in self.cohort]
        self._cohort_ids = np.asarray(ids, dtype=np.intp)
        self._all_ids = set(ids)
        self._by_id = {d.device_id: d for d in self.cohort}
        self._unit_time = {d.device_id: d.unit_time for d in self.cohort}
        self._start_model: dict[int, np.ndarray] = {}
        self._base_version = {i: 0 for i in ids}
        self._own_model = {i: self.global_weights for i in ids}
        self._inbox: dict[int, tuple[np.ndarray, int]] = {}
        self._unit_idx = {i: 0 for i in ids}
        # Park/offline state lives in population-sized boolean masks (ids
        # index them directly), so churn epochs and wake-ups are array ops
        # over the cohort instead of per-device set churn.
        self._id_bound = int(self._cohort_ids.max()) + 1 if ids else 1
        self._offline_mask = np.zeros(self._id_bound, dtype=bool)
        self._parked_mask = np.zeros(self._id_bound, dtype=bool)
        self._parked_mask[self._cohort_ids] = True
        if self.fleet is not None:
            self._unit_time_of = np.asarray(self._unit_times, dtype=np.float64)
        else:
            ut = np.zeros(self._id_bound, dtype=np.float64)
            for i in ids:
                ut[i] = self._unit_time[i]
            self._unit_time_of = ut
        self._churn_period = (
            cfg.churn_period
            if cfg.churn_period is not None
            else float(max(self._unit_time.values()))
        )

        # Fault-tolerance state.  The containers exist unconditionally (so
        # handlers can consult them cheaply) but nothing populates them —
        # and no fault event is ever scheduled — unless the machinery is
        # armed by a non-null fault model.
        self._fault_machinery = not self.faults.is_null
        self._crashed: set[int] = set()
        self._suspected: set[int] = set()
        self._crash_detected: dict[int, bool] = {}
        self._unit_events: dict[int, object] = {}
        self._beat_events: dict[int, object] = {}
        self._upload_timers: dict[int, tuple] = {}
        self._upload_seq = 0
        self._last_heard = {i: 0.0 for i in ids}

        sched.on(BROADCAST_ARRIVAL, self._on_broadcast_arrival)
        sched.on(UNIT_COMPLETE, self._on_unit_complete)
        sched.on(UPLOAD_ARRIVAL, self._on_upload_arrival)
        sched.on(AVAILABILITY_CHANGE, self._on_availability_change)
        sched.on(EVAL_CHECKPOINT, self._on_eval_checkpoint)
        if self._fault_machinery:
            self._fault_rng = self._seeds.generator(*_FAULT_ASYNC_STREAM_KEY)
            sched.on(UPLOAD_TIMEOUT, self._on_upload_timeout)
            sched.on(RETRY_UPLOAD, self._on_retry_upload)
            sched.on(DEVICE_CRASH, self._on_device_crash)
            sched.on(DEVICE_RESTART, self._on_device_restart)
            sched.on(HEARTBEAT, self._on_heartbeat)
            sched.on(SUSPECT, self._on_suspect)
            for dev_id in sorted(ids):
                self._schedule_beat(dev_id, cfg.heartbeat_period)
            sched.at(cfg.suspicion_timeout, SUSPECT)
        if not self.env.availability.always_on:
            sched.at(self._churn_period, AVAILABILITY_CHANGE, 1)
        if cfg.eval_time_every is not None:
            sched.at(cfg.eval_time_every, EVAL_CHECKPOINT)

        # Per-device downlink codec references; seeded by provisioning.
        self._down_refs: dict[int, np.ndarray] = {}

        # Batched events need per-member timer-free dispatch: arming the
        # fault machinery (per-member unit cancellation, crash/heartbeat
        # tie ordering) falls back to one event per device.
        self._batch = bool(self.event_batching) and not self._fault_machinery

        # t=0 provisioning: the server pushes the initial model to the
        # whole cohort.  Metered per link but lossless and dense — a fleet
        # is provisioned with the initial model out of band, and a "lost"
        # provisioning push would just re-deliver the identical vector.
        # The dense push establishes every device's downlink reference.
        if self._batch and len(ids) > 1:
            self.meter.record_download(len(ids))
            net = self.env.network
            if net.is_instant:
                lats = np.zeros(len(ids))
            else:
                lats = net.server_transfer_times(self._cohort_ids, 1.0)
            if not self.codec.is_identity:
                for i in ids:
                    self._down_refs[i] = self.global_weights
            for t, group in _wave_groups(lats, self._cohort_ids):
                if len(group) == 1:
                    sched.at(
                        t, BROADCAST_ARRIVAL, (int(group[0]), self.global_weights, 0)
                    )
                else:
                    g32 = np.ascontiguousarray(group, dtype=np.int32)
                    sched.at_many(
                        t,
                        BROADCAST_ARRIVAL,
                        g32,
                        payload=(g32, self.global_weights, 0),
                    )
        else:
            for dev in self.cohort:
                self.meter.record_download(1)
                lat = self.env.network.transfer_time(SERVER, dev.device_id, 1.0)
                sched.at(
                    lat, BROADCAST_ARRIVAL, (dev.device_id, self.global_weights, 0)
                )
                if not self.codec.is_identity:
                    self._down_refs[dev.device_id] = self.global_weights

        sched.run()
        return self._assemble_result()

    def run_round(self, round_idx, participants, global_weights):
        raise NotImplementedError(
            "async servers run on the event loop, not per-round hooks"
        )
