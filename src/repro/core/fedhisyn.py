"""FedHiSyn (Algorithm 1): hierarchical synchronous federated learning.

Per round the server

1. samples the participant set ``S``,
2. clusters participants into ``K`` capacity classes by unit time
   (k-means, Section 4.1),
3. organizes each class into a small-to-large ring (Observation 2),
4. broadcasts the global model to all of ``S``,
5. lets the event engine run the ring training for the round duration —
   each device trains the newest model in its buffer and forwards it;
   devices never idle (Eq. 6/7),
6. collects every participant's last trained model and aggregates with
   uniform (Eq. 9) or class-time (Eq. 10) weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.aggregation import class_time_weighted_average, uniform_average
from repro.core.clustering import cluster_by_capacity
from repro.core.registry import register_method
from repro.core.ring import RING_ORDERS, build_rings
from repro.core.server import FederatedServer, ServerConfig
from repro.datasets.core import ClassificationDataset
from repro.device.device import Device
from repro.device.network import LinkDelayModel
from repro.env.environment import Environment
from repro.simulation.engine import RingRoundEngine
from repro.utils.logging import RunLogger

__all__ = ["FedHiSynConfig", "FedHiSynServer"]


@dataclass
class FedHiSynConfig(ServerConfig):
    """FedHiSyn hyper-parameters on top of the shared server settings.

    The paper sets ``num_classes=10`` at 50%/100% participation and ``2``
    at 10% (Section 6.1); ``aggregation`` selects Eq. 9 ("uniform") or
    Eq. 10 ("class_time").
    """

    num_classes: int = 10
    ring_order: str = "small_to_large"
    aggregation: str = "uniform"
    combine: str = "direct"  # "average" reproduces the Fig. 2 ablation
    clustering_method: str = "kmeans"
    round_length_multiplier: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {self.num_classes}")
        if self.ring_order not in RING_ORDERS:
            raise ValueError(f"ring_order must be one of {RING_ORDERS}")
        if self.aggregation not in ("uniform", "class_time"):
            raise ValueError("aggregation must be 'uniform' or 'class_time'")
        if self.combine not in ("direct", "average"):
            raise ValueError("combine must be 'direct' or 'average'")
        if self.round_length_multiplier <= 0:
            raise ValueError("round_length_multiplier must be positive")


@register_method(
    "fedhisyn",
    config=FedHiSynConfig,
    description="the paper's framework: capacity-clustered ring training",
)
class FedHiSynServer(FederatedServer):
    """The paper's framework (Algorithm 1)."""

    method = "fedhisyn"

    def __init__(
        self,
        devices: Sequence[Device],
        test_set: ClassificationDataset,
        config: FedHiSynConfig | None = None,
        delay_model: LinkDelayModel | None = None,
        logger: RunLogger | None = None,
        env: Environment | None = None,
    ) -> None:
        config = config if config is not None else FedHiSynConfig()
        super().__init__(devices, test_set, config, logger, env=env)
        # Ring hops run over the same environment as the server channel;
        # an explicitly passed delay_model still wins (ablation benches).
        # drop_seed ties peer-hop loss draws to the experiment seed so
        # seed replicates see independent drop patterns (matching the
        # server channel's seeded drop stream).
        self.engine = RingRoundEngine(
            self.devices,
            delay_model=delay_model,
            epochs_per_unit=config.local_epochs,
            combine=config.combine,
            env=self.env,
            drop_seed=config.seed,
        )
        self.last_round_stats = None

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        cfg: FedHiSynConfig = self.config  # type: ignore[assignment]
        ids = self.ids_of(participants)
        times = self.unit_times_of(participants)

        # (1) capacity classes, fastest first (Alg 1 line 4).
        classes = cluster_by_capacity(
            times, min(cfg.num_classes, len(participants)), method=cfg.clustering_method
        )
        # (2) one ring per class (lines 5-6).
        rings = build_rings(
            classes,
            ids,
            times,
            order=cfg.ring_order,
            seed=self._seeds.generator(round_idx, 2),
        )

        # (3) broadcast: one model down per participant.  A device whose
        # pull is lost enters its ring on its previous round's model
        # instead — a lost message is harmless to liveness (Eq. 7).
        # Under a codec everyone who received starts from the decoded view.
        receivers, view = self.broadcast_model(participants, global_weights)
        start = self.start_views(participants, receivers, view)
        # Ring results snapshot into recycled fleet rows for the upload
        # stack below (no-op for lossy envs / plain device lists).
        self.register_round(participants)

        # (4) ring training for the round duration (lines 7-16).  Ring
        # forwards compress against the round's shared broadcast view;
        # after a lossy broadcast there is no shared reference and the
        # hops go dense (codec_reference=None).
        duration = self.round_duration(participants) * cfg.round_length_multiplier
        shared_view = view if not isinstance(start, dict) else None
        stats = self.engine.run_round(
            rings, start, duration, round_idx,
            codec=self.codec, codec_reference=shared_view,
        )
        self.last_round_stats = stats
        if self.codec.is_identity:
            self.peer_send(stats.peer_sends)
        else:
            # One meter entry for the whole round's hops: on-wire units
            # from the engine, raw (uncompressed) units = hop count.
            self.peer_send(
                1, model_units=stats.peer_units,
                raw_units=float(stats.peer_sends),
            )
        self.clock.advance_by(duration)

        # (5) synchronous upload + aggregation (line 17).
        stack = self.stack_weights(participants)
        # Uplink reference: the shared view, or the per-device start dict
        # after a lossy broadcast (collect_models resolves it per sender).
        arrived, stack = self.collect_models(participants, stack, reference=start)
        if cfg.aggregation == "class_time":
            # Each participant's weight is its class's mean unit time;
            # ``classes`` holds positions into the participant order, so
            # this fills the weight vector class-by-class, vectorized.
            weights_vec = np.empty(len(participants))
            for cls in classes:
                weights_vec[cls] = times[cls].mean()
            stack, weights_vec = self.filter_arrived(arrived, stack, weights_vec)
            return class_time_weighted_average(stack, weights_vec)
        (stack,) = self.filter_arrived(arrived, stack)
        return uniform_average(stack)
