"""Ring-topology construction (Section 4.1, Observation 2).

A ring is an ordered list of device ids; each device forwards its trained
model to the next position, and the last wraps to the first ("the device
with the longest local training time is connected to the device with the
shortest").

Orderings:

* ``small_to_large`` — ascending local-training time (the paper's choice),
* ``large_to_small`` — descending (works equally well per Figure 3),
* ``random`` — the strawman that Figure 3 shows losing badly.

When a link-delay matrix matters, the ordering metric generalizes to
``M_i = t_i + D_{i,i+1}`` (Eq. 5); with the paper's equal-delay
simplification the metric reduces to ``t_i`` and is what's implemented on
the default path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["RING_ORDERS", "build_ring", "build_rings", "build_ring_eq5"]

RING_ORDERS = ("small_to_large", "large_to_small", "random")


def build_ring(
    device_ids: Sequence[int],
    unit_times: Sequence[float],
    order: str = "small_to_large",
    seed: int | np.random.Generator | None = 0,
) -> list[int]:
    """Order ``device_ids`` into a ring by their ``unit_times``.

    Ties break by device id so the result is deterministic.  A singleton
    (or empty) input is returned as-is — a one-device "ring" trains alone,
    which Algorithm 1 handles via Eq. (7).
    """
    ids = list(device_ids)
    times = np.asarray(unit_times, dtype=np.float64)
    if len(ids) != times.size:
        raise ValueError(
            f"device_ids ({len(ids)}) and unit_times ({times.size}) disagree"
        )
    if len(ids) <= 1:
        return ids
    if order == "small_to_large":
        ranked = sorted(range(len(ids)), key=lambda i: (times[i], ids[i]))
    elif order == "large_to_small":
        ranked = sorted(range(len(ids)), key=lambda i: (-times[i], ids[i]))
    elif order == "random":
        rng = as_generator(seed)
        ranked = list(rng.permutation(len(ids)))
    else:
        raise ValueError(f"order must be one of {RING_ORDERS}, got {order!r}")
    return [ids[i] for i in ranked]


def build_ring_eq5(
    device_ids: Sequence[int],
    unit_times: Sequence[float],
    delay_model,
) -> list[int]:
    """Ring construction under the *full* Eq. (5) metric
    ``M_i = t_i + D_{i,i+1}``.

    The paper simplifies to equal link delays (where the metric reduces to
    ``t_i`` and :func:`build_ring` applies); with heterogeneous delays the
    successor choice feeds back into the metric, so an exact minimum is a
    TSP.  This implements the natural greedy heuristic: start at the
    fastest device, then repeatedly append the unvisited device minimizing
    ``delay(current, next) + t_next`` — the virtual time until the
    forwarded model has been retrained at the next hop.
    """
    ids = list(device_ids)
    times = np.asarray(unit_times, dtype=np.float64)
    if len(ids) != times.size:
        raise ValueError("device_ids and unit_times disagree in length")
    if len(ids) <= 1:
        return ids
    ids_arr = np.asarray(ids, dtype=np.int64)
    remaining = np.ones(len(ids), dtype=bool)
    current = int(np.argmin(times))
    order = [current]
    remaining[current] = False
    while remaining.any():
        cand = np.flatnonzero(remaining)
        # One vectorized delay-row read per hop instead of a Python min()
        # that calls delay() per candidate — the score is Eq. 5's
        # "time until retrained at the next hop".
        scores = delay_model.delay_row(ids[current], ids_arr[cand]) + times[cand]
        tied = cand[scores == scores.min()]  # ties break by device id
        nxt = int(tied[np.argmin(ids_arr[tied])])
        order.append(nxt)
        remaining[nxt] = False
        current = nxt
    return [ids[i] for i in order]


def build_rings(
    classes: Sequence[np.ndarray],
    device_ids: Sequence[int],
    unit_times: Sequence[float],
    order: str = "small_to_large",
    seed: int | np.random.Generator | None = 0,
) -> list[list[int]]:
    """One ring per capacity class (Algorithm 1 lines 5-6).

    ``classes`` holds positions into ``device_ids``/``unit_times`` as
    produced by :func:`repro.core.clustering.cluster_by_capacity`.
    """
    ids = list(device_ids)
    times = np.asarray(unit_times, dtype=np.float64)
    if len(ids) != times.size:
        raise ValueError("device_ids and unit_times disagree in length")
    rng = as_generator(seed)
    rings = []
    for cls in classes:
        cls = np.asarray(cls, dtype=np.intp)
        rings.append(
            build_ring(
                [ids[i] for i in cls],
                times[cls],
                order=order,
                seed=rng,
            )
        )
    return rings
