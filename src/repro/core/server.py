"""Shared federated-server scaffolding.

Every method in this library (FedHiSyn and the six baselines) is a subclass
of :class:`FederatedServer` that implements a single hook,
:meth:`FederatedServer.run_round`.  The base class owns everything the
paper keeps constant across methods: participant sampling, the virtual
round clock, transmission metering, periodic evaluation, and the RunResult
assembly — so method comparisons differ only in the algorithm itself.

Server↔device traffic flows through the **channel API** —
:meth:`~FederatedServer.broadcast`, :meth:`~FederatedServer.collect`,
:meth:`~FederatedServer.peer_send` — which meters every transfer, charges
link transfer time to the virtual clock and applies the
:class:`~repro.env.environment.Environment`'s message drops, so method
implementations never touch the meter or the network model directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.compression.base import UpdateCodec
from repro.compression.codecs import IdentityCodec
from repro.datasets.core import ClassificationDataset
from repro.device.device import Device
from repro.device.fleet import DeviceFleet
from repro.env.environment import Environment
from repro.faults.model import FaultModel, NoFaults
from repro.nn.serialization import get_flat_params, set_flat_params
from repro.simulation.clock import VirtualClock
from repro.simulation.metrics import (
    MetricsHistory,
    ResilienceStats,
    TransmissionMeter,
)
from repro.simulation.results import RunResult
from repro.simulation.scheduler import (
    DEFAULT_ENGINE,
    EVAL_CHECKPOINT,
    ROUND_BARRIER,
    Scheduler,
    completed_units,
    completed_units_array,
)
from repro.transport.base import Transport
from repro.transport.sim import SimTransport
from repro.utils.config import (
    validate_fraction,
    validate_non_negative,
    validate_positive,
)
from repro.utils.logging import NullLogger, RunLogger
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ServerConfig", "FederatedServer"]

#: Keyed rng streams (SeedSequenceFactory spawn keys) owned by the base
#: server.  Participant sampling uses ``(round, 1)`` and ring building
#: ``(round, 2)``; the environment streams below are new keys, so enabling
#: a non-ideal environment never perturbs the training streams.
_AVAILABILITY_STREAM = 3  # (round_idx, 3): per-round availability draws
_DROP_STREAM_KEY = (0, 101)  # persistent message-drop stream (rounds are >= 1)
#: Fault-injection streams (repro.faults) — a third key family, disjoint
#: from both the training/selection streams above and the environment's
#: 100-series, so arming a fault model never perturbs a clean run's draws.
_FAULT_MEMBER_STREAM_KEY = (0, 200)  # one-time byzantine membership draw
_FAULT_ROUND_STREAM = 201  # (round_idx, 201): per-round sync fault draws
_FAULT_ASYNC_STREAM_KEY = (0, 202)  # persistent async fault stream


@dataclass
class ServerConfig:
    """Settings the paper holds constant across methods (Section 6.1)."""

    rounds: int = 100
    participation: float = 1.0  # per-device probability of joining a round
    local_epochs: int = 5  # epochs per training unit
    eval_every: int = 1  # evaluate the global model every k rounds
    # Virtual-time-indexed evaluation: when set, the scheduler fires an
    # eval_checkpoint event every ``eval_time_every`` units of virtual time
    # and the deployed model's metrics land in the history's checkpoint
    # series — the time-to-accuracy sampling process.  None = round-end
    # evals only (the paper's convention).
    eval_time_every: float | None = None
    # Fault tolerance (repro.faults): a synchronous round closes at
    # ``round_deadline`` virtual-time units — whoever has not finished by
    # then is dropped and the *deadline* is charged to the clock, not the
    # straggler.  ``over_select`` compensates by inflating the Bernoulli
    # participation to ``p * (1 + over_select)`` so enough updates still
    # land.  None/0.0 keep the paper's wait-for-everyone semantics
    # bit-identically.
    round_deadline: float | None = None
    over_select: float = 0.0
    seed: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_positive(self.rounds, "rounds")
        validate_fraction(self.participation, "participation")
        validate_positive(self.local_epochs, "local_epochs")
        validate_positive(self.eval_every, "eval_every")
        if self.eval_time_every is not None:
            validate_positive(self.eval_time_every, "eval_time_every")
        if self.round_deadline is not None:
            validate_positive(self.round_deadline, "round_deadline")
        validate_non_negative(self.over_select, "over_select")


class FederatedServer:
    """Template-method FL server on virtual time.

    Subclasses set ``method`` and implement ``run_round(round_idx,
    participants, global_weights) -> new_global_weights``; they move models
    through :meth:`broadcast`/:meth:`collect`/:meth:`peer_send` (which own
    all metering and environment effects) and advance ``self.clock`` by the
    round's compute duration.
    """

    method = "base"

    #: Event-queue engine the server's Scheduler runs on — ``"calendar"``
    #: (the bucketed wheel) by default; tests pin ``"heap"`` to compare
    #: whole event traces across engines.  Class-level so one assignment
    #: flips a subclass or an instance alike.
    scheduler_engine = DEFAULT_ENGINE

    def __init__(
        self,
        devices: Sequence[Device] | DeviceFleet,
        test_set: ClassificationDataset,
        config: ServerConfig | None = None,
        logger: RunLogger | None = None,
        env: Environment | None = None,
    ) -> None:
        if not len(devices):
            raise ValueError("need at least one device")
        self.test_set = test_set
        self.config = config if config is not None else ServerConfig()
        self.logger = logger if logger is not None else NullLogger()
        self.env = env if env is not None else Environment.ideal()
        if isinstance(devices, DeviceFleet):
            # Fleet mode: the population lives in struct-of-arrays storage;
            # `self.devices` keeps the sequence protocol (facades are built
            # lazily per participant, never for idle devices).
            self.fleet = devices
            self.devices: Sequence[Device] = devices
            self.trainer = devices.trainer
            self._unit_times = devices.unit_times
            # With lossless channels nothing reads a device's weights
            # across rounds, so fleet rows can be recycled per round —
            # the O(dim x participants) peak-memory mode.
            self.fleet.retain_history = self.env.network.drop_prob > 0.0
        else:
            self.fleet = None
            self.devices = list(devices)
            self.trainer = self.devices[0].trainer
            for d in self.devices:
                if d.trainer is not self.trainer:
                    raise ValueError("all devices must share one LocalTrainer")
            # Device ids of a hand-built list need not equal positions, so
            # the id-indexed array fast paths are fleet-only.
            self._unit_times = None
        self.meter = TransmissionMeter()
        self.meter.bytes_per_unit = 8.0 * self.trainer.dim
        self.clock = VirtualClock()
        self.history = MetricsHistory()
        # The discrete-event runtime driving fit(); built fresh per fit()
        # call around the current clock (see the event-driven driver).
        self.scheduler: Scheduler | None = None
        self._seeds = SeedSequenceFactory(self.config.seed)
        self.global_weights = get_flat_params(self.trainer.model)
        # Optional pluggable selection policy (repro.core.selection);
        # None = the paper's Bernoulli(participation) sampling below.
        self.selection_policy = None
        # Update codec (repro.compression) every model-carrying channel
        # call routes through; the identity default is fast-pathed so
        # codec="none" stays bit-identical to pre-codec runs.  Assigned
        # post-construction by build_experiment, like selection_policy.
        self.codec: UpdateCodec = IdentityCodec()
        # Last model the population decoded from a server broadcast — the
        # downlink delta/residual reference shared by server and devices.
        self._codec_down_ref: np.ndarray | None = None
        # Transport backend (repro.transport): who executes a round's
        # device training and over what medium the bytes move.  The sim
        # default keeps everything in-process and bit-identical; assigned
        # post-construction by build_experiment, like selection_policy.
        self.transport: Transport = SimTransport()
        self.transport.bind(self)
        # Batched cross-device training engine (repro.device.batched): when
        # installed, SimTransport (and SCAFFOLD's inline loop) train a whole
        # round as stacked GEMMs over the (participants, dim) arena.  Off by
        # default on direct construction so hand-built servers keep the
        # sequential path; build_experiment enables it via
        # set_device_batching(spec.device_batching).
        self.batched_trainer = None
        # The round currently executing — non-sim transports need it for
        # round-scoped transfers issued from round-blind channel calls.
        self.current_round = 0
        # Fault injection (repro.faults): the null model is fast-pathed —
        # no fault streams are opened, no deadline logic runs.  Assigned
        # post-construction via set_faults, like selection_policy/codec.
        self.faults: FaultModel = NoFaults()
        self.resilience = ResilienceStats()
        # Channel bookkeeping: messages lost to the environment, offline
        # device-rounds — observability for the robustness benches.
        self.dropped_messages = 0
        self.unavailable_count = 0
        self._drop_rng: np.random.Generator | None = None
        # Cache of the last selection: the participant list handed to
        # run_round plus its aligned id array, so helpers that receive
        # that same list back (the common lossless case) skip rebuilding
        # ids from Python objects.
        self._round_list: list[Device] | None = None
        self._round_ids: np.ndarray | None = None

    # ---------------------------------------------------------------- hooks

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------ machinery

    @property
    def expected_participants(self) -> float:
        """Expected per-round participant count — the Table 1 denominator's
        participant term.  A plugged-in selection policy that admits a
        different fraction than ``config.participation`` must be normalized
        by what it actually admits, or cost-to-target numbers silently stop
        being comparable across policies."""
        if self.selection_policy is not None:
            fraction = getattr(self.selection_policy, "expected_fraction", None)
            if fraction is not None:
                return fraction * len(self.devices)
        return self.config.participation * len(self.devices)

    @property
    def per_round_unit(self) -> float:
        """Server transfers of one FedAvg round at the same participation:
        a broadcast down and an upload back for each expected participant."""
        return 2.0 * self.expected_participants

    @property
    def _participation(self) -> float:
        """Effective Bernoulli participation: the configured probability
        inflated by the over-selection margin (sample ``k*(1+margin)`` so
        a deadline round still lands enough updates).  The margin is
        deliberately *not* folded into :attr:`expected_participants` —
        over-selection is insurance, and its extra transfers must show up
        in the relative-cost metrics rather than re-normalize them away."""
        margin = self.config.over_select
        if margin > 0.0:
            return min(1.0, self.config.participation * (1.0 + margin))
        return self.config.participation

    def _bernoulli_ids(self, rng: np.random.Generator) -> np.ndarray:
        """Fleet-path Bernoulli(participation) draw over device *ids*,
        at least one.  The sampling core shared by the per-round selection
        and the async cohort draw — one place for the mask, the empty-draw
        fallback and their rng consumption order."""
        p = self._participation
        if p >= 1.0:
            return self.fleet.device_ids
        mask = rng.random(len(self.fleet)) < p
        ids = np.flatnonzero(mask)
        if not len(ids):
            ids = np.array([int(rng.integers(len(self.fleet)))], dtype=np.intp)
        return ids

    def _bernoulli_devices(self, rng: np.random.Generator) -> list[Device]:
        """Object-path twin of :meth:`_bernoulli_ids` (identical draws)."""
        p = self._participation
        if p >= 1.0:
            return list(self.devices)
        mask = rng.random(len(self.devices)) < p
        chosen = [d for d, m in zip(self.devices, mask) if m]
        if not chosen:
            chosen = [self.devices[rng.integers(len(self.devices))]]
        return chosen

    def select_participants(self, round_idx: int) -> list[Device]:
        """Bernoulli(participation) per device, at least one participant.

        The paper: "each device has a 100%, 50%, and 10% chance of
        participating in the training."  The sampled set is then filtered
        through the environment's availability model (offline devices were
        picked but never show up), still guaranteeing one participant.

        With a fleet the whole selection runs as array ops over device
        *ids* — mask, availability, transfer charging never touch a
        Python object — and facades are materialized only for the final
        participant set.  Both paths consume identical rng draws, so a
        fleet-backed run is bit-for-bit the device-list run.
        """
        rng = self._seeds.generator(round_idx, 1)
        if self.fleet is not None and self.selection_policy is None:
            ids = self._bernoulli_ids(rng)
            if not self.env.availability.always_on:
                online = self.env.available_ids(
                    round_idx,
                    ids,
                    self._unit_times[ids],
                    self._seeds.generator(round_idx, _AVAILABILITY_STREAM),
                )
                self.unavailable_count += len(ids) - len(online)
                ids = online
            chosen = list(map(self.fleet.device, ids.tolist()))
            self._round_list = chosen
            self._round_ids = np.asarray(ids, dtype=np.intp)
            return chosen
        if self.selection_policy is not None:
            chosen = self.selection_policy.select(round_idx, self.devices, rng)
        else:
            chosen = self._bernoulli_devices(rng)
        if not self.env.availability.always_on:
            online = self.env.available(
                round_idx,
                chosen,
                self._seeds.generator(round_idx, _AVAILABILITY_STREAM),
            )
            self.unavailable_count += len(chosen) - len(online)
            chosen = online
        self._round_list = chosen
        self._round_ids = None
        return chosen

    # ------------------------------------------------------ fault machinery

    def set_faults(self, model: FaultModel) -> None:
        """Install a fault model and run its one-time population draws.

        Membership (which devices are byzantine) comes from the dedicated
        ``(0, 200)`` stream, so arming a model perturbs no training,
        selection, availability or codec randomness.
        """
        self.faults = model
        if not model.is_null:
            model.attach(
                len(self.devices),
                self._seeds.generator(*_FAULT_MEMBER_STREAM_KEY),
            )

    def set_device_batching(self, mode: str) -> None:
        """Enable (``"auto"``) or disable (``"off"``) the batched engine.

        ``"auto"`` installs a :class:`~repro.device.batched.BatchedTrainer`
        when the population is a fleet and the model is batchable
        (Dense/ReLU stacks under softmax cross-entropy); anything else —
        per-object device lists, CNNs, custom layers — silently keeps the
        sequential path, since batching is an execution strategy, not a
        semantic knob.
        """
        if mode not in ("auto", "off"):
            raise ValueError(f"device_batching must be 'auto' or 'off', got {mode!r}")
        self.batched_trainer = None
        if mode == "off" or self.fleet is None:
            return
        from repro.device.batched import BatchedTrainer

        if BatchedTrainer.supports(self.trainer.model):
            self.batched_trainer = BatchedTrainer(self.trainer, self.fleet)

    @property
    def faults_active(self) -> bool:
        """True when the round path must run fault/deadline logic at all —
        the inverse of the ``faults="none"`` + no-deadline fast path."""
        return not self.faults.is_null or self.config.round_deadline is not None

    def charge_round(
        self,
        round_idx: int,
        receivers: list[Device],
        duration: float,
        stack: np.ndarray,
        arrived: list[int],
    ) -> tuple[list[int], np.ndarray]:
        """Close a barrier round's compute phase: inject faults, apply the
        deadline, charge the clock.

        The FedAvg-family replacement for the bare
        ``clock.advance_by(duration)``.  On the fast path (no fault model,
        no deadline) it *is* exactly that call — zero extra draws, the
        same objects returned.  Otherwise per-participant completion times
        are drawn from the round's fault stream, byzantine rows are
        corrupted (on a copy — device state stays honest), late uploads
        are cut by ``config.round_deadline``, and the clock is charged
        the deadline rather than the slowest straggler.
        """
        if not self.faults_active:
            self.clock.advance_by(duration)
            return arrived, stack
        res = self.resilience
        n = len(receivers)
        completion = np.full(n, float(duration))
        if not self.faults.is_null:
            rng = self._seeds.generator(round_idx, _FAULT_ROUND_STREAM)
            ids = self.ids_of(receivers)
            effects = self.faults.round_effects(ids, duration, rng)
            completion = duration * effects.factors + effects.extra
            res.injected_crashes += effects.crashes
            res.injected_slowdowns += effects.slowdowns
            res.wasted_time += effects.lost_time
            byz = [i for i in arrived if self.faults.is_byzantine(int(ids[i]))]
            if byz:
                # Corrupt a detached copy: in recycled-arena mode the rows
                # are the devices' live weights, and a byzantine device
                # lies on the wire while training honestly.
                stack = np.array(stack)
                for i in byz:
                    stack[i] = self.faults.corrupt(stack[i], int(ids[i]), rng)
                    res.injected_corruptions += 1
        deadline = self.config.round_deadline
        if deadline is None:
            charge = float(completion[arrived].max()) if arrived else duration
        else:
            landed = [i for i in arrived if completion[i] <= deadline]
            if len(landed) < len(arrived):
                res.deadline_hits += 1
                res.dropped_updates += len(arrived) - len(landed)
                res.wasted_time += float(
                    sum(completion[i] for i in arrived if completion[i] > deadline)
                )
                if landed:
                    charge = float(deadline)
                else:
                    # A server must aggregate something: wait for the
                    # earliest finisher (and pay for the overrun).
                    best = min(arrived, key=lambda i: completion[i])
                    landed = [best]
                    charge = float(completion[best])
                arrived = landed
            else:
                charge = float(completion[arrived].max()) if arrived else duration
        self.clock.advance_by(charge)
        return arrived, stack

    # ------------------------------------------------------- fleet helpers

    def ids_of(self, devices: list[Device]) -> np.ndarray:
        """Device-id array aligned with ``devices``.

        Free when ``devices`` is the list :meth:`select_participants`
        produced this round (the lossless-channel common case); otherwise
        one pass over the objects.
        """
        if devices is self._round_list and self._round_ids is not None:
            return self._round_ids
        return np.fromiter(
            (d.device_id for d in devices), dtype=np.intp, count=len(devices)
        )

    def unit_times_of(self, devices: list[Device]) -> np.ndarray:
        """Per-device unit times aligned with ``devices``, vectorized."""
        if self.fleet is not None:
            return self._unit_times[self.ids_of(devices)]
        return np.array([d.unit_time for d in devices], dtype=np.float64)

    def counts_of(self, devices: list[Device]) -> np.ndarray:
        """Per-device sample counts aligned with ``devices``."""
        if self.fleet is not None:
            return self.fleet.num_samples[self.ids_of(devices)]
        return np.array([d.num_samples for d in devices])

    def local_epochs_for(self, device: Device, duration: float) -> int:
        """Maximum achievable epochs within the round (paper Section 6.1):
        ``floor(duration / unit_time)`` units, at least one.  The
        per-device hook; override to change the epoch budget policy."""
        return completed_units(duration, device.unit_time) * self.config.local_epochs

    def epochs_for(self, devices: list[Device], duration: float) -> np.ndarray:
        """Achievable local epochs per device within ``duration``.

        The vectorized form of :meth:`local_epochs_for`; a subclass that
        overrides the per-device hook is honored (the loop form runs), so
        the two can never disagree.
        """
        if type(self).local_epochs_for is not FederatedServer.local_epochs_for:
            return np.array(
                [self.local_epochs_for(d, duration) for d in devices]
            )
        times = self.unit_times_of(devices)
        return completed_units_array(duration, times) * self.config.local_epochs

    def round_rows(self, devices: list[Device]) -> np.ndarray:
        """``(len(devices), dim)`` training stack for this round.

        In recycled-fleet mode (lossless channels) the rows *are* the
        devices' weight rows — training with ``run_unit(..., out=row)``
        lands results directly in fleet state with zero extra copies, and
        the arena is reused every round.  Otherwise a plain scratch
        matrix: ``run_unit`` snapshots results into per-device rows via
        the ``weights`` setter, preserving drop-fallback history.
        """
        if self.fleet is not None and not self.fleet.retain_history:
            return self.fleet.round_matrix(self.ids_of(devices))
        return np.empty((len(devices), self.trainer.dim))

    @property
    def rows_live(self) -> bool:
        """True when :meth:`round_rows` hands out *registered* fleet rows:
        training into them updates device state directly, so callers skip
        the per-device ``weights`` sync entirely."""
        return self.fleet is not None and not self.fleet.retain_history

    def register_round(self, devices: list[Device]) -> None:
        """Pin this round's devices to recycled fleet rows.

        For methods whose training results are staged elsewhere (FedAT
        tier stacks, the ring engine, async mixing): every ``weights``
        assignment during the round then snapshots into the reused arena
        instead of materializing per-device rows that outlive the round.
        No-op without a fleet or when history must be retained.
        """
        if self.fleet is not None and not self.fleet.retain_history:
            self.fleet.round_matrix(self.ids_of(devices))

    def stack_weights(self, devices: list[Device]) -> np.ndarray:
        """Stacked current weights of ``devices`` (aggregation input)."""
        if self.fleet is not None:
            return self.fleet.stack_weights(self.ids_of(devices))
        return np.stack([d.weights for d in devices])

    def train_round(
        self,
        receivers: list[Device],
        stack: np.ndarray,
        epochs: np.ndarray,
        round_idx: int,
        global_weights: np.ndarray,
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
    ) -> None:
        """One training unit per receiver, results into ``stack`` rows.

        The FedAvg-family inner loop, delegated to the transport backend:
        the sim default trains in-process (bit-identical to when this
        loop lived here, see :class:`~repro.transport.sim.SimTransport`);
        the live backend ships the round to worker processes over UDP and
        reassembles their uploads into the same rows.
        """
        self.transport.train_round(
            self,
            receivers,
            stack,
            epochs,
            round_idx,
            global_weights,
            anchor=anchor,
            mu=mu,
        )

    # -------------------------------------------------------- channel API

    def broadcast(
        self,
        receivers: list[Device],
        model_units: float = 1.0,
        ensure_one: bool = True,
    ) -> list[Device]:
        """Server -> device push of the current model (or model + state).

        Meters one download per receiver (sent, not delivered — a lost
        message still crossed the costed channel), charges the slowest
        link's transfer time to the virtual clock, and returns the devices
        the message actually reached.  ``ensure_one=True`` (round-level
        calls) guarantees at least one delivery so a round can never stall;
        event-level callers (FedAT tier rounds, TAFedAvg replies) pass
        ``False`` and handle an empty delivery themselves.
        """
        if not receivers:
            return []
        self.meter.record_download(len(receivers), model_units)
        self._charge_transfer(receivers, model_units)
        return self._apply_drops(receivers, ensure_one)

    def collect(
        self,
        senders: list[Device],
        model_units: float = 1.0,
        ensure_one: bool = True,
    ) -> list[int]:
        """Device -> server uploads after local training.

        Meters one upload per sender, charges the slowest uplink to the
        clock, and returns the *indices* (into ``senders``) whose upload
        survived message drops — the aggregation step filters its stacked
        updates by them.  Indices are always returned in ascending order.
        """
        if not senders:
            return []
        self.meter.record_upload(len(senders), model_units)
        self._charge_transfer(senders, model_units)
        return self._apply_drops(list(range(len(senders))), ensure_one)

    def broadcast_model(
        self,
        receivers: list[Device],
        weights: np.ndarray,
        extra_units: float = 0.0,
        ensure_one: bool = True,
    ) -> tuple[list[Device], np.ndarray]:
        """Codec-aware :meth:`broadcast`: push ``weights`` down the wire.

        Returns ``(delivered, view)`` where ``view`` is the model the
        receivers actually obtain — ``weights`` itself under the identity
        codec (fast path: delegates to :meth:`broadcast`, bit-identical),
        the codec's decoded reconstruction otherwise.  The decoded view
        becomes the new shared downlink reference, so successive
        broadcasts compress against what the population last received.
        ``extra_units`` rides along uncompressed (SCAFFOLD's control
        variate — server state, not a model update).
        """
        if not receivers:
            return [], weights
        if not self.transport.is_sim:
            return self.transport.broadcast_model(
                self, receivers, weights, extra_units, ensure_one
            )
        codec = self.codec
        if codec.is_identity:
            return self.broadcast(receivers, 1.0 + extra_units, ensure_one), weights
        enc = codec.encode(weights, key="server-down", reference=self._codec_down_ref)
        units = enc.model_units + extra_units
        self.meter.record_download(len(receivers), units, raw_units=1.0 + extra_units)
        self._charge_transfer(receivers, units)
        delivered = self._apply_drops(receivers, ensure_one)
        view = codec.decode(enc)
        self._codec_down_ref = view
        return delivered, view

    def collect_models(
        self,
        senders: list[Device],
        stack: np.ndarray,
        reference: np.ndarray | dict[int, np.ndarray] | None = None,
        extra_units: float = 0.0,
        ensure_one: bool = True,
    ) -> tuple[list[int], np.ndarray]:
        """Codec-aware :meth:`collect`: upload ``stack``'s rows (row i is
        ``senders[i]``'s trained model).

        Returns ``(arrived, decoded)``: the surviving indices plus the
        stack the server actually reconstructs — ``stack`` itself under
        the identity codec (fast path, same object, bit-identical),
        otherwise a fresh array of per-sender decodes.  ``reference`` is
        the model each sender trained from (the broadcast view, or a
        :meth:`start_views` dict keyed by device id after a lossy
        broadcast); senders without one upload dense.  Per-sender wire
        sizes differ, so the clock charge uses the per-link unit vector.
        """
        if not senders:
            return [], stack
        if not self.transport.is_sim:
            return self.transport.collect_models(
                self, senders, stack, reference, extra_units, ensure_one
            )
        codec = self.codec
        if codec.is_identity:
            return (
                self.collect(senders, 1.0 + extra_units, ensure_one),
                stack,
            )
        decoded = np.empty((len(senders), stack.shape[1]), dtype=np.float64)
        units = np.empty(len(senders), dtype=np.float64)
        by_id = reference if isinstance(reference, dict) else None
        for i, dev in enumerate(senders):
            ref = by_id.get(dev.device_id) if by_id is not None else reference
            enc = codec.encode(stack[i], key=int(dev.device_id), reference=ref)
            units[i] = enc.model_units + extra_units
            decoded[i] = codec.decode(enc)
        self.meter.record_upload(
            1, float(units.sum()), raw_units=len(senders) * (1.0 + extra_units)
        )
        self._charge_transfer(senders, units)
        arrived = self._apply_drops(list(range(len(senders))), ensure_one)
        return arrived, decoded

    def start_views(
        self,
        participants: list[Device],
        receivers: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray | dict[int, np.ndarray]:
        """Per-device training start model after a (possibly lossy) broadcast.

        The companion to :meth:`broadcast`: receivers start from the global
        model; a device whose pull was lost continues its previous weights
        (or the global model when it has none yet — round one).  Returns
        the plain global vector when everyone received, so the lossless
        path allocates nothing.
        """
        if len(receivers) == len(participants):
            return global_weights
        got = {d.device_id for d in receivers}
        return {
            d.device_id: (
                global_weights
                if d.device_id in got or d.weights is None
                else d.weights
            )
            for d in participants
        }

    @staticmethod
    def filter_arrived(
        arrived: list[int], *arrays: np.ndarray
    ) -> tuple[np.ndarray, ...]:
        """Slice per-sender stacked arrays down to the uploads that arrived.

        The companion to :meth:`collect`: pass the stacked updates (and any
        aligned per-sender vectors) and get them filtered by the surviving
        indices.  When everything arrived the inputs are returned unchanged
        (same objects — the ``ideal`` bit-identity path).
        """
        if not arrays or len(arrived) == len(arrays[0]):
            return arrays
        return tuple(a[arrived] for a in arrays)

    def peer_send(
        self,
        count: int = 1,
        model_units: float = 1.0,
        raw_units: float | None = None,
    ) -> None:
        """Meter device-to-device hops (ring forwards).  Delays and drops
        for peer traffic are applied inside the ring engine, which reads
        the same environment's network model.  ``raw_units`` carries the
        uncompressed size when the hops went through a codec."""
        self.meter.record_peer(count, model_units, raw_units)

    def _charge_transfer(
        self, devices: list[Device], model_units: float | np.ndarray
    ) -> None:
        """Advance the clock by the slowest link's transfer time.

        Contract: a round's wall-clock time is compute (the method's
        ``advance_by(duration)``) plus every channel call's slowest-link
        transfer time; under ``ideal`` the transfer term is exactly zero
        and the clock is untouched.  ``model_units`` may be a per-device
        array (codec uploads have per-sender wire sizes).
        """
        if self.fleet is not None:
            t = self.env.server_transfer_time_ids(
                self.ids_of(devices), model_units
            )
        else:
            t = self.env.server_transfer_time(devices, model_units)
        if t > 0.0:
            self.clock.advance_by(t)

    def _apply_drops(self, items: list, ensure_one: bool) -> list:
        """Independently drop each message with the network's drop_prob.

        Returns ``items`` unchanged (same object, no rng draw) when the
        environment never drops — the bit-identity fast path.
        """
        p = self.env.network.drop_prob
        if p <= 0.0:
            return items
        if self._drop_rng is None:
            self._drop_rng = self._seeds.generator(*_DROP_STREAM_KEY)
        rng = self._drop_rng
        mask = rng.random(len(items)) >= p
        kept = [item for item, ok in zip(items, mask) if ok]
        if not kept and ensure_one:
            kept = [items[int(rng.integers(len(items)))]]
        self.dropped_messages += len(items) - len(kept)
        return kept

    def _drop_one(self) -> bool:
        """One message's loss draw from the persistent drop stream — the
        event-level twin of :meth:`_apply_drops` for channels that move
        single messages (the async servers' per-link sends).  No draw (and
        never a loss) when the environment is lossless."""
        p = self.env.network.drop_prob
        if p <= 0.0:
            return False
        if self._drop_rng is None:
            self._drop_rng = self._seeds.generator(*_DROP_STREAM_KEY)
        if self._drop_rng.random() < p:
            self.dropped_messages += 1
            return True
        return False

    def round_duration(self, participants: list[Device]) -> float:
        """Paper convention: the slowest participant's unit time."""
        if self.fleet is not None:
            return float(self.unit_times_of(participants).max())
        return max(d.unit_time for d in participants)

    def evaluate(self, weights: np.ndarray) -> tuple[float, float]:
        """(accuracy, loss) of ``weights`` on the held-out test set.

        One fused pass: each test batch is forwarded once for both metrics.
        """
        model = self.trainer.model
        set_flat_params(model, weights)
        return model.evaluate_metrics(self.test_set.x, self.test_set.y)

    # ------------------------------------------------- event-driven driver

    def fit(self, initial_weights: np.ndarray | None = None) -> RunResult:
        """Run ``config.rounds`` rounds on the discrete-event scheduler.

        A synchronous method is the *degenerate schedule*: one
        ``round_barrier`` event per round, each handler running the whole
        round (which advances the shared clock by its transfer + compute
        time) and pushing the next barrier at the new now.  The clock, the
        rng streams and every recorded float are identical to the old
        ``for round in range(rounds)`` loop — but the run now shares its
        runtime with the asynchronous methods, and time-indexed
        ``eval_checkpoint`` events interleave with the barriers whenever
        ``config.eval_time_every`` is set.
        """
        if initial_weights is not None:
            self.global_weights = np.asarray(initial_weights, dtype=np.float64).copy()
        sched = Scheduler(clock=self.clock, engine=self.scheduler_engine)
        self.scheduler = sched
        # The model the outside world sees *during* the round currently
        # executing — what a time-indexed checkpoint inside the round's
        # clock jump must evaluate (the aggregation lands only at its end).
        self._deployed_weights = self.global_weights
        self._checkpoint_eval: tuple | None = None
        sched.on(ROUND_BARRIER, self._on_round_barrier)
        sched.on(EVAL_CHECKPOINT, self._on_eval_checkpoint)
        if self.config.eval_time_every is not None:
            sched.at(self.clock.now + self.config.eval_time_every, EVAL_CHECKPOINT)
        sched.at(self.clock.now, ROUND_BARRIER, 1)
        sched.run()
        return self._assemble_result()

    def _on_round_barrier(self, ev) -> None:
        """One synchronous round; schedules its successor at the new now."""
        r = ev.payload
        cfg = self.config
        self.current_round = r
        self._deployed_weights = self.global_weights
        participants = self.select_participants(r)
        self.global_weights = self.run_round(r, participants, self.global_weights)
        if r % cfg.eval_every == 0 or r == cfg.rounds:
            acc, loss = self.evaluate(self.global_weights)
            self.history.record(
                r, self.clock.now, self.meter.server_total, acc, loss
            )
            self.logger.log(
                round=r,
                accuracy=round(acc, 4),
                loss=round(loss, 4),
                transfers=self.meter.server_total,
                vtime=round(self.clock.now, 3),
            )
        if r < cfg.rounds:
            self.scheduler.at(self.clock.now, ROUND_BARRIER, r + 1)
        else:
            # Drain checkpoints that matured during the final round, then
            # halt — future-dated ones must not drag the clock onward.
            self.scheduler.finish_at(self.clock.now)

    def _on_eval_checkpoint(self, ev) -> None:
        """Time-indexed evaluation of the model deployed at ``ev.time``.

        Synchronous rounds jump the clock, so a checkpoint nominally due
        mid-round fires (lagged) right after the round's barrier; it
        evaluates the *pre-aggregation* model — the one the world was
        actually serving at the checkpoint's nominal time — and records
        under that nominal time.  Transfers are metered as of the covering
        aggregation (virtual time and the meter advance atomically per
        round, so no finer attribution exists).

        Several checkpoints maturing inside one clock jump see the same
        deployed vector, so its metrics are computed once and shared
        (aggregations *replace* the global vector, making object identity
        a sound cache key).
        """
        weights = self._deployed_weights
        cached = self._checkpoint_eval
        if cached is None or cached[0] is not weights:
            acc, loss = self.evaluate(weights)
            self._checkpoint_eval = (weights, acc, loss)
        else:
            _, acc, loss = cached
        self.history.record_time_checkpoint(
            ev.time, self.meter.server_total, acc, loss
        )
        self.scheduler.at(
            ev.time + self.config.eval_time_every, EVAL_CHECKPOINT
        )

    def _assemble_result(self) -> RunResult:
        """The RunResult of the history/weights accumulated by a driver."""
        cfg = self.config
        return RunResult(
            method=self.method,
            dataset=self.test_set.name,
            history=self.history,
            final_weights=self.global_weights,
            per_round_unit=self.per_round_unit,
            config={
                "rounds": cfg.rounds,
                "participation": cfg.participation,
                "local_epochs": cfg.local_epochs,
                "seed": cfg.seed,
                **cfg.extra,
            },
            transport={**self.meter.snapshot(), **self.transport.stats()},
            transport_backend=self.transport.name,
            resilience=(
                self.resilience.snapshot()
                if self.faults_active or self.resilience.active()
                else {}
            ),
        )
