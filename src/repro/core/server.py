"""Shared federated-server scaffolding.

Every method in this library (FedHiSyn and the six baselines) is a subclass
of :class:`FederatedServer` that implements a single hook,
:meth:`FederatedServer.run_round`.  The base class owns everything the
paper keeps constant across methods: participant sampling, the virtual
round clock, transmission metering, periodic evaluation, and the RunResult
assembly — so method comparisons differ only in the algorithm itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.device.device import Device
from repro.nn.serialization import get_flat_params, set_flat_params
from repro.simulation.clock import VirtualClock
from repro.simulation.metrics import MetricsHistory, TransmissionMeter
from repro.simulation.results import RunResult
from repro.utils.config import validate_fraction, validate_positive
from repro.utils.logging import NullLogger, RunLogger
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ServerConfig", "FederatedServer"]


@dataclass
class ServerConfig:
    """Settings the paper holds constant across methods (Section 6.1)."""

    rounds: int = 100
    participation: float = 1.0  # per-device probability of joining a round
    local_epochs: int = 5  # epochs per training unit
    eval_every: int = 1  # evaluate the global model every k rounds
    seed: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_positive(self.rounds, "rounds")
        validate_fraction(self.participation, "participation")
        validate_positive(self.local_epochs, "local_epochs")
        validate_positive(self.eval_every, "eval_every")


class FederatedServer:
    """Template-method FL server on virtual time.

    Subclasses set ``method`` and implement ``run_round(round_idx,
    participants, global_weights) -> new_global_weights``; they must record
    their transfers on ``self.meter`` and advance ``self.clock``.
    """

    method = "base"

    def __init__(
        self,
        devices: Sequence[Device],
        test_set: ClassificationDataset,
        config: ServerConfig | None = None,
        logger: RunLogger | None = None,
    ) -> None:
        if not devices:
            raise ValueError("need at least one device")
        self.devices = list(devices)
        self.test_set = test_set
        self.config = config if config is not None else ServerConfig()
        self.logger = logger if logger is not None else NullLogger()
        self.trainer = self.devices[0].trainer
        for d in self.devices:
            if d.trainer is not self.trainer:
                raise ValueError("all devices must share one LocalTrainer")
        self.meter = TransmissionMeter()
        self.clock = VirtualClock()
        self.history = MetricsHistory()
        self._seeds = SeedSequenceFactory(self.config.seed)
        self.global_weights = get_flat_params(self.trainer.model)
        # Optional pluggable selection policy (repro.core.selection);
        # None = the paper's Bernoulli(participation) sampling below.
        self.selection_policy = None

    # ---------------------------------------------------------------- hooks

    def run_round(
        self,
        round_idx: int,
        participants: list[Device],
        global_weights: np.ndarray,
    ) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------ machinery

    @property
    def expected_participants(self) -> float:
        """Expected per-round participant count — the Table 1 denominator's
        participant term.  A plugged-in selection policy that admits a
        different fraction than ``config.participation`` must be normalized
        by what it actually admits, or cost-to-target numbers silently stop
        being comparable across policies."""
        if self.selection_policy is not None:
            fraction = getattr(self.selection_policy, "expected_fraction", None)
            if fraction is not None:
                return fraction * len(self.devices)
        return self.config.participation * len(self.devices)

    @property
    def per_round_unit(self) -> float:
        """Server transfers of one FedAvg round at the same participation:
        a broadcast down and an upload back for each expected participant."""
        return 2.0 * self.expected_participants

    def select_participants(self, round_idx: int) -> list[Device]:
        """Bernoulli(participation) per device, at least one participant.

        The paper: "each device has a 100%, 50%, and 10% chance of
        participating in the training."
        """
        rng = self._seeds.generator(round_idx, 1)
        if self.selection_policy is not None:
            return self.selection_policy.select(round_idx, self.devices, rng)
        p = self.config.participation
        if p >= 1.0:
            return list(self.devices)
        mask = rng.random(len(self.devices)) < p
        chosen = [d for d, m in zip(self.devices, mask) if m]
        if not chosen:
            chosen = [self.devices[rng.integers(len(self.devices))]]
        return chosen

    def round_duration(self, participants: list[Device]) -> float:
        """Paper convention: the slowest participant's unit time."""
        return max(d.unit_time for d in participants)

    def evaluate(self, weights: np.ndarray) -> tuple[float, float]:
        """(accuracy, loss) of ``weights`` on the held-out test set.

        One fused pass: each test batch is forwarded once for both metrics.
        """
        model = self.trainer.model
        set_flat_params(model, weights)
        return model.evaluate_metrics(self.test_set.x, self.test_set.y)

    def fit(self, initial_weights: np.ndarray | None = None) -> RunResult:
        """Run ``config.rounds`` rounds and return the assembled result."""
        if initial_weights is not None:
            self.global_weights = np.asarray(initial_weights, dtype=np.float64).copy()
        cfg = self.config
        for r in range(1, cfg.rounds + 1):
            participants = self.select_participants(r)
            self.global_weights = self.run_round(r, participants, self.global_weights)
            if r % cfg.eval_every == 0 or r == cfg.rounds:
                acc, loss = self.evaluate(self.global_weights)
                self.history.record(
                    r, self.clock.now, self.meter.server_total, acc, loss
                )
                self.logger.log(
                    round=r,
                    accuracy=round(acc, 4),
                    loss=round(loss, 4),
                    transfers=self.meter.server_total,
                    vtime=round(self.clock.now, 3),
                )
        return RunResult(
            method=self.method,
            dataset=self.test_set.name,
            history=self.history,
            final_weights=self.global_weights,
            per_round_unit=self.per_round_unit,
            config={
                "rounds": cfg.rounds,
                "participation": cfg.participation,
                "local_epochs": cfg.local_epochs,
                "seed": cfg.seed,
                **cfg.extra,
            },
        )
