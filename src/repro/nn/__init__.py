"""Pure-NumPy neural-network substrate.

The paper trains PyTorch models; this offline reproduction provides an
equivalent minimal framework: layer objects with explicit ``forward`` /
``backward``, softmax cross-entropy loss, SGD-family optimizers, and flat
parameter-vector serialization so federated-learning code can treat a model
as a point in :math:`\\mathbb{R}^d`.

All trainable scalars of a :class:`~repro.nn.models.Sequential` live in one
contiguous ``theta`` vector (gradients in a matching ``grad`` vector) that
every ``Parameter`` views, so serialization is a single copy and optimizer
math runs as whole-vector BLAS ops — see DESIGN.md, "Flat-buffer memory
model".

Public API
----------
- :class:`~repro.nn.layers.Dense`, :class:`~repro.nn.layers.Conv2d`,
  :class:`~repro.nn.layers.ReLU`, :class:`~repro.nn.layers.MaxPool2d`,
  :class:`~repro.nn.layers.Flatten`, :class:`~repro.nn.layers.Dropout`
- :class:`~repro.nn.models.Sequential` plus the paper's two architectures
  :func:`~repro.nn.models.paper_mlp` and :func:`~repro.nn.models.paper_cnn`
- :class:`~repro.nn.losses.SoftmaxCrossEntropy`
- :class:`~repro.nn.optim.SGD`, :class:`~repro.nn.optim.ProximalSGD`
- :func:`~repro.nn.serialization.get_flat_params`,
  :func:`~repro.nn.serialization.set_flat_params`
"""

from repro.nn.tensor import Parameter
from repro.nn.layers import Conv2d, Dense, Dropout, Flatten, Layer, MaxPool2d, ReLU, Tanh
from repro.nn.losses import Loss, MSELoss, SoftmaxCrossEntropy
from repro.nn.models import Sequential, logistic_model, paper_cnn, paper_mlp
from repro.nn.optim import SGD, ConstantLR, InverseTimeLR, LRSchedule, ProximalSGD
from repro.nn.serialization import (
    get_flat_grads,
    get_flat_params,
    num_params,
    set_flat_params,
)

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Flatten",
    "MaxPool2d",
    "Dropout",
    "Loss",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "Sequential",
    "paper_mlp",
    "paper_cnn",
    "logistic_model",
    "SGD",
    "ProximalSGD",
    "LRSchedule",
    "ConstantLR",
    "InverseTimeLR",
    "get_flat_params",
    "set_flat_params",
    "get_flat_grads",
    "num_params",
]
