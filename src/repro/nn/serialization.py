"""Flat parameter-vector view of a model.

Federated-learning algorithms treat a model as a point in R^d: aggregation
is vector arithmetic, transmission cost is ``d`` floats.  These helpers
convert between a model's :class:`~repro.nn.tensor.Parameter` list and one
contiguous float64 vector, in a stable order.

For :class:`~repro.nn.models.Sequential` (which already stores all
parameters in one contiguous ``theta`` / ``grad`` vector, with per-layer
views into it) every helper is a single ``np.copyto`` and ``num_params``
is an attribute read.  The per-parameter loops remain as the fallback for
duck-typed models that only expose ``parameters()``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["num_params", "get_flat_params", "set_flat_params", "get_flat_grads"]


def num_params(model) -> int:
    """Total number of scalar parameters in ``model`` (cached when the
    model exposes a ``dim`` attribute, as ``Sequential`` does)."""
    dim = getattr(model, "dim", None)
    if dim is not None:
        return int(dim)
    return sum(p.size for p in model.parameters())


def _check_out(out: np.ndarray | None, total: int) -> np.ndarray:
    if out is None:
        return np.empty(total, dtype=np.float64)
    if out.shape != (total,):
        raise ValueError(f"out must have shape ({total},), got {out.shape}")
    return out


def get_flat_params(model, out: np.ndarray | None = None) -> np.ndarray:
    """Concatenate all parameters into one float64 vector.

    Pass ``out`` to reuse a buffer (hot aggregation loops).
    """
    theta = getattr(model, "theta", None)
    if theta is not None:
        out = _check_out(out, theta.size)
        np.copyto(out, theta)
        return out
    total = num_params(model)
    out = _check_out(out, total)
    offset = 0
    for p in model.parameters():
        out[offset : offset + p.size] = p.data.ravel()
        offset += p.size
    return out


def set_flat_params(model, flat: np.ndarray) -> None:
    """Load a flat vector back into the model's parameters (copies data)."""
    total = num_params(model)
    flat = np.asarray(flat, dtype=np.float64)
    if flat.shape != (total,):
        raise ValueError(f"expected vector of length {total}, got {flat.shape}")
    theta = getattr(model, "theta", None)
    if theta is not None:
        np.copyto(theta, flat)
        return
    offset = 0
    for p in model.parameters():
        p.data[...] = flat[offset : offset + p.size].reshape(p.shape)
        offset += p.size


def get_flat_grads(model, out: np.ndarray | None = None) -> np.ndarray:
    """Concatenate all parameter gradients into one float64 vector."""
    grad = getattr(model, "grad", None)
    if isinstance(grad, np.ndarray):
        out = _check_out(out, grad.size)
        np.copyto(out, grad)
        return out
    total = num_params(model)
    out = _check_out(out, total)
    offset = 0
    for p in model.parameters():
        out[offset : offset + p.size] = p.grad.ravel()
        offset += p.size
    return out
