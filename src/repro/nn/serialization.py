"""Flat parameter-vector view of a model.

Federated-learning algorithms treat a model as a point in R^d: aggregation
is vector arithmetic, transmission cost is ``d`` floats.  These helpers
convert between a model's :class:`~repro.nn.tensor.Parameter` list and one
contiguous float64 vector, in a stable order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["num_params", "get_flat_params", "set_flat_params", "get_flat_grads"]


def num_params(model) -> int:
    """Total number of scalar parameters in ``model``."""
    return sum(p.size for p in model.parameters())


def get_flat_params(model, out: np.ndarray | None = None) -> np.ndarray:
    """Concatenate all parameters into one float64 vector.

    Pass ``out`` to reuse a buffer (hot aggregation loops).
    """
    total = num_params(model)
    if out is None:
        out = np.empty(total, dtype=np.float64)
    elif out.shape != (total,):
        raise ValueError(f"out must have shape ({total},), got {out.shape}")
    offset = 0
    for p in model.parameters():
        out[offset : offset + p.size] = p.data.ravel()
        offset += p.size
    return out


def set_flat_params(model, flat: np.ndarray) -> None:
    """Load a flat vector back into the model's parameters (copies data)."""
    total = num_params(model)
    flat = np.asarray(flat, dtype=np.float64)
    if flat.shape != (total,):
        raise ValueError(f"expected vector of length {total}, got {flat.shape}")
    offset = 0
    for p in model.parameters():
        p.data[...] = flat[offset : offset + p.size].reshape(p.shape)
        offset += p.size


def get_flat_grads(model, out: np.ndarray | None = None) -> np.ndarray:
    """Concatenate all parameter gradients into one float64 vector."""
    total = num_params(model)
    if out is None:
        out = np.empty(total, dtype=np.float64)
    elif out.shape != (total,):
        raise ValueError(f"out must have shape ({total},), got {out.shape}")
    offset = 0
    for p in model.parameters():
        out[offset : offset + p.size] = p.grad.ravel()
        offset += p.size
    return out
