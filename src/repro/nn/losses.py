"""Loss functions pairing a scalar value with the logit gradient."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax

__all__ = ["Loss", "SoftmaxCrossEntropy", "MSELoss"]


class Loss:
    """Interface: ``value`` and ``grad`` of the empirical risk on a batch."""

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Mean softmax cross-entropy over integer class targets."""

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._check(logits, targets)
        logp = log_softmax(logits, axis=1)
        n = logits.shape[0]
        return float(-logp[np.arange(n), targets].mean())

    def grad(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(logits, targets)
        n = logits.shape[0]
        g = softmax(logits, axis=1)
        g[np.arange(n), targets] -= 1.0
        g /= n
        return g

    @staticmethod
    def _check(logits: np.ndarray, targets: np.ndarray) -> None:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ValueError(
                f"targets must be (N,)={logits.shape[0]}, got {targets.shape}"
            )
        if targets.size and (targets.min() < 0 or targets.max() >= logits.shape[1]):
            raise ValueError("target class index out of range")


class MSELoss(Loss):
    """Mean squared error (used in convex/analysis examples)."""

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.shape != targets.shape:
            raise ValueError(f"shape mismatch {logits.shape} vs {targets.shape}")
        diff = logits - targets
        return float((diff * diff).mean())

    def grad(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        if logits.shape != targets.shape:
            raise ValueError(f"shape mismatch {logits.shape} vs {targets.shape}")
        return 2.0 * (logits - targets) / logits.size
