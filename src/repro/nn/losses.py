"""Loss functions pairing a scalar value with the logit gradient."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax

__all__ = ["Loss", "SoftmaxCrossEntropy", "MSELoss"]


class Loss:
    """Interface: ``value`` and ``grad`` of the empirical risk on a batch."""

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def value_and_grad(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Fused ``(value, grad)``; the default runs the two passes.

        Subclasses override this to share the expensive intermediates
        (softmax normalization, residuals) between the two results; the
        fused outputs must stay bitwise identical to the separate calls.
        """
        return self.value(logits, targets), self.grad(logits, targets)


class SoftmaxCrossEntropy(Loss):
    """Mean softmax cross-entropy over integer class targets."""

    def __init__(self) -> None:
        self._rows = np.empty(0, dtype=np.intp)  # cached arange, grown on demand

    def _row_index(self, n: int) -> np.ndarray:
        if self._rows.size < n:
            self._rows = np.arange(max(n, 256), dtype=np.intp)
        return self._rows[:n]

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        self._check(logits, targets)
        logp = log_softmax(logits, axis=1)
        n = logits.shape[0]
        return float(-logp[np.arange(n), targets].mean())

    def grad(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self._check(logits, targets)
        n = logits.shape[0]
        g = softmax(logits, axis=1)
        g[np.arange(n), targets] -= 1.0
        g /= n
        return g

    def value_and_grad(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """One shifted-exponential computation feeds both outputs.

        Mirrors ``log_softmax`` (for the value) and ``softmax`` (for the
        gradient) operation-for-operation so the results are bitwise equal
        to the unfused ``value`` + ``grad`` pair.
        """
        self._check(logits, targets)
        n = logits.shape[0]
        rows = self._row_index(n)
        shifted = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(shifted)
        s = e.sum(axis=1, keepdims=True)
        g = np.divide(e, s, out=e)  # e is not needed again; reuse for g
        np.log(s, out=s)  # s is consumed; reuse it for log Z
        value = float(-((shifted[rows, targets] - s[:, 0]).sum() / n))
        g[rows, targets] -= 1.0
        g /= n
        return value, g

    @staticmethod
    def _check(logits: np.ndarray, targets: np.ndarray) -> None:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ValueError(
                f"targets must be (N,)={logits.shape[0]}, got {targets.shape}"
            )
        if targets.size:
            if targets.dtype == np.int64 and targets.flags.c_contiguous:
                # One reduction: any negative reinterprets as a huge uint64.
                if int(targets.view(np.uint64).max()) >= logits.shape[1]:
                    raise ValueError("target class index out of range")
            elif targets.min() < 0 or targets.max() >= logits.shape[1]:
                raise ValueError("target class index out of range")


class MSELoss(Loss):
    """Mean squared error (used in convex/analysis examples)."""

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.shape != targets.shape:
            raise ValueError(f"shape mismatch {logits.shape} vs {targets.shape}")
        diff = logits - targets
        return float((diff * diff).mean())

    def grad(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        if logits.shape != targets.shape:
            raise ValueError(f"shape mismatch {logits.shape} vs {targets.shape}")
        return 2.0 * (logits - targets) / logits.size

    def value_and_grad(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        if logits.shape != targets.shape:
            raise ValueError(f"shape mismatch {logits.shape} vs {targets.shape}")
        diff = logits - targets
        value = float((diff * diff).mean())
        return value, 2.0 * diff / logits.size
