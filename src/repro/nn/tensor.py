"""Trainable parameter container.

A :class:`Parameter` pairs a value array with a same-shaped gradient buffer.
Both are plain ``float64`` ndarrays; optimizers mutate ``data`` in place so
views handed out elsewhere stay valid (guide: in-place ops, views not
copies).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array with an accumulated gradient."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the gradient buffer in place."""
        self.grad[...] = 0.0

    def copy(self) -> "Parameter":
        """Deep copy (data and grad)."""
        p = Parameter(self.data.copy(), self.name)
        p.grad = self.grad.copy()
        return p

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape})"
