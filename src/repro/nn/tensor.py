"""Trainable parameter container.

A :class:`Parameter` pairs a value array with a same-shaped gradient buffer.
Both are plain ``float64`` ndarrays; optimizers mutate ``data`` in place so
views handed out elsewhere stay valid (guide: in-place ops, views not
copies).

When a parameter belongs to a :class:`~repro.nn.models.Sequential`, its
``data`` and ``grad`` are *views* into the model's contiguous ``theta`` /
``grad`` vectors (see DESIGN.md, "Flat-buffer memory model").  ``_flat``
records that backing as ``(theta, grad_vec, lo, hi)`` so whole-vector
consumers (fused optimizers) can detect contiguous spans.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array with an accumulated gradient."""

    __slots__ = ("data", "grad", "name", "_flat")

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self._flat: tuple[np.ndarray, np.ndarray, int, int] | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the gradient buffer in place."""
        self.grad[...] = 0.0

    def copy(self) -> "Parameter":
        """Deep copy (data and grad) — always standalone arrays, never views."""
        p = Parameter(self.data.copy(), self.name)
        p.grad = self.grad.copy()
        return p

    def __getstate__(self):
        """Pickle values only: views and the flat-backing record do not
        survive serialization (the owning model rebuilds them, see
        ``Sequential.__setstate__``)."""
        return (self.data, self.grad, self.name)

    def __setstate__(self, state) -> None:
        self.data, self.grad, self.name = state
        self._flat = None

    def _rebase(
        self,
        data_view: np.ndarray,
        grad_view: np.ndarray,
        flat: tuple[np.ndarray, np.ndarray, int, int],
    ) -> None:
        """Move storage onto externally-owned views, preserving values."""
        data_view[...] = self.data
        grad_view[...] = self.grad
        self.data = data_view
        self.grad = grad_view
        self._flat = flat

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape})"
