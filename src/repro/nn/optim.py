"""SGD-family optimizers and learning-rate schedules.

:class:`ProximalSGD` implements the FedProx device objective
``F_i(w) + (mu/2)||w - w_anchor||^2`` by adding ``mu (w - w_anchor)`` to every
step — the anchor is the global model the device received at the start of
the round.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["LRSchedule", "ConstantLR", "InverseTimeLR", "SGD", "ProximalSGD"]


class LRSchedule:
    """Maps a step counter to a learning rate."""

    def rate(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Fixed learning rate (the paper uses 0.1 everywhere)."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def rate(self, step: int) -> float:
        return self.lr


class InverseTimeLR(LRSchedule):
    """``eta_t = numerator / (offset + t)``.

    With ``numerator = 2/mu`` and ``offset = gamma = max(8L/mu, E)`` this is
    exactly the schedule of Theorem 5.1 / [Li et al. 2020].
    """

    def __init__(self, numerator: float, offset: float) -> None:
        if numerator <= 0 or offset <= 0:
            raise ValueError("numerator and offset must be positive")
        self.numerator = numerator
        self.offset = offset

    def rate(self, step: int) -> float:
        return self.numerator / (self.offset + step)


class SGD:
    """Plain / momentum SGD over a list of parameters.

    ``step`` consumes accumulated ``Parameter.grad`` buffers and updates
    ``Parameter.data`` in place; callers zero gradients between batches.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.params = list(params)
        self.schedule = lr if isinstance(lr, LRSchedule) else ConstantLR(lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.step_count = 0
        self._velocity: list[np.ndarray] | None = (
            [np.zeros_like(p.data) for p in self.params] if momentum > 0 else None
        )

    @property
    def lr(self) -> float:
        """Learning rate that the *next* step will use."""
        return self.schedule.rate(self.step_count)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def _apply(self, p: Parameter, update: np.ndarray, eta: float, idx: int) -> None:
        if self._velocity is not None:
            v = self._velocity[idx]
            v *= self.momentum
            v += update
            update = v
        p.data -= eta * update

    def step(self) -> None:
        eta = self.schedule.rate(self.step_count)
        for i, p in enumerate(self.params):
            update = p.grad
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            self._apply(p, update, eta, i)
        self.step_count += 1


class ProximalSGD(SGD):
    """SGD plus the FedProx proximal pull toward an anchor point."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule = 0.1,
        mu: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr=lr, momentum=momentum, weight_decay=weight_decay)
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = mu
        self._anchor: list[np.ndarray] | None = None

    def set_anchor(self) -> None:
        """Snapshot current parameters as the proximal anchor w_global."""
        self._anchor = [p.data.copy() for p in self.params]

    def step(self) -> None:
        if self._anchor is None:
            raise RuntimeError("call set_anchor() before stepping ProximalSGD")
        eta = self.schedule.rate(self.step_count)
        for i, p in enumerate(self.params):
            update = p.grad + self.mu * (p.data - self._anchor[i])
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            self._apply(p, update, eta, i)
        self.step_count += 1
