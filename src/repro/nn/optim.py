"""SGD-family optimizers and learning-rate schedules.

:class:`ProximalSGD` implements the FedProx device objective
``F_i(w) + (mu/2)||w - w_anchor||^2`` by adding ``mu (w - w_anchor)`` to every
step — the anchor is the global model the device received at the start of
the round.

When the parameter list is backed by one contiguous flat buffer (every
``Parameter`` of a :class:`~repro.nn.models.Sequential` views a span of the
model's ``theta`` / ``grad`` vectors), the update fuses into whole-vector
BLAS ops on that span instead of a Python loop over layers.  The fused and
per-parameter paths apply the same elementwise arithmetic, so results are
bitwise identical.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["LRSchedule", "ConstantLR", "InverseTimeLR", "SGD", "ProximalSGD"]


def _flat_span(
    params: list[Parameter],
) -> tuple[np.ndarray, np.ndarray] | None:
    """(theta_span, grad_span) if ``params`` tile one contiguous flat range.

    Requires every parameter to be flat-backed by the *same* buffer pair,
    in order, with no gaps — exactly what ``Sequential`` constructs.
    """
    if not params:
        return None
    first = params[0]._flat
    if first is None:
        return None
    theta, grad_vec, lo0, hi = first
    for p in params[1:]:
        f = p._flat
        if f is None or f[0] is not theta or f[2] != hi:
            return None
        hi = f[3]
    return theta[lo0:hi], grad_vec[lo0:hi]


class LRSchedule:
    """Maps a step counter to a learning rate."""

    def rate(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Fixed learning rate (the paper uses 0.1 everywhere)."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr

    def rate(self, step: int) -> float:
        return self.lr


class InverseTimeLR(LRSchedule):
    """``eta_t = numerator / (offset + t)``.

    With ``numerator = 2/mu`` and ``offset = gamma = max(8L/mu, E)`` this is
    exactly the schedule of Theorem 5.1 / [Li et al. 2020].
    """

    def __init__(self, numerator: float, offset: float) -> None:
        if numerator <= 0 or offset <= 0:
            raise ValueError("numerator and offset must be positive")
        self.numerator = numerator
        self.offset = offset

    def rate(self, step: int) -> float:
        return self.numerator / (self.offset + step)


class SGD:
    """Plain / momentum SGD over a list of parameters.

    ``step`` consumes accumulated ``Parameter.grad`` buffers and updates
    ``Parameter.data`` in place; callers zero gradients between batches.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.params = list(params)
        self.schedule = lr if isinstance(lr, LRSchedule) else ConstantLR(lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.step_count = 0
        self._span = _flat_span(self.params)
        if self._span is not None:
            self._velocity = [np.zeros_like(self._span[0])] if momentum > 0 else None
        else:
            self._velocity = (
                [np.zeros_like(p.data) for p in self.params] if momentum > 0 else None
            )

    def _current_span(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The fused span, revalidated against the parameters' live backing.

        A layer-list mutation makes ``Sequential`` reallocate and rebase
        its flat buffers; a span cached at construction would then view
        the orphaned old buffers and steps would silently go nowhere.  The
        identity check is O(1); a rebase triggers one re-derivation.  The
        momentum state stays valid across a rebase because the span covers
        the same parameters in the same order.
        """
        span = self._span
        if span is None:
            return None
        flat = self.params[0]._flat
        if flat is not None and flat[0] is span[0].base:
            return span
        self._span = _flat_span(self.params)
        if self._span is None and self._velocity is not None and len(self.params) > 1:
            # The params are no longer one contiguous span (e.g. a
            # parameterized layer was spliced between them): split the
            # fused velocity back onto the per-parameter layout.
            flat_v = self._velocity[0]
            per_param, offset = [], 0
            for p in self.params:
                per_param.append(
                    flat_v[offset : offset + p.size].reshape(p.shape).copy()
                )
                offset += p.size
            self._velocity = per_param
        return self._span

    @property
    def lr(self) -> float:
        """Learning rate that the *next* step will use."""
        return self.schedule.rate(self.step_count)

    def zero_grad(self) -> None:
        span = self._current_span()
        if span is not None:
            span[1][...] = 0.0
            return
        for p in self.params:
            p.zero_grad()

    def _apply(self, data: np.ndarray, update: np.ndarray, eta: float, idx: int) -> None:
        if self._velocity is not None:
            v = self._velocity[idx]
            v *= self.momentum
            v += update
            update = v
        data -= eta * update

    def _extra_term(self, data: np.ndarray, idx: int) -> np.ndarray | None:
        """Hook for subclasses: an additive gradient term (or None)."""
        return None

    def step(self) -> None:
        eta = self.schedule.rate(self.step_count)
        span = self._current_span()
        if span is not None:
            theta, grad = span
            update = grad
            extra = self._extra_term(theta, 0)
            if extra is not None:
                update = update + extra
            if self.weight_decay:
                update = update + self.weight_decay * theta
            self._apply(theta, update, eta, 0)
        else:
            for i, p in enumerate(self.params):
                update = p.grad
                extra = self._extra_term(p.data, i)
                if extra is not None:
                    update = update + extra
                if self.weight_decay:
                    update = update + self.weight_decay * p.data
                self._apply(p.data, update, eta, i)
        self.step_count += 1


class ProximalSGD(SGD):
    """SGD plus the FedProx proximal pull toward an anchor point."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float | LRSchedule = 0.1,
        mu: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr=lr, momentum=momentum, weight_decay=weight_decay)
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = mu
        self._anchor: list[np.ndarray] | None = None

    def _current_span(self) -> tuple[np.ndarray, np.ndarray] | None:
        span = super()._current_span()
        if span is None and self._anchor is not None and len(self._anchor) == 1 \
                and len(self.params) > 1:
            # Mirror the velocity conversion: split a fused anchor back
            # onto the per-parameter layout.
            flat_a = self._anchor[0]
            per_param, offset = [], 0
            for p in self.params:
                per_param.append(
                    flat_a[offset : offset + p.size].reshape(p.shape).copy()
                )
                offset += p.size
            self._anchor = per_param
        return span

    def set_anchor(self) -> None:
        """Snapshot current parameters as the proximal anchor w_global."""
        span = self._current_span()
        if span is not None:
            self._anchor = [span[0].copy()]
        else:
            self._anchor = [p.data.copy() for p in self.params]

    def _extra_term(self, data: np.ndarray, idx: int) -> np.ndarray | None:
        return self.mu * (data - self._anchor[idx])

    def step(self) -> None:
        if self._anchor is None:
            raise RuntimeError("call set_anchor() before stepping ProximalSGD")
        super().step()
