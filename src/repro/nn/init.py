"""Weight-initialization schemes.

He initialization for ReLU networks (the paper's MLP/CNN), Glorot for tanh,
both in the *uniform* variant for cheap sampling.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["he_uniform", "glorot_uniform", "zeros"]


def he_uniform(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform: U(-sqrt(6/fan_in), +sqrt(6/fan_in))."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def glorot_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-sqrt(6/(fan_in+fan_out)), +...)."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros array (bias init)."""
    return np.zeros(shape, dtype=np.float64)
