"""Model containers and the paper's two architectures.

The paper (Section 6.1, "Models"):

* MNIST / EMNIST — fully-connected net with 2 hidden layers of 200 and 100
  neurons.
* CIFAR10 / CIFAR100 — CNN with 2 convolutional layers of 64 filters of
  size 5x5, followed by two fully-connected layers with 394 and 192 neurons
  and a softmax output.

:func:`paper_cnn` keeps that exact layer structure but accepts the input
resolution as a parameter, because the offline substrate runs reduced-size
synthetic images (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Dense, Flatten, Layer, MaxPool2d, ReLU
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.tensor import Parameter
from repro.utils.rng import as_generator

__all__ = ["Sequential", "paper_mlp", "paper_cnn", "logistic_model"]


class Sequential:
    """A feed-forward stack of layers with a loss head.

    All trainable scalars live in one contiguous float64 vector ``theta``
    with a matching ``grad`` vector; every :class:`Parameter` holds reshaped
    *views* into them.  Federated serialization
    (:func:`~repro.nn.serialization.get_flat_params` /
    :func:`~repro.nn.serialization.set_flat_params`) therefore collapses to
    a single ``np.copyto`` and optimizer math can run as whole-vector BLAS
    ops.  Mutating ``self.layers`` after construction is supported: the
    flat buffer is rebuilt (values preserved) the next time it is touched.
    """

    def __init__(self, layers: list[Layer], loss: Loss | None = None) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self._flat_key: tuple[Layer, ...] | None = None
        self._params: list[Parameter] = []
        self._theta = np.empty(0, dtype=np.float64)
        self._grad = np.empty(0, dtype=np.float64)
        self._ensure_flat()

    # ----------------------------------------------------- flat buffer

    def __getstate__(self):
        """Drop the flat-buffer machinery: numpy views do not survive
        pickling (each array rehydrates standalone), so shipping the
        buffers would silently desync the copy.  ``__setstate__`` rebuilds
        them from the layers' (standalone) parameter values."""
        state = self.__dict__.copy()
        for key in (
            "_flat_key",
            "_params",
            "_theta",
            "_grad",
            "_skip_idx",
            "_fast_layer",
            "_relu_layer",
            "_overwrite_ok",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._flat_key = None
        self._params = []
        self._theta = np.empty(0, dtype=np.float64)
        self._grad = np.empty(0, dtype=np.float64)
        self._ensure_flat()

    def _ensure_flat(self) -> None:
        """(Re)base every parameter onto the shared flat buffers."""
        # The key holds the layer objects themselves (compared by identity
        # via tuple ==): strong references keep replaced layers alive, so
        # a new layer can never reuse a freed layer's id and masquerade as
        # the cached structure.
        key = tuple(self.layers)
        if key == self._flat_key:
            return
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        # Backward-pass fast-path eligibility.  Exact types only: a layer
        # subclass may override backward() without the fast-path keywords,
        # so it silently opts out of both optimizations.
        # _skip_idx: first parameterized layer, whose input-gradient GEMM
        # can be skipped when the caller discards input grads.
        # _overwrite_ok: every parameterized layer can write its gradient
        # in place of (rather than into) the grad buffer.
        self._skip_idx = -1
        for i, layer in enumerate(self.layers):
            if layer.parameters():
                if type(layer) in (Conv2d, Dense):
                    self._skip_idx = i
                break
        self._fast_layer = [type(layer) in (Conv2d, Dense) for layer in self.layers]
        self._relu_layer = [type(layer) is ReLU for layer in self.layers]
        self._overwrite_ok = all(
            fast
            for fast, layer in zip(self._fast_layer, self.layers)
            if layer.parameters()
        )
        dim = sum(p.size for p in params)
        theta = np.empty(dim, dtype=np.float64)
        grad = np.empty(dim, dtype=np.float64)
        offset = 0
        for p in params:
            lo, hi = offset, offset + p.size
            p._rebase(
                theta[lo:hi].reshape(p.shape),
                grad[lo:hi].reshape(p.shape),
                (theta, grad, lo, hi),
            )
            offset = hi
        self._params = params
        self._theta = theta
        self._grad = grad
        self._flat_key = key

    @property
    def theta(self) -> np.ndarray:
        """The contiguous parameter vector every ``Parameter.data`` views."""
        self._ensure_flat()
        return self._theta

    @property
    def grad(self) -> np.ndarray:
        """The contiguous gradient vector every ``Parameter.grad`` views."""
        self._ensure_flat()
        return self._grad

    @property
    def dim(self) -> int:
        """Total number of trainable scalars (cached; no per-call sum)."""
        self._ensure_flat()
        return self._theta.size

    def set_flat(self, flat: np.ndarray) -> None:
        """Load a flat vector into ``theta`` (one ``np.copyto``)."""
        self._ensure_flat()
        flat = np.asarray(flat, dtype=np.float64)
        if flat.shape != self._theta.shape:
            raise ValueError(
                f"expected vector of length {self._theta.size}, got {flat.shape}"
            )
        np.copyto(self._theta, flat)

    # ------------------------------------------------------- training

    def parameters(self) -> list[Parameter]:
        self._ensure_flat()
        return list(self._params)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(
        self,
        grad: np.ndarray,
        need_input_grad: bool = True,
        overwrite: bool = False,
    ) -> np.ndarray | None:
        """Backpropagate ``grad`` through all layers.

        With ``need_input_grad=False`` the pass stops after the lowest
        parameterized layer and skips that layer's input-gradient GEMM —
        nothing below it has gradients to accumulate, so training loops
        that discard the returned input gradient save the widest matmul of
        the backward pass (the first layer touches the raw features).

        With ``overwrite=True`` standard layers write their gradients in
        place of the grad buffer instead of accumulating, so the caller
        does not need to zero gradients first; requires every
        parameterized layer to support it (``self._overwrite_ok``).  The
        ``grad`` argument may be reused as scratch in this mode.
        """
        if not need_input_grad or overwrite:
            self._ensure_flat()
        if overwrite and not self._overwrite_ok:
            raise ValueError(
                "overwrite=True requires every parameterized layer to be a "
                "standard Dense/Conv2d (a subclass or custom layer would "
                "silently accumulate instead)"
            )
        return self._backward(grad, need_input_grad, overwrite)

    def _backward(
        self, grad: np.ndarray, need_input_grad: bool, overwrite: bool
    ) -> np.ndarray | None:
        """Backward loop; the caller guarantees ``_ensure_flat`` ran when
        the skip/overwrite fast paths are requested."""
        stop = self._skip_idx if not need_input_grad else -1
        layers = self.layers
        fast_layer = self._fast_layer
        for i in range(len(layers) - 1, -1, -1):
            layer = layers[i]
            fast = overwrite and fast_layer[i]
            if i == stop:
                layer.backward(grad, need_input_grad=False, accumulate=not fast)
                return None
            if fast:
                grad = layer.backward(grad, accumulate=False)
            elif overwrite and self._relu_layer[i]:
                # The inter-layer grad array is loop-private here, so the
                # ReLU mask can be applied in place.
                grad = layer.backward_inplace(grad)
            else:
                grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        self._ensure_flat()
        self._grad[...] = 0.0

    def loss_and_grad(self, x: np.ndarray, y: np.ndarray) -> float:
        """One fused training pass: forward, loss, backward.

        On return the parameter gradients hold exactly this batch's
        gradients (no pre-zeroing needed); the caller steps an optimizer
        afterwards.  The loss head's value and logit gradient come from
        one fused computation, and standard layers write their gradients
        via overwriting GEMMs instead of zero-then-accumulate.
        """
        self._ensure_flat()
        logits = self.forward(x, train=True)
        value, logit_grad = self.loss.value_and_grad(logits, y)
        if self._overwrite_ok:
            self._backward(logit_grad, need_input_grad=False, overwrite=True)
        else:
            self._grad[...] = 0.0
            self._backward(logit_grad, need_input_grad=False, overwrite=False)
        return value

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions without caching activations."""
        preds = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], train=False)
            preds.append(logits.argmax(axis=1))
        return np.concatenate(preds) if preds else np.empty(0, dtype=np.int64)

    def accuracy(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Top-1 accuracy on (x, y)."""
        if x.shape[0] == 0:
            raise ValueError("cannot compute accuracy on an empty set")
        return float((self.predict(x, batch_size=batch_size) == y).mean())

    def evaluate_loss(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Mean loss over (x, y) without touching gradients."""
        total = 0.0
        n = x.shape[0]
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, train=False)
            total += self.loss.value(logits, yb) * xb.shape[0]
        return total / n

    def evaluate_metrics(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> tuple[float, float]:
        """(accuracy, mean loss) over (x, y) in a single forward sweep.

        Equivalent to ``(self.accuracy(x, y), self.evaluate_loss(x, y))``
        but runs each batch's forward pass once instead of twice.
        """
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate metrics on an empty set")
        correct = 0
        total = 0.0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, train=False)
            correct += int((logits.argmax(axis=1) == yb).sum())
            total += self.loss.value(logits, yb) * xb.shape[0]
        return correct / n, total / n


def paper_mlp(
    in_features: int,
    num_classes: int,
    seed: int | np.random.Generator | None = 0,
    hidden: tuple[int, int] = (200, 100),
) -> Sequential:
    """The paper's MNIST/EMNIST model: FC(200) - ReLU - FC(100) - ReLU - FC(C)."""
    rng = as_generator(seed)
    h1, h2 = hidden
    return Sequential(
        [
            Dense(in_features, h1, rng=rng, name="fc1"),
            ReLU(),
            Dense(h1, h2, rng=rng, name="fc2"),
            ReLU(),
            Dense(h2, num_classes, rng=rng, name="head"),
        ]
    )


def paper_cnn(
    in_channels: int,
    image_size: int,
    num_classes: int,
    seed: int | np.random.Generator | None = 0,
    conv_channels: int = 64,
    kernel_size: int = 5,
    fc_sizes: tuple[int, int] = (394, 192),
) -> Sequential:
    """The paper's CIFAR model: 2x [Conv(64, 5x5) - ReLU - MaxPool(2)] - FC(394) - FC(192) - FC(C).

    Spatial geometry uses SAME padding so any even ``image_size >= 4`` works
    (the paper used 32x32; the offline benches run smaller inputs).
    """
    if image_size % 4 != 0:
        raise ValueError(
            f"image_size must be divisible by 4 for two 2x2 pools, got {image_size}"
        )
    rng = as_generator(seed)
    pad = kernel_size // 2
    s1 = image_size // 2
    s2 = image_size // 4
    flat = conv_channels * s2 * s2
    f1, f2 = fc_sizes
    return Sequential(
        [
            Conv2d(in_channels, conv_channels, kernel_size, padding=pad, rng=rng, name="conv1"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(conv_channels, conv_channels, kernel_size, padding=pad, rng=rng, name="conv2"),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(flat, f1, rng=rng, name="fc1"),
            ReLU(),
            Dense(f1, f2, rng=rng, name="fc2"),
            ReLU(),
            Dense(f2, num_classes, rng=rng, name="head"),
        ]
    )


def logistic_model(
    in_features: int,
    num_classes: int,
    seed: int | np.random.Generator | None = 0,
) -> Sequential:
    """Multinomial logistic regression — the strongly-convex objective used
    to validate the Theorem 5.1 convergence analysis."""
    rng = as_generator(seed)
    return Sequential([Dense(in_features, num_classes, rng=rng, name="logit")])
