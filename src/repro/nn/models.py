"""Model containers and the paper's two architectures.

The paper (Section 6.1, "Models"):

* MNIST / EMNIST — fully-connected net with 2 hidden layers of 200 and 100
  neurons.
* CIFAR10 / CIFAR100 — CNN with 2 convolutional layers of 64 filters of
  size 5x5, followed by two fully-connected layers with 394 and 192 neurons
  and a softmax output.

:func:`paper_cnn` keeps that exact layer structure but accepts the input
resolution as a parameter, because the offline substrate runs reduced-size
synthetic images (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Dense, Flatten, Layer, MaxPool2d, ReLU
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.tensor import Parameter
from repro.utils.rng import as_generator

__all__ = ["Sequential", "paper_mlp", "paper_cnn", "logistic_model"]


class Sequential:
    """A feed-forward stack of layers with a loss head."""

    def __init__(self, layers: list[Layer], loss: Loss | None = None) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def loss_and_grad(self, x: np.ndarray, y: np.ndarray) -> float:
        """One fused training pass: forward, loss, backward.

        Gradients accumulate into the parameters; the caller steps an
        optimizer afterwards.
        """
        logits = self.forward(x, train=True)
        value = self.loss.value(logits, y)
        self.backward(self.loss.grad(logits, y))
        return value

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions without caching activations."""
        preds = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], train=False)
            preds.append(logits.argmax(axis=1))
        return np.concatenate(preds) if preds else np.empty(0, dtype=np.int64)

    def accuracy(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Top-1 accuracy on (x, y)."""
        if x.shape[0] == 0:
            raise ValueError("cannot compute accuracy on an empty set")
        return float((self.predict(x, batch_size=batch_size) == y).mean())

    def evaluate_loss(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Mean loss over (x, y) without touching gradients."""
        total = 0.0
        n = x.shape[0]
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, train=False)
            total += self.loss.value(logits, yb) * xb.shape[0]
        return total / n


def paper_mlp(
    in_features: int,
    num_classes: int,
    seed: int | np.random.Generator | None = 0,
    hidden: tuple[int, int] = (200, 100),
) -> Sequential:
    """The paper's MNIST/EMNIST model: FC(200) - ReLU - FC(100) - ReLU - FC(C)."""
    rng = as_generator(seed)
    h1, h2 = hidden
    return Sequential(
        [
            Dense(in_features, h1, rng=rng, name="fc1"),
            ReLU(),
            Dense(h1, h2, rng=rng, name="fc2"),
            ReLU(),
            Dense(h2, num_classes, rng=rng, name="head"),
        ]
    )


def paper_cnn(
    in_channels: int,
    image_size: int,
    num_classes: int,
    seed: int | np.random.Generator | None = 0,
    conv_channels: int = 64,
    kernel_size: int = 5,
    fc_sizes: tuple[int, int] = (394, 192),
) -> Sequential:
    """The paper's CIFAR model: 2x [Conv(64, 5x5) - ReLU - MaxPool(2)] - FC(394) - FC(192) - FC(C).

    Spatial geometry uses SAME padding so any even ``image_size >= 4`` works
    (the paper used 32x32; the offline benches run smaller inputs).
    """
    if image_size % 4 != 0:
        raise ValueError(
            f"image_size must be divisible by 4 for two 2x2 pools, got {image_size}"
        )
    rng = as_generator(seed)
    pad = kernel_size // 2
    s1 = image_size // 2
    s2 = image_size // 4
    flat = conv_channels * s2 * s2
    f1, f2 = fc_sizes
    return Sequential(
        [
            Conv2d(in_channels, conv_channels, kernel_size, padding=pad, rng=rng, name="conv1"),
            ReLU(),
            MaxPool2d(2),
            Conv2d(conv_channels, conv_channels, kernel_size, padding=pad, rng=rng, name="conv2"),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(flat, f1, rng=rng, name="fc1"),
            ReLU(),
            Dense(f1, f2, rng=rng, name="fc2"),
            ReLU(),
            Dense(f2, num_classes, rng=rng, name="head"),
        ]
    )


def logistic_model(
    in_features: int,
    num_classes: int,
    seed: int | np.random.Generator | None = 0,
) -> Sequential:
    """Multinomial logistic regression — the strongly-convex objective used
    to validate the Theorem 5.1 convergence analysis."""
    rng = as_generator(seed)
    return Sequential([Dense(in_features, num_classes, rng=rng, name="logit")])
