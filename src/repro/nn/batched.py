"""Stacked-GEMM execution of one ``Sequential`` replicated across devices.

A federated round trains P copies of the *same* architecture from the same
broadcast point, differing only in data.  :class:`BatchedSequential` exploits
that: it views a ``(P, dim)`` theta arena as per-layer ``(P, in, out)`` weight
stacks and runs forward/backward for all P replicas at once as stacked GEMMs
(``np.matmul`` on ``(P, B, in) @ (P, in, out)`` dispatches one BLAS GEMM per
slice).  Gradients are written into a matching ``(P, dim)`` grad arena, so
the caller's optimizer math becomes whole-matrix ops over the arena.

Each participant's GEMM is computed independently per slice, so on BLAS
builds where a 2-D ``x @ W`` equals the corresponding slice of the stacked
product bitwise (the common case — verified by
``tests/nn/test_batched_sequential.py``), batched training is bit-identical
to the sequential path.  Where a BLAS build breaks that, results agree to
~1e-12 relative; see DESIGN.md §15 for the divergence policy.

Only the shapes the fast path needs are supported: ``Dense``/``ReLU`` stacks
(plus an optional leading ``Flatten``) under ``SoftmaxCrossEntropy``.
Anything else — convolutions, dropout, custom layers — reports
``supports() == False`` and the caller falls back to per-device training.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.losses import SoftmaxCrossEntropy

__all__ = ["BatchedSequential"]

_DENSE = 0
_RELU = 1


def _plan(model):
    """Return ``(ops, None)`` for a batchable model, else ``(None, reason)``.

    ``ops`` is a list of ``(_DENSE, w_lo, fin, fout, b_lo)`` /  ``(_RELU,)``
    tuples; offsets index the flat parameter vector, mirroring the layout
    ``Sequential._ensure_flat`` builds (per layer: weight, then bias).
    """
    if type(getattr(model, "loss", None)) is not SoftmaxCrossEntropy:
        return None, "loss must be SoftmaxCrossEntropy"
    layers = getattr(model, "layers", None)
    if not layers:
        return None, "model has no layers"
    ops = []
    offset = 0
    for i, layer in enumerate(layers):
        kind = type(layer)
        if kind is Flatten:
            if i != 0:
                return None, "Flatten is only supported as the first layer"
        elif kind is Dense:
            fin, fout = layer.in_features, layer.out_features
            w_lo = offset
            b_lo = w_lo + fin * fout
            offset = b_lo + fout
            ops.append((_DENSE, w_lo, fin, fout, b_lo))
        elif kind is ReLU:
            ops.append((_RELU,))
        else:
            return None, f"unsupported layer type {kind.__name__}"
    if not ops or ops[0][0] is not _DENSE:
        return None, "model must start with a Dense layer (after Flatten)"
    if offset != model.dim:
        return None, "parameter layout mismatch"  # pragma: no cover
    return ops, None


class BatchedSequential:
    """P independent replicas of one MLP, executed as stacked GEMMs.

    ``bind`` attaches a ``(P, dim)`` theta arena and grad arena; the per-layer
    weight/bias stacks are zero-copy reshaped views into them, so updating the
    arena updates the models and ``loss_and_grad`` writes gradients straight
    into the grad arena.
    """

    def __init__(self, model) -> None:
        ops, reason = _plan(model)
        if ops is None:
            raise ValueError(f"model is not batchable: {reason}")
        self._ops = ops
        self.dim = int(model.dim)
        self.in_features = ops[0][2]
        self.num_classes = ops[-1][3] if ops[-1][0] is _DENSE else None
        for op in reversed(ops):
            if op[0] is _DENSE:
                self.num_classes = op[3]
                break
        self._theta = None
        self._grad = None
        self._w = None  # per-op tuple: (w_view, b_view, wg_view, bg_view)
        # fancy-index helpers for the cross-entropy gradient, grown on demand
        self._pidx = np.arange(0, dtype=np.intp)
        self._bidx = np.arange(0, dtype=np.intp)

    @staticmethod
    def supports(model) -> bool:
        """True when ``model`` can run on the batched engine."""
        ops, _ = _plan(model)
        return ops is not None

    @property
    def num_replicas(self) -> int:
        return 0 if self._theta is None else self._theta.shape[0]

    def bind(self, theta: np.ndarray, grad: np.ndarray) -> None:
        """Attach ``(P, dim)`` theta/grad arenas; views persist until re-bind."""
        if theta.shape != grad.shape or theta.ndim != 2 or theta.shape[1] != self.dim:
            raise ValueError(
                f"expected matching (P, {self.dim}) arenas, "
                f"got {theta.shape} and {grad.shape}"
            )
        P = theta.shape[0]
        views = []
        for op in self._ops:
            if op[0] is _DENSE:
                _, w_lo, fin, fout, b_lo = op
                views.append(
                    (
                        theta[:, w_lo : w_lo + fin * fout].reshape(P, fin, fout),
                        theta[:, b_lo : b_lo + fout],
                        grad[:, w_lo : w_lo + fin * fout].reshape(P, fin, fout),
                        grad[:, b_lo : b_lo + fout],
                    )
                )
            else:
                views.append(None)
        self._theta = theta
        self._grad = grad
        self._w = views

    def _indices(self, P: int, B: int):
        if self._pidx.size < P:
            self._pidx = np.arange(P, dtype=np.intp)
        if self._bidx.size < B:
            self._bidx = np.arange(B, dtype=np.intp)
        return self._pidx[:P, None], self._bidx[None, :B]

    def loss_and_grad(self, x: np.ndarray, y: np.ndarray) -> None:
        """Overwrite the bound grad arena with per-replica mean-CE gradients.

        ``x`` is ``(P, B, in_features)`` float64, ``y`` is ``(P, B)`` integer
        class ids (validated by the caller, once per cohort).  Replicates the
        sequential op order exactly — stacked ``matmul`` forward, shifted
        softmax, overwrite backward with ``np.add.reduce`` bias reduction and
        no input gradient at the first Dense — so each slice performs the same
        float ops as ``Sequential.loss_and_grad`` on that replica alone.
        """
        if self._w is None:
            raise RuntimeError("bind() must be called before loss_and_grad()")
        ops = self._ops
        # ---- forward, caching each Dense input and each ReLU mask ----
        caches = [None] * len(ops)
        cur = x
        for i, op in enumerate(ops):
            if op[0] is _DENSE:
                w, b = self._w[i][0], self._w[i][1]
                caches[i] = cur
                cur = np.matmul(cur, w)
                cur += b[:, None, :]
            else:
                caches[i] = cur > 0.0
                cur = np.maximum(cur, 0.0)
        logits = cur
        P, B, _ = logits.shape
        # ---- softmax cross-entropy gradient (mean over the batch axis) ----
        shifted = logits - logits.max(axis=2, keepdims=True)
        e = np.exp(shifted)
        s = e.sum(axis=2, keepdims=True)
        g = np.divide(e, s, out=e)
        p_idx, b_idx = self._indices(P, B)
        g[p_idx, b_idx, y] -= 1.0
        g /= B
        # ---- overwrite backward; stop before the first layer's input grad ----
        for i in range(len(ops) - 1, -1, -1):
            op = ops[i]
            if op[0] is _DENSE:
                x_l = caches[i]
                w, _, wg, bg = self._w[i]
                np.matmul(x_l.transpose(0, 2, 1), g, out=wg)
                np.add.reduce(g, axis=1, out=bg)
                if i == 0:
                    break
                g = np.matmul(g, w.transpose(0, 2, 1))
            else:
                g *= caches[i]
