"""Vectorized tensor primitives shared by layers.

``im2col``/``col2im`` turn convolution into one big GEMM — the standard
CPU-friendly formulation (guide: vectorize loops, lean on BLAS).  Layout is
NCHW throughout.
"""

from __future__ import annotations

import numpy as np

__all__ = ["im2col", "col2im", "conv_output_size", "softmax", "log_softmax"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a conv/pool with the given geometry."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: input={size}, kernel={kernel}, "
            f"stride={stride}, pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into columns (N*OH*OW, C*kh*kw).

    Row ``i`` holds the receptive field of output pixel ``i`` flattened in
    (C, kh, kw) order, so ``cols @ W.reshape(F, -1).T`` is the convolution.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")

    # Gather as strided view then copy once: (N, C, kh, kw, OH, OW).
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold columns back onto (N, C, H, W), accumulating overlaps.

    Exact adjoint of :func:`im2col` (needed for the conv backward pass).
    """
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    # kh*kw accumulation passes, each fully vectorized over (N, C, OH, OW).
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, :, i:i_max:stride, j:j_max:stride] += patches[:, :, i, j]
    if pad > 0:
        return out[:, :, pad:-pad, pad:-pad]
    return out


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
