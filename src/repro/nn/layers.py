"""Layer objects with explicit forward/backward passes.

Every layer caches what its backward pass needs during ``forward`` and
releases it on the next call.  Gradients accumulate into ``Parameter.grad``
(callers zero them between steps), matching the usual autograd contract.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as _init
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.tensor import Parameter

__all__ = [
    "Layer",
    "Dense",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Flatten",
    "MaxPool2d",
    "Dropout",
]


class Layer:
    """Base class: parameters + forward/backward."""

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (possibly empty)."""
        return []

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self.forward(x, train=train)


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` with He-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        name: str = "dense",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _init.he_uniform((in_features, out_features), in_features, rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(_init.zeros((out_features,)), name=f"{name}.bias")
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (N, {self.in_features}), got {x.shape}"
            )
        self._x = x if train else None
        out = x @ self.weight.data
        out += self.bias.data
        return out

    def backward(
        self,
        grad_out: np.ndarray,
        need_input_grad: bool = True,
        accumulate: bool = True,
    ) -> np.ndarray | None:
        """``accumulate=False`` writes the GEMM results straight into the
        grad buffers (no temp, no add) — valid only when the caller treats
        the grads as this batch's gradient, as ``Sequential.loss_and_grad``
        does."""
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        if accumulate:
            self.weight.grad += self._x.T @ grad_out
            self.bias.grad += grad_out.sum(axis=0)
        else:
            np.matmul(self._x.T, grad_out, out=self.weight.grad)
            np.add.reduce(grad_out, axis=0, out=self.bias.grad)
        grad_in = grad_out @ self.weight.data.T if need_input_grad else None
        self._x = None
        return grad_in


class Conv2d(Layer):
    """2-D convolution (NCHW) implemented as im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
        name: str = "conv",
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("conv dimensions must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _init.he_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
            ),
            name=f"{name}.weight",
        )
        self.bias = Parameter(_init.zeros((out_channels,)), name=f"{name}.bias")
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def output_shape(self, h: int, w: int) -> tuple[int, int]:
        k, s, p = self.kernel_size, self.stride, self.padding
        return conv_output_size(h, k, s, p), conv_output_size(w, k, s, p)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        oh, ow = self.output_shape(h, w)
        k = self.kernel_size
        cols = im2col(x, k, k, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.bias.data
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        if train:
            self._cols = cols
            self._x_shape = x.shape
        return out

    def backward(
        self,
        grad_out: np.ndarray,
        need_input_grad: bool = True,
        accumulate: bool = True,
    ) -> np.ndarray | None:
        """See :meth:`Dense.backward` for the ``accumulate=False`` contract."""
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, f, oh, ow = grad_out.shape
        k = self.kernel_size
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, f)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        if accumulate:
            self.weight.grad += (grad_mat.T @ self._cols).reshape(self.weight.shape)
            self.bias.grad += grad_mat.sum(axis=0)
        else:
            np.matmul(
                grad_mat.T,
                self._cols,
                out=self.weight.grad.reshape(self.out_channels, -1),
            )
            np.add.reduce(grad_mat, axis=0, out=self.bias.grad)
        if need_input_grad:
            grad_cols = grad_mat @ w_mat
            grad_in = col2im(
                grad_cols, self._x_shape, k, k, self.stride, self.padding
            )
        else:
            grad_in = None
        self._cols = None
        self._x_shape = None
        return grad_in


class ReLU(Layer):
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        out = np.maximum(x, 0.0)
        self._mask = x > 0.0 if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in

    def backward_inplace(self, grad_out: np.ndarray) -> np.ndarray:
        """Mask ``grad_out`` in place (same values as :meth:`backward`);
        only for callers that own the array, e.g. the fused backward loop."""
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        np.multiply(grad_out, self._mask, out=grad_out)
        self._mask = None
        return grad_out


class Tanh(Layer):
    """Elementwise tanh (used by the strongly-convex analysis examples)."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        out = np.tanh(x)
        self._out = out if train else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_in = grad_out * (1.0 - self._out**2)
        self._out = None
        return grad_in


class Flatten(Layer):
    """Collapse all but the batch dimension."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        self._shape = x.shape if train else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_in = grad_out.reshape(self._shape)
        self._shape = None
        return grad_in


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride), NCHW."""

    def __init__(self, kernel_size: int) -> None:
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(
                f"input spatial dims ({h},{w}) must be divisible by kernel {k}"
            )
        oh, ow = h // k, w // k
        windows = x.reshape(n, c, oh, k, ow, k).transpose(0, 1, 2, 4, 3, 5)
        flat = windows.reshape(n, c, oh, ow, k * k)
        out = flat.max(axis=-1)
        if train:
            self._argmax = flat.argmax(axis=-1)
            self._x_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        k = self.kernel_size
        oh, ow = h // k, w // k
        grad_flat = np.zeros((n, c, oh, ow, k * k), dtype=grad_out.dtype)
        np.put_along_axis(
            grad_flat, self._argmax[..., None], grad_out[..., None], axis=-1
        )
        grad_in = (
            grad_flat.reshape(n, c, oh, ow, k, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        self._argmax = None
        self._x_shape = None
        return grad_in


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if not train or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in
