"""Command-line interface: subcommands over the unified experiment API.

Examples
--------
One training run, with the per-round log::

    python -m repro run --method fedhisyn --dataset mnist_like \
        --devices 20 --rounds 12 --beta 0.3 --num-classes 5

Several methods on one identical setup::

    python -m repro compare --method fedhisyn,fedavg,scaffold \
        --dataset cifar10_like --rounds 15 --target 0.7

A campaign: grid over methods x seeds (x any spec field via ``--grid``),
parallel workers, on-disk result cache, mean±std aggregation::

    python -m repro sweep --method fedhisyn,fedavg --seeds 0,1,2 \
        --workers 2 --cache-dir .repro-cache --grid beta=0.1,0.3

The same run in a harsher world (and environments are grid axes too)::

    python -m repro run --method fedhisyn --env flaky_mobile --drop-prob 0.1
    python -m repro sweep --method fedavg --seeds 0,1 --grid env=ideal,wan

What is available::

    python -m repro list methods
    python -m repro list envs
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.campaign import Campaign, CampaignResult, sweep
from repro.compression import available_codecs, codec_entries
from repro.transport import available_transports, transport_entries
from repro.core.aggregation import AGGREGATORS
from repro.core.async_server import STALENESS_DECAYS
from repro.core.registry import method_entries
from repro.core.selection import SELECTION_POLICIES
from repro.datasets.registry import DATASETS
from repro.env.registry import (
    AVAILABILITY_KINDS,
    available_environments,
    environment_entries,
)
from repro.faults import available_fault_models, fault_entries
from repro.experiments import (
    FLEET_PROFILES,
    METHODS,
    ExperimentSpec,
    run_experiment,
)

__all__ = ["build_parser", "main", "spec_from_args"]


def _add_spec_arguments(p: argparse.ArgumentParser) -> None:
    """Experiment-spec options shared by ``run``, ``compare`` and ``sweep``."""
    g = p.add_argument_group("experiment spec")
    g.add_argument("--dataset", default="mnist_like", choices=sorted(DATASETS))
    g.add_argument("--samples", type=int, default=2000, help="dataset size")
    g.add_argument("--devices", type=int, default=20)
    g.add_argument("--fleet-profile", default=None,
                   choices=sorted(FLEET_PROFILES),
                   help="fleet-scale preset supplying devices/samples/"
                        "participation defaults (explicitly set flags "
                        "win); see `repro list fleets`")
    g.add_argument("--partition", default="dirichlet",
                   choices=["iid", "contiguous", "dirichlet", "shard"])
    g.add_argument("--beta", type=float, default=0.3,
                   help="Dirichlet concentration (smaller = more skew)")
    g.add_argument("--participation", type=float, default=1.0)
    g.add_argument("--het-ratio", type=float, default=None,
                   help="exact heterogeneity H = l_max/l_min (Eq. 13)")
    g.add_argument("--units-low", type=int, default=None,
                   help="min training units per round (default: spec's 1)")
    g.add_argument("--units-high", type=int, default=None,
                   help="max training units per round (default: spec's 10)")
    g.add_argument("--rounds", type=int, default=12)
    g.add_argument("--local-epochs", type=int, default=1)
    g.add_argument("--lr", type=float, default=0.1)
    g.add_argument("--batch-size", type=int, default=50)
    g.add_argument("--eval-every", type=int, default=1,
                   help="evaluate the global model every k rounds")
    g.add_argument("--eval-time-every", type=float, default=None,
                   help="also evaluate every this many units of *virtual "
                        "time* (scheduler eval checkpoints; feeds "
                        "time-to-accuracy)")
    g.add_argument("--staleness-decay", default=None,
                   choices=sorted(STALENESS_DECAYS),
                   help="async methods: staleness decay for upload mixing "
                        "(fedasync/fedbuff; ignored by sync methods)")
    g.add_argument("--buffer-goal", type=int, default=None,
                   help="fedbuff: uploads per aggregation (K)")
    g.add_argument("--model-family", default=None, choices=["mlp", "cnn"],
                   help="override the dataset's default model family")
    g.add_argument("--model-preset", default="small", choices=["small", "paper"])
    g.add_argument("--num-classes", type=int, default=5,
                   help="FedHiSyn's K capacity clusters")
    g.add_argument("--selection", default=None,
                   choices=sorted(SELECTION_POLICIES),
                   help="device-selection policy (default: the paper's "
                        "Bernoulli participation sampling)")
    g.add_argument("--selection-fraction", type=float, default=None,
                   help="fraction for --selection (default: --participation)")
    g.add_argument("--env", default="ideal",
                   choices=available_environments(),
                   help="environment preset: network + availability "
                        "(default: the paper's ideal world)")
    g.add_argument("--codec", default="none",
                   choices=available_codecs(),
                   help="update compression codec on every transfer "
                        "(default: dense, the paper's semantics)")
    g.add_argument("--topk-frac", type=float, default=None,
                   help="topk codec: fraction of coordinates kept")
    g.add_argument("--quant-bits", type=int, default=None,
                   help="qsgd codec: quantization bits per coordinate")
    g.add_argument("--transport", default="sim",
                   choices=available_transports(),
                   help="execution backend: sim (in-process, default) or "
                        "live (real worker processes over loopback UDP)")
    g.add_argument("--workers-live", type=int, default=None,
                   help="live transport: number of worker processes "
                        "(default 2)")
    g.add_argument("--device-batching", default="auto",
                   choices=["auto", "off"],
                   help="train a round's devices as stacked GEMMs when the "
                        "model allows it (auto, default) or force the "
                        "sequential per-device path (off)")
    g.add_argument("--aggregator", default=None,
                   choices=sorted(AGGREGATORS),
                   help="fedavg-family aggregation rule (default: each "
                        "method's built-in sample weighting)")
    g.add_argument("--faults", default="none",
                   choices=available_fault_models(),
                   help="fault-injection model applied to the run "
                        "(default: no faults, the seed semantics)")
    g.add_argument("--byzantine-frac", type=float, default=None,
                   help="byzantine faults: fraction of corrupting devices")
    g.add_argument("--crash-prob", type=float, default=None,
                   help="crash faults: per-device per-round crash "
                        "probability")
    g.add_argument("--round-deadline", type=float, default=None,
                   help="sync rounds: drop uploads later than this "
                        "virtual-time deadline and charge the deadline")
    g.add_argument("--over-select", type=float, default=None,
                   help="sync rounds: over-sample participants by this "
                        "margin to compensate for deadline losses")
    g.add_argument("--max-retries", type=int, default=None,
                   help="async methods: upload retransmissions before an "
                        "update is dropped")
    g.add_argument("--drop-prob", type=float, default=None,
                   help="override the preset's message-drop probability")
    g.add_argument("--availability", default=None,
                   choices=sorted(AVAILABILITY_KINDS),
                   help="override the preset's availability model")
    g.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="FedHiSyn (ICPP 2022) reproduction — federated training "
        "on a virtual-time device simulator.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    known = f"(known: {', '.join(sorted(METHODS))})"

    run_p = sub.add_parser("run", help="one method, one training run")
    run_p.add_argument("--method", default="fedhisyn", help=f"algorithm {known}")
    run_p.add_argument("--target", type=float, default=None,
                       help="report transfer cost to reach this accuracy")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress per-round log")
    run_p.add_argument("--json", action="store_true",
                       help="print the result as JSON instead of text")
    _add_spec_arguments(run_p)

    cmp_p = sub.add_parser("compare",
                           help="several methods on one identical setup")
    cmp_p.add_argument("--method", default="fedhisyn,fedavg",
                       help=f"comma-separated algorithms {known}")
    cmp_p.add_argument("--target", type=float, default=None,
                       help="report transfer cost to reach this accuracy")
    cmp_p.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes")
    cmp_p.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk result cache")
    cmp_p.add_argument("--json", action="store_true")
    _add_spec_arguments(cmp_p)

    sweep_p = sub.add_parser("sweep",
                             help="campaign: methods x seeds x --grid axes, "
                                  "parallel + cached + seed-aggregated")
    sweep_p.add_argument("--method", default="fedhisyn",
                         help=f"comma-separated algorithms {known}")
    sweep_p.add_argument("--seeds", default="0",
                         help="comma-separated seeds to replicate over")
    sweep_p.add_argument("--grid", action="append", default=[],
                         metavar="FIELD=V1,V2,...",
                         help="extra sweep axis over an ExperimentSpec field "
                              "(repeatable), e.g. --grid beta=0.1,0.3")
    sweep_p.add_argument("--target", type=float, default=None,
                         help="report transfer cost to reach this accuracy")
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="parallel worker processes")
    sweep_p.add_argument("--cache-dir", default=None,
                         help="directory for the on-disk result cache")
    sweep_p.add_argument("--json", action="store_true")
    sweep_p.add_argument("--quiet", action="store_true",
                         help="suppress per-run progress lines")
    _add_spec_arguments(sweep_p)

    list_p = sub.add_parser("list", help="show registered components")
    list_p.add_argument("what", nargs="?", default="all",
                        choices=["methods", "datasets", "selections", "envs",
                                 "codecs", "fleets", "faults", "transports",
                                 "all"])

    bench_p = sub.add_parser("bench",
                             help="run the perf microbenchmark suite and "
                                  "write BENCH_perf.json")
    bench_p.add_argument("--scale", default="quick",
                         choices=["quick", "full"],
                         help="benchmark scale preset (default: quick)")
    bench_p.add_argument("--out", default="BENCH_perf.json",
                         help="report path (default: BENCH_perf.json)")
    bench_p.add_argument("--repeats", type=int, default=None,
                         help="override best-of repetitions")

    return p


def spec_from_args(args: argparse.Namespace, method: str = "fedhisyn") -> ExperimentSpec:
    """Build the base :class:`ExperimentSpec` from parsed spec options."""
    env_kwargs: dict[str, Any] = {}
    if getattr(args, "drop_prob", None) is not None:
        env_kwargs["drop_prob"] = args.drop_prob
    if getattr(args, "availability", None) is not None:
        env_kwargs["availability"] = args.availability
    # Only the kwargs matching the *selected* codec attach to the spec;
    # the full per-codec map feeds sweep() so a --grid codec axis can
    # carry e.g. a top-k fraction that only lands on the topk cells.
    codec = getattr(args, "codec", "none")
    codec_kwargs = _codec_kwargs_map(args).get(codec, {})
    # Same selected-name rule for the fault axis.
    faults = getattr(args, "faults", "none")
    fault_kwargs = _fault_kwargs_map(args).get(faults, {})
    # And for the transport axis (--workers-live only lands on live cells).
    transport = getattr(args, "transport", "sim")
    transport_kwargs = _transport_kwargs_map(args).get(transport, {})
    # None-valued flags defer to the ExperimentSpec defaults (the same
    # passthrough --het-ratio uses), so spec defaults stay single-sourced.
    units = {
        key: value
        for key, value in (("units_low", args.units_low),
                           ("units_high", args.units_high))
        if value is not None
    }
    return ExperimentSpec(
        method=method,
        **units,
        dataset=args.dataset,
        num_samples=args.samples,
        num_devices=args.devices,
        partition=args.partition,
        beta=args.beta,
        participation=args.participation,
        het_ratio=args.het_ratio,
        rounds=args.rounds,
        local_epochs=args.local_epochs,
        lr=args.lr,
        batch_size=args.batch_size,
        eval_every=args.eval_every,
        eval_time_every=args.eval_time_every,
        staleness_decay=args.staleness_decay,
        buffer_goal=args.buffer_goal,
        model_family=args.model_family,
        model_preset=args.model_preset,
        selection=args.selection,
        selection_fraction=args.selection_fraction,
        env=args.env,
        env_kwargs=env_kwargs,
        codec=codec,
        codec_kwargs=codec_kwargs,
        aggregator=getattr(args, "aggregator", None),
        faults=faults,
        fault_kwargs=fault_kwargs,
        transport=transport,
        transport_kwargs=transport_kwargs,
        device_batching=getattr(args, "device_batching", "auto"),
        round_deadline=getattr(args, "round_deadline", None),
        over_select=getattr(args, "over_select", None),
        max_retries=getattr(args, "max_retries", None),
        fleet_profile=args.fleet_profile,
        seed=args.seed,
    )


def _parse_methods(raw: str) -> tuple[list[str], list[str]]:
    """Split a comma list into (known, unknown) method names."""
    names = [m.strip() for m in raw.split(",") if m.strip()]
    unknown = [m for m in names if m not in METHODS]
    return names, unknown


def _method_kwargs_map(methods: list[str], args: argparse.Namespace) -> dict[str, dict]:
    """Per-method extra config kwargs from CLI conveniences."""
    return {"fedhisyn": {"num_classes": args.num_classes}} if "fedhisyn" in methods else {}


def _codec_kwargs_map(args: argparse.Namespace) -> dict[str, dict]:
    """Per-codec constructor kwargs from CLI conveniences."""
    out: dict[str, dict] = {}
    if getattr(args, "topk_frac", None) is not None:
        out["topk"] = {"fraction": args.topk_frac}
    if getattr(args, "quant_bits", None) is not None:
        out["qsgd"] = {"bits": args.quant_bits}
    return out


def _fault_kwargs_map(args: argparse.Namespace) -> dict[str, dict]:
    """Per-fault-model constructor kwargs from CLI conveniences.

    ``compound`` takes both knobs, so each flag lands on its own model
    *and* on the compound cells of a ``--grid faults=...`` axis.
    """
    out: dict[str, dict] = {}
    byz = getattr(args, "byzantine_frac", None)
    crash = getattr(args, "crash_prob", None)
    if byz is not None:
        out["byzantine"] = {"fraction": byz}
        out.setdefault("compound", {})["fraction"] = byz
    if crash is not None:
        out["crash"] = {"crash_prob": crash}
        out.setdefault("compound", {})["crash_prob"] = crash
    return out


def _transport_kwargs_map(args: argparse.Namespace) -> dict[str, dict]:
    """Per-transport constructor kwargs from CLI conveniences."""
    out: dict[str, dict] = {}
    if getattr(args, "workers_live", None) is not None:
        out["live"] = {"workers": args.workers_live}
    return out


def _parse_grid(pairs: list[str]) -> dict[str, list[Any]]:
    """``--grid field=v1,v2`` strings -> a :func:`repro.campaign.sweep` grid."""
    grid: dict[str, list[Any]] = {}
    for pair in pairs:
        field_name, eq, raw_values = pair.partition("=")
        field_name = field_name.strip().replace("-", "_")
        if not eq or not field_name:
            raise ValueError(f"--grid expects FIELD=V1,V2,..., got {pair!r}")
        # "none" is a codec/fault-model *name*, not a null — skip the
        # null/bool/number coercion on those axes (and on transport,
        # whose values are always backend names).
        convert = str if field_name in ("codec", "faults", "transport") else _convert
        values = [convert(v.strip()) for v in raw_values.split(",") if v.strip()]
        if not values:
            raise ValueError(f"--grid axis {field_name!r} has no values")
        grid[field_name] = values
    return grid


def _convert(raw: str) -> Any:
    """Best-effort typed grid value: int, float, none, bool, else string."""
    lowered = raw.lower()
    if lowered in ("none", "null"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _default_target(args: argparse.Namespace) -> float:
    if args.target is not None:
        return args.target
    return DATASETS[args.dataset].paper_target_accuracy


# ------------------------------------------------------------- subcommands


def _cmd_run(args: argparse.Namespace) -> int:
    methods, unknown = _parse_methods(args.method)
    if unknown or len(methods) != 1:
        if unknown:
            print(f"error: unknown method(s) {unknown}; known: {sorted(METHODS)}",
                  file=sys.stderr)
        else:
            print("error: `run` takes exactly one --method; "
                  "use `compare` or `sweep` for several", file=sys.stderr)
        return 2
    method = methods[0]
    try:
        spec = spec_from_args(args, method=method)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kwargs = _method_kwargs_map([method], args).get(method, {})
    if kwargs:
        spec = spec.with_method(method, **kwargs)
    target = _default_target(args)

    logger = None
    if not args.quiet and not args.json:
        from repro.utils.logging import RunLogger

        logger = RunLogger(method, stream=sys.stdout, verbose=True)
    result = run_experiment(spec, logger=logger)
    cost = result.cost_to_target(target)
    ttt = result.time_to_target(target)

    if args.json:
        print(json.dumps({
            **result.summary(),
            "config": result.config,
            "target": target,
            "cost_to_target": cost,
            "time_to_target": ttt,
            "history": result.history.to_dict(),
        }, indent=2))
        return 0

    from repro.utils.sparkline import labelled_curve

    print("\n" + labelled_curve("test accuracy", result.history.accuracies))
    print(f"{method}: final accuracy {result.final_accuracy:.4f}, "
          f"best {result.best_accuracy:.4f}, "
          f"cost@{target:.0%} {'X' if cost is None else f'{cost:.1f}'}, "
          f"vtime@{target:.0%} {'X' if ttt is None else f'{ttt:.2f}'}")
    if spec.codec != "none":
        t = result.transport
        print(f"{spec.codec}: wire {t['wire_bytes'] / 1e6:.2f} MB "
              f"of {t['raw_bytes'] / 1e6:.2f} MB raw "
              f"({t['compression_ratio']:.1f}x compression)")
    if result.transport_backend != "sim":
        t = result.transport
        print(f"live: {t['live_datagrams_sent']:.0f} datagrams out / "
              f"{t['live_datagrams_received']:.0f} in, "
              f"{t['live_retransmits']:.0f} retransmits, "
              f"{t['live_workers_parked']:.0f} workers parked")
    return 0


def _campaign_specs(args: argparse.Namespace, seeds: list[int]) -> list[ExperimentSpec]:
    methods, unknown = _parse_methods(args.method)
    if unknown:
        raise ValueError(f"unknown method(s) {unknown}; known: {sorted(METHODS)}")
    extra_axes = _parse_grid(getattr(args, "grid", []))
    clash = sorted(set(extra_axes) & {"method", "seed"})
    if clash:
        raise ValueError(
            f"--grid cannot override {clash}; use --method/--seeds instead"
        )
    grid: dict[str, list[Any]] = {"method": methods, "seed": seeds, **extra_axes}
    base = spec_from_args(args, method=methods[0])
    return sweep(
        base,
        grid,
        method_kwargs=_method_kwargs_map(methods, args),
        codec_kwargs=_codec_kwargs_map(args),
        fault_kwargs=_fault_kwargs_map(args),
        transport_kwargs=_transport_kwargs_map(args),
    )


def _run_campaign(args: argparse.Namespace, specs: list[ExperimentSpec],
                  quiet: bool) -> CampaignResult:
    campaign = Campaign(specs, cache_dir=args.cache_dir)
    progress = None if (quiet or args.json) else print
    return campaign.run(workers=args.workers, progress=progress)


def _check_workers(args: argparse.Namespace) -> None:
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        _check_workers(args)
        specs = _campaign_specs(args, seeds=[args.seed])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = _run_campaign(args, specs, quiet=True)
    target = _default_target(args)
    if args.json:
        print(result.to_json(target=target))
        return 0
    title = (f"{args.dataset} / {args.partition}(beta={args.beta}) / "
             f"{args.participation:.0%} participation")
    print(result.to_table(target=target, title=title))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        _check_workers(args)
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        if not seeds:
            raise ValueError("--seeds needs at least one seed")
        specs = _campaign_specs(args, seeds=seeds)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = _run_campaign(args, specs, quiet=args.quiet)
    target = _default_target(args)
    if args.json:
        print(result.to_json(target=target))
        return 0
    title = (f"campaign: {len(specs)} runs "
             f"({result.cache_hits} cached), dataset {args.dataset}")
    print(result.to_table(target=target, title=title))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    sections = []
    if args.what in ("methods", "all"):
        lines = ["methods:"]
        for entry in method_entries():
            lines.append(f"  {entry.name:<10} {entry.description}")
        sections.append("\n".join(lines))
    if args.what in ("datasets", "all"):
        lines = ["datasets:"]
        for name in sorted(DATASETS):
            entry = DATASETS[name]
            lines.append(
                f"  {name:<14} family={entry.model_family} "
                f"paper-target={entry.paper_target_accuracy:.0%} "
                f"paper-rounds={entry.paper_rounds}"
            )
        sections.append("\n".join(lines))
    if args.what in ("selections", "all"):
        lines = ["selection policies:"]
        for name in sorted(SELECTION_POLICIES):
            doc = (SELECTION_POLICIES[name].__doc__ or "").strip().splitlines()[0]
            lines.append(f"  {name:<10} {doc}")
        sections.append("\n".join(lines))
    if args.what in ("envs", "all"):
        lines = ["environments:"]
        for entry in environment_entries():
            lines.append(f"  {entry.name:<13} {entry.description}")
        sections.append("\n".join(lines))
    if args.what in ("codecs", "all"):
        lines = ["codecs:"]
        for entry in codec_entries():
            lines.append(f"  {entry.name:<8} {entry.description}")
        sections.append("\n".join(lines))
    if args.what in ("faults", "all"):
        lines = ["fault models:"]
        for entry in fault_entries():
            lines.append(f"  {entry.name:<10} {entry.description}")
        sections.append("\n".join(lines))
    if args.what in ("transports", "all"):
        lines = ["transports:"]
        for entry in transport_entries():
            lines.append(f"  {entry.name:<6} {entry.description}")
        sections.append("\n".join(lines))
    if args.what in ("fleets", "all"):
        lines = ["fleet profiles:"]
        for name, prof in sorted(FLEET_PROFILES.items(),
                                 key=lambda kv: kv[1]["num_devices"]):
            part = prof["participation"]
            pct = f"{part:.1%}" if part < 0.01 else f"{part:.0%}"
            lines.append(
                f"  {name:<8} devices={prof['num_devices']:<8} "
                f"samples={prof['num_samples']:<8} "
                f"participation={pct}"
            )
        sections.append("\n".join(lines))
    print("\n\n".join(sections))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run ``benchmarks/perf/suite.py`` through its own CLI front-end.

    The benchmarks package lives next to ``src/`` rather than inside it
    (it measures the library from the outside), so it is importable when
    running from the repo root — fail with a hint, not a traceback, when
    it is not on the path.
    """
    try:
        from benchmarks.perf.__main__ import main as bench_main
    except ImportError:
        print(
            "error: the benchmarks package is not importable; "
            "run from the repository root (or add it to PYTHONPATH)",
            file=sys.stderr,
        )
        return 2
    argv = ["--scale", args.scale, "--out", args.out]
    if args.repeats is not None:
        argv += ["--repeats", str(args.repeats)]
    return bench_main(argv)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "list": _cmd_list,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
