"""Command-line interface: run any experiment without writing code.

Examples
--------
Run FedHiSyn on the Non-IID MNIST-role task::

    python -m repro --method fedhisyn --dataset mnist_like \
        --devices 20 --rounds 12 --beta 0.3 --num-classes 5

Compare several methods on one setup::

    python -m repro --method fedhisyn,fedavg,scaffold --dataset cifar10_like \
        --rounds 15 --target 0.7
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.comparison import compare_methods, format_comparison
from repro.experiments import METHODS, ExperimentSpec, run_experiment
from repro.datasets.registry import DATASETS

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="FedHiSyn (ICPP 2022) reproduction — federated training "
        "on a virtual-time device simulator.",
    )
    p.add_argument("--method", default="fedhisyn",
                   help="algorithm, or comma-separated list to compare "
                        f"(known: {', '.join(sorted(METHODS))})")
    p.add_argument("--dataset", default="mnist_like", choices=sorted(DATASETS))
    p.add_argument("--samples", type=int, default=2000, help="dataset size")
    p.add_argument("--devices", type=int, default=20)
    p.add_argument("--partition", default="dirichlet",
                   choices=["iid", "dirichlet", "shard"])
    p.add_argument("--beta", type=float, default=0.3,
                   help="Dirichlet concentration (smaller = more skew)")
    p.add_argument("--participation", type=float, default=1.0)
    p.add_argument("--het-ratio", type=float, default=None,
                   help="exact heterogeneity H = l_max/l_min (Eq. 13)")
    p.add_argument("--rounds", type=int, default=12)
    p.add_argument("--local-epochs", type=int, default=1)
    p.add_argument("--lr", type=float, default=0.1)
    p.add_argument("--batch-size", type=int, default=50)
    p.add_argument("--model-family", default=None, choices=[None, "mlp", "cnn"])
    p.add_argument("--model-preset", default="small", choices=["small", "paper"])
    p.add_argument("--num-classes", type=int, default=5,
                   help="FedHiSyn's K capacity clusters")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--target", type=float, default=None,
                   help="report transfer cost to reach this accuracy")
    p.add_argument("--quiet", action="store_true", help="suppress per-round log")
    return p


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return ExperimentSpec(
        method="fedhisyn",  # replaced per method below
        dataset=args.dataset,
        num_samples=args.samples,
        num_devices=args.devices,
        partition=args.partition,
        beta=args.beta,
        participation=args.participation,
        het_ratio=args.het_ratio,
        rounds=args.rounds,
        local_epochs=args.local_epochs,
        lr=args.lr,
        batch_size=args.batch_size,
        model_family=args.model_family,
        model_preset=args.model_preset,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    methods = [m.strip() for m in args.method.split(",") if m.strip()]
    unknown = [m for m in methods if m not in METHODS]
    if unknown:
        print(f"error: unknown method(s) {unknown}; known: {sorted(METHODS)}",
              file=sys.stderr)
        return 2
    spec = spec_from_args(args)
    target = args.target if args.target is not None else 0.8

    if len(methods) == 1:
        method = methods[0]
        kwargs = {"num_classes": args.num_classes} if method == "fedhisyn" else {}
        from repro.utils.logging import RunLogger

        logger = None if args.quiet else RunLogger(method, stream=sys.stdout,
                                                   verbose=True)
        result = run_experiment(spec.with_method(method, **kwargs), logger=logger)
        cost = result.cost_to_target(target)
        from repro.utils.sparkline import labelled_curve

        print("\n" + labelled_curve("test accuracy", result.history.accuracies))
        print(f"{method}: final accuracy {result.final_accuracy:.4f}, "
              f"best {result.best_accuracy:.4f}, "
              f"cost@{target:.0%} {'X' if cost is None else f'{cost:.1f}'}")
        return 0

    results = compare_methods(
        spec, methods=methods,
        method_kwargs={"fedhisyn": {"num_classes": args.num_classes}},
    )
    print(format_comparison(results, target=target,
                            title=f"{args.dataset} / {args.partition}"
                                  f"(beta={args.beta}) / "
                                  f"{args.participation:.0%} participation"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
