"""The Transport interface: who executes a round's device training, and
over what medium the model bytes move.

A transport backend sits *behind* the server's channel API.  The default
:class:`~repro.transport.sim.SimTransport` executes training in-process
and moves nothing — the discrete-event simulator's semantics, bit-
identical to every run that predates the transport layer.  The
:class:`~repro.transport.live.LiveTransport` executes the same
``ExperimentSpec`` as real OS processes exchanging UDP datagrams, while
the coordinator keeps running the identical virtual clock, metering and
aggregation math — which is what makes sim and live runs cross-validate
(down to bit-identity for lossless codecs).

The server calls three hooks per synchronous round, mirroring its own
channel API:

* :meth:`Transport.train_round` — run one training unit per receiver,
  results landing in the round's stacked rows.  Sim trains in-process;
  live ships the round to the worker processes owning those devices and
  reassembles their uploads.
* :meth:`Transport.broadcast_model` / :meth:`Transport.collect_models`
  — only consulted when ``is_sim`` is False: the live down/uplink legs
  (real sends plus the same metering/clock charges the sim applies).

Lifecycle: :meth:`bind` attaches the backend to a built server (and
validates the spec), :meth:`start` brings up any real infrastructure,
:meth:`shutdown` tears it down — both no-ops for sim, both idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.server import FederatedServer
    from repro.device.device import Device

__all__ = ["LiveTransportStats", "Transport"]


@dataclass
class LiveTransportStats:
    """Exact datagram-level accounting for one live run.

    ``payload_bytes_*`` counts chunk payloads only (the codec bytes the
    simulator also charges); ``datagrams_*`` counts every frame incl.
    headers, acks and heartbeats.  :meth:`snapshot` is folded into
    ``RunResult.transport`` under ``live_``-prefixed keys.
    """

    datagrams_sent: int = 0
    datagrams_received: int = 0
    payload_bytes_sent: int = 0
    payload_bytes_received: int = 0
    retransmits: int = 0
    reassembly_failures: int = 0
    heartbeat_misses: int = 0
    workers_parked: int = 0
    workers_rejoined: int = 0
    rounds_dispatched: int = 0

    def snapshot(self) -> dict[str, float]:
        return {f"live_{f.name}": getattr(self, f.name) for f in fields(self)}


class Transport:
    """Base class: lifecycle + the per-round execution hooks."""

    name = "base"
    #: True for backends whose channel legs are pure simulation — the
    #: server then keeps its original (bit-identity fast path) channel
    #: code and only delegates :meth:`train_round`.
    is_sim = True
    description = ""

    # ------------------------------------------------------------ lifecycle

    def bind(self, server: "FederatedServer", spec: Any = None) -> None:
        """Attach to a built server (before :meth:`start`)."""
        self.server = server
        self.spec = spec

    def validate_spec(self, spec: Any) -> None:
        """Raise ``ValueError`` when ``spec`` cannot run on this backend.

        Called during ``ExperimentSpec`` validation so an unsupported
        method/env/fault combination fails at spec time, not mid-run.
        """

    def start(self) -> None:
        """Bring up real infrastructure (live: spawn workers).  No-op for
        purely simulated backends; idempotent."""

    def shutdown(self) -> None:
        """Tear everything down; never raises, safe to call twice."""

    # ---------------------------------------------------------------- hooks

    def train_round(
        self,
        server: "FederatedServer",
        receivers: "list[Device]",
        stack: np.ndarray,
        epochs: np.ndarray,
        round_idx: int,
        global_weights: np.ndarray,
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
    ) -> None:
        raise NotImplementedError

    def broadcast_model(
        self,
        server: "FederatedServer",
        receivers: "list[Device]",
        weights: np.ndarray,
        extra_units: float = 0.0,
        ensure_one: bool = True,
    ) -> "tuple[list[Device], np.ndarray]":
        raise NotImplementedError

    def collect_models(
        self,
        server: "FederatedServer",
        senders: "list[Device]",
        stack: np.ndarray,
        reference: np.ndarray | dict[int, np.ndarray] | None = None,
        extra_units: float = 0.0,
        ensure_one: bool = True,
    ) -> "tuple[list[int], np.ndarray]":
        raise NotImplementedError

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict[str, float]:
        """Backend accounting folded into ``RunResult.transport``; empty
        for the simulator (the meter already tells the whole story)."""
        return {}

    def describe(self) -> str:
        """One-line summary for ``repro list transports``."""
        return self.description or self.name

