"""The live transport's worker process.

Each worker rebuilds the full experiment substrate from the spec dict
(same seeds → bit-identical shards, model init and training streams as
the coordinator's own simulator would produce), claims the devices with
``device_id % num_workers == rank``, and then runs a handler-registry
dispatch loop against its UDP endpoint:

* JOIN (retried) until the coordinator acks registration,
* per round: a ROUND control message (which devices, how many epochs,
  proximal settings) plus a MODEL transfer (the encoded global model);
  once *both* have arrived for the same round the worker trains its
  owned devices and streams one UPDATE transfer per device back,
* HEARTBEAT beats on a timer so the coordinator's failure detector has
  a liveness signal to miss,
* SHUTDOWN → BYE → exit; and if the coordinator goes silent past the
  idle timeout the worker exits on its own (an orphaned worker never
  outlives a killed run).

Decode/encode mirrors the server's channel legs exactly: downlink
payloads decode against the worker's own reference chain (seeded by the
same dense fallback the server uses on first contact), uplink updates
encode per-device with ``key=device_id, reference=view`` — so the bytes
the coordinator reassembles are the bytes the simulator would have
charged for.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.compression.base import PAYLOAD_KIND_CODES, PAYLOAD_KINDS, Encoded
from repro.transport.endpoint import Addr, Endpoint
from repro.transport.frames import (
    MSG_BYE,
    MSG_HEARTBEAT,
    MSG_JOIN,
    MSG_JOIN_ACK,
    MSG_MODEL,
    MSG_ROUND,
    MSG_SHUTDOWN,
    MSG_UPDATE,
    Frame,
)

__all__ = ["worker_main"]


class _Worker:
    def __init__(
        self,
        spec_dict: dict,
        rank: int,
        num_workers: int,
        coord_addr: Addr,
        chunk_bytes: int,
        rto: float,
        max_attempts: int,
        heartbeat_interval: float,
        join_timeout: float,
        idle_timeout: float,
    ) -> None:
        # Deferred import: worker processes import the package fresh under
        # fork/spawn and experiments -> transport is already a cycle edge.
        from repro.experiments import ExperimentSpec, build_experiment

        spec = ExperimentSpec.from_dict(
            {**spec_dict, "transport": "sim", "transport_kwargs": {}}
        )
        server = build_experiment(spec)
        self.trainer = server.trainer
        self.fleet = server.fleet
        self.codec = server.codec
        self.dim = server.trainer.model.dim
        self.rank = rank
        self.owned = {
            int(dev_id)
            for dev_id in range(spec.num_devices)
            if dev_id % num_workers == rank
        }
        self.coord = coord_addr
        self.heartbeat_interval = heartbeat_interval
        self.join_timeout = join_timeout
        self.idle_timeout = idle_timeout
        self.ep = Endpoint(
            rank, chunk_bytes=chunk_bytes, rto=rto, max_attempts=max_attempts
        )
        self.joined = False
        self.running = True
        self.last_from_coord = time.monotonic()
        self.last_beat = 0.0
        # round_idx -> parsed control / decoded model view; a round trains
        # once both halves are present.
        self._controls: dict[int, dict] = {}
        self._views: dict[int, np.ndarray] = {}
        self._trained: set[int] = set()
        self._down_ref: np.ndarray | None = None

        self.ep.on(MSG_JOIN_ACK, self._on_join_ack)
        self.ep.on(MSG_ROUND, self._on_round)
        self.ep.on(MSG_MODEL, self._on_model)
        self.ep.on(MSG_SHUTDOWN, self._on_shutdown)

    # ------------------------------------------------------------ handlers

    def _on_join_ack(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        self.joined = True
        self.last_from_coord = time.monotonic()

    def _on_shutdown(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        self.running = False

    def _on_round(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        self.last_from_coord = time.monotonic()
        self._controls[frame.round_idx] = json.loads(payload.decode("utf-8"))
        self._maybe_train(frame.round_idx)

    def _on_model(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        self.last_from_coord = time.monotonic()
        kind = PAYLOAD_KINDS.get(frame.kind)
        if kind is None:
            return
        if kind == "raw":
            view = np.frombuffer(payload, dtype=np.float64).copy()
        else:
            enc = Encoded.from_bytes(
                payload, kind, frame.dim,
                reference=self._down_ref, param=frame.param,
            )
            view = self.codec.decode(enc)
            # Mirror the server's downlink reference chain.
            self._down_ref = view
        self._views[frame.round_idx] = view
        self._maybe_train(frame.round_idx)

    # ------------------------------------------------------------ training

    def _maybe_train(self, round_idx: int) -> None:
        if round_idx in self._trained:
            return
        control = self._controls.get(round_idx)
        view = self._views.get(round_idx)
        if control is None or view is None:
            return
        self._trained.add(round_idx)
        mu = float(control.get("mu", 0.0))
        anchor = view if control.get("anchor") else None
        identity = self.codec.is_identity
        for dev_id, epochs in control["devices"]:
            dev_id = int(dev_id)
            if dev_id not in self.owned:
                continue
            new_w, _steps = self.trainer.train(
                view,
                self.fleet.shard(dev_id),
                int(epochs),
                stream_key=(dev_id, round_idx, 0),
                anchor=anchor,
                mu=mu,
            )
            if identity:
                blob = np.ascontiguousarray(new_w, dtype=np.float64).tobytes()
                kind_code, param = PAYLOAD_KIND_CODES["raw"], 0
            else:
                enc = self.codec.encode(new_w, key=dev_id, reference=view)
                blob = enc.to_bytes()
                kind_code, param = PAYLOAD_KIND_CODES[enc.kind], enc.param
            self.ep.send_blob(
                MSG_UPDATE,
                self.coord,
                blob,
                kind=kind_code,
                param=param,
                round_idx=round_idx,
                device_id=dev_id,
                dim=self.dim,
            )
        # Trained rounds' inputs are dead weight; drop everything older.
        for stale in [r for r in self._views if r < round_idx]:
            self._views.pop(stale, None)
            self._controls.pop(stale, None)

    # ---------------------------------------------------------------- loop

    def run(self) -> None:
        join_deadline = time.monotonic() + self.join_timeout
        next_join = 0.0
        try:
            while self.running:
                now = time.monotonic()
                if not self.joined:
                    if now >= join_deadline:
                        return
                    if now >= next_join:
                        self.ep.send_control(MSG_JOIN, self.coord)
                        next_join = now + 0.2
                elif now - self.last_beat >= self.heartbeat_interval:
                    self.ep.send_control(MSG_HEARTBEAT, self.coord)
                    self.last_beat = now
                if now - self.last_from_coord > self.idle_timeout:
                    # Orphaned: the coordinator died without a SHUTDOWN.
                    return
                self.ep.pump(timeout=0.02)
        finally:
            self.ep.send_control(MSG_BYE, self.coord)
            self.ep.close()


def worker_main(
    spec_dict: dict,
    rank: int,
    num_workers: int,
    coord_port: int,
    chunk_bytes: int = 1200,
    rto: float = 0.05,
    max_attempts: int = 20,
    heartbeat_interval: float = 0.25,
    join_timeout: float = 15.0,
    idle_timeout: float = 60.0,
) -> None:
    """Process entry point: build the substrate, join, serve rounds."""
    worker = _Worker(
        spec_dict,
        rank,
        num_workers,
        ("127.0.0.1", coord_port),
        chunk_bytes,
        rto,
        max_attempts,
        heartbeat_interval,
        join_timeout,
        idle_timeout,
    )
    worker.run()
