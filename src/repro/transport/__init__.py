"""Transport backends: who executes a round, over what medium.

Importing this package registers both backends:

* ``sim`` — the in-process discrete-event default (bit-identical no-op).
* ``live`` — coordinator + N worker OS processes over loopback UDP,
  cross-validated against the simulator.
"""

from repro.transport.base import LiveTransportStats, Transport
from repro.transport.live import LIVE_CAPABLE_METHODS, LiveTransport
from repro.transport.registry import (
    TransportEntry,
    available_transports,
    make_transport,
    register_transport,
    transport_entries,
)
from repro.transport.sim import SimTransport

__all__ = [
    "LIVE_CAPABLE_METHODS",
    "LiveTransport",
    "LiveTransportStats",
    "SimTransport",
    "Transport",
    "TransportEntry",
    "available_transports",
    "make_transport",
    "register_transport",
    "transport_entries",
]
