"""One UDP endpoint of the live transport: socket + pump + reliability.

Both the coordinator and every worker own exactly one :class:`Endpoint`.
It wraps one datagram socket on the loopback interface and provides:

* **handler-registry dispatch** — :meth:`on` registers a callable per
  message type; :meth:`pump` reads datagrams and dispatches.  Control
  messages (JOIN, HEARTBEAT, ...) dispatch per datagram; reliable types
  (ROUND, MODEL, UPDATE) dispatch once per *completed* transfer, with
  the reassembled payload.
* **chunked reliable transfer** — :meth:`send_blob` splits a payload
  into ``chunk_bytes`` pieces; every chunk is retransmitted on an ``rto``
  timer until the peer acks it, up to ``max_attempts`` sends, after
  which the transfer is abandoned and counted as a failure.  Receivers
  ack every chunk (duplicates included — an ack may have been lost) and
  deduplicate completed transfers so a handler never fires twice.
* **exact accounting** — every datagram and payload byte in either
  direction lands in the shared :class:`LiveTransportStats`.

The pump is single-threaded and non-blocking (``select`` with a
timeout); callers drive it from their own loop, so there is no
cross-thread state to lock.
"""

from __future__ import annotations

import select
import socket
import time
from typing import Callable

from repro.transport.base import LiveTransportStats
from repro.transport.frames import (
    MSG_ACK,
    NO_DEVICE,
    RELIABLE_TYPES,
    Frame,
    Reassembler,
    chunk_payload,
    pack_frame,
    unpack_frame,
)

__all__ = ["Endpoint"]

Addr = tuple[str, int]
Handler = Callable[[Frame, bytes, Addr], None]

#: Receive buffer request — a full model broadcast can burst hundreds of
#: chunks before the receiver's pump runs; the default 208KiB buffer
#: drops the tail and turns every broadcast into an rto stall.
_RCVBUF_BYTES = 1 << 22


class _Outbound:
    """Sender-side state of one reliable transfer."""

    __slots__ = ("addr", "frames", "unacked", "last_send", "sends")

    def __init__(self, addr: Addr, frames: list[bytes]) -> None:
        self.addr = addr
        self.frames = frames
        self.unacked = set(range(len(frames)))
        self.last_send = 0.0
        self.sends = 0


class Endpoint:
    def __init__(
        self,
        rank: int,
        stats: LiveTransportStats | None = None,
        chunk_bytes: int = 1200,
        rto: float = 0.05,
        max_attempts: int = 20,
    ) -> None:
        self.rank = int(rank)
        self.stats = stats if stats is not None else LiveTransportStats()
        self.chunk_bytes = int(chunk_bytes)
        self.rto = float(rto)
        self.max_attempts = int(max_attempts)
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _RCVBUF_BYTES)
        except OSError:  # pragma: no cover - kernel said no; run anyway
            pass
        self.sock.bind(("127.0.0.1", 0))
        self.sock.setblocking(False)
        self._handlers: dict[int, Handler] = {}
        self._reasm = Reassembler()
        # (acked msg_type, round_idx, device_id, dest addr) -> _Outbound
        self._outbound: dict[tuple[int, int, int, Addr], _Outbound] = {}
        # Completed inbound transfer keys: ack duplicates, dispatch once.
        self._delivered: set[tuple[int, int, int, int]] = set()
        self._closed = False

    # ------------------------------------------------------------ plumbing

    @property
    def port(self) -> int:
        return self.sock.getsockname()[1]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.sock.close()

    def on(self, msg_type: int, handler: Handler) -> None:
        """Register ``handler(frame, payload, addr)`` for ``msg_type``."""
        self._handlers[msg_type] = handler

    # ------------------------------------------------------------- sending

    def _send_datagram(self, data: bytes, addr: Addr) -> None:
        try:
            self.sock.sendto(data, addr)
        except OSError:
            # A full send buffer or a torn-down peer socket: the chunk
            # retransmit timer (or the caller's own retry) recovers.
            return
        self.stats.datagrams_sent += 1

    def send_control(
        self,
        msg_type: int,
        addr: Addr,
        *,
        kind: int = 0,
        param: int = 0,
        round_idx: int = 0,
        device_id: int = NO_DEVICE,
        payload: bytes = b"",
    ) -> None:
        """Fire one unreliable datagram (JOIN/HEARTBEAT/SHUTDOWN/...)."""
        self._send_datagram(
            pack_frame(
                msg_type,
                kind=kind,
                param=param,
                rank=self.rank,
                round_idx=round_idx,
                device_id=device_id,
                total_len=len(payload),
                payload=payload,
            ),
            addr,
        )

    def send_blob(
        self,
        msg_type: int,
        addr: Addr,
        payload: bytes,
        *,
        kind: int = 0,
        param: int = 0,
        round_idx: int = 0,
        device_id: int = NO_DEVICE,
        dim: int = 0,
    ) -> None:
        """Start one reliable chunked transfer (ROUND/MODEL/UPDATE)."""
        if msg_type not in RELIABLE_TYPES:
            raise ValueError(f"msg_type {msg_type} is not a reliable type")
        chunks = chunk_payload(payload, self.chunk_bytes)
        frames = [
            pack_frame(
                msg_type,
                kind=kind,
                param=param,
                rank=self.rank,
                round_idx=round_idx,
                device_id=device_id,
                dim=dim,
                total_len=len(payload),
                chunk_idx=i,
                chunk_count=len(chunks),
                payload=chunk,
            )
            for i, chunk in enumerate(chunks)
        ]
        key = (msg_type, round_idx, device_id, addr)
        # A re-send of the same transfer replaces the old state wholesale.
        out = _Outbound(addr, frames)
        self._outbound[key] = out
        self._transmit(out)
        self.stats.payload_bytes_sent += len(payload)

    def _transmit(self, out: _Outbound) -> None:
        for i in sorted(out.unacked):
            self._send_datagram(out.frames[i], out.addr)
        out.sends += 1
        out.last_send = time.monotonic()

    @property
    def pending_sends(self) -> int:
        """Reliable transfers still awaiting full acknowledgement."""
        return len(self._outbound)

    # ----------------------------------------------------------- receiving

    def pump(self, timeout: float = 0.0) -> int:
        """Process inbound datagrams and due retransmits.

        Waits up to ``timeout`` seconds for the *first* datagram, then
        drains whatever is queued without blocking.  Returns the number
        of datagrams processed.
        """
        if self._closed:
            return 0
        processed = 0
        wait = max(0.0, timeout)
        while True:
            ready, _, _ = select.select([self.sock], [], [], wait)
            wait = 0.0
            if not ready:
                break
            while True:
                try:
                    data, addr = self.sock.recvfrom(65535)
                except BlockingIOError:
                    break
                except OSError:  # pragma: no cover - closed under our feet
                    return processed
                processed += 1
                self.stats.datagrams_received += 1
                frame = unpack_frame(data)
                if frame is not None:
                    self._dispatch(frame, addr)
            break
        self._retransmit_due()
        self.stats.reassembly_failures = self._reasm.failures
        return processed

    def _dispatch(self, frame: Frame, addr: Addr) -> None:
        if frame.msg_type == MSG_ACK:
            # kind carries the acked message type; chunk_idx the chunk.
            key = (frame.kind, frame.round_idx, frame.device_id, addr)
            out = self._outbound.get(key)
            if out is not None:
                out.unacked.discard(frame.chunk_idx)
                if not out.unacked:
                    del self._outbound[key]
            return
        if frame.msg_type in RELIABLE_TYPES:
            # Always ack — the sender may be retransmitting a chunk whose
            # previous ack was lost.
            self._send_datagram(
                pack_frame(
                    MSG_ACK,
                    kind=frame.msg_type,
                    rank=self.rank,
                    round_idx=frame.round_idx,
                    device_id=frame.device_id,
                    chunk_idx=frame.chunk_idx,
                ),
                addr,
            )
            if frame.transfer_key in self._delivered:
                return
            blob = self._reasm.add(frame)
            if blob is None:
                return
            self._delivered.add(frame.transfer_key)
            self.stats.payload_bytes_received += len(blob)
            handler = self._handlers.get(frame.msg_type)
            if handler is not None:
                handler(frame, blob, addr)
            return
        handler = self._handlers.get(frame.msg_type)
        if handler is not None:
            handler(frame, frame.payload, addr)

    def _retransmit_due(self) -> None:
        now = time.monotonic()
        for key, out in list(self._outbound.items()):
            if now - out.last_send < self.rto:
                continue
            if out.sends >= self.max_attempts:
                # Peer is gone (or hopelessly lossy): abandon, count it.
                del self._outbound[key]
                self._reasm.failures += 1
                continue
            self.stats.retransmits += len(out.unacked)
            self._transmit(out)

    def forget_peer(self, addr: Addr, rank: int) -> None:
        """Drop all reliability state tied to a dead peer."""
        for key in [k for k, o in self._outbound.items() if o.addr == addr]:
            del self._outbound[key]
        self._reasm.discard_rank(rank)
        self.stats.reassembly_failures = self._reasm.failures
