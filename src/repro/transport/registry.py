"""Named transport backends: the sim/live execution axis.

Mirrors :mod:`repro.env.registry`: every backend registers a factory
under a short lowercase name, :func:`make_transport` instantiates one
with keyword overrides (the ``ExperimentSpec.transport_kwargs`` /
``--workers-live`` path), and bad names or kwargs fail with
``ValueError`` at spec-validation time rather than mid-campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.transport.base import Transport

__all__ = [
    "TransportEntry",
    "register_transport",
    "make_transport",
    "available_transports",
    "transport_entries",
]


@dataclass(frozen=True)
class TransportEntry:
    """One registered backend: its factory plus the ``list`` blurb."""

    name: str
    factory: Callable[..., Transport]
    description: str = ""


_REGISTRY: dict[str, TransportEntry] = {}


def register_transport(
    name: str, description: str = ""
) -> Callable[[Callable[..., Transport]], Callable[..., Transport]]:
    """Decorator registering a transport factory (usually the class)
    under ``name``."""
    if not name or not name.replace("_", "").islower() or not name.isidentifier():
        raise ValueError(
            f"transport name must be a lowercase identifier, got {name!r}"
        )

    def decorate(factory: Callable[..., Transport]) -> Callable[..., Transport]:
        if name in _REGISTRY and _REGISTRY[name].factory is not factory:
            raise ValueError(f"transport {name!r} is already registered")
        _REGISTRY[name] = TransportEntry(name, factory, description)
        return factory

    return decorate


def make_transport(name: str, **overrides: Any) -> Transport:
    """Instantiate a registered transport, applying keyword overrides.

    Raises ``ValueError`` for an unknown name *or* an unknown override
    key, so :class:`~repro.experiments.ExperimentSpec` validation catches
    bad ``transport_kwargs`` at sweep-expansion time.  Construction is
    cheap and side-effect free — the live backend opens sockets and
    spawns workers only once a run actually starts.
    """
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; known: {available_transports()}"
        ) from None
    try:
        return entry.factory(**overrides)
    except TypeError as exc:
        raise ValueError(
            f"bad transport_kwargs for transport {name!r}: {exc}"
        ) from None


def available_transports() -> list[str]:
    """Sorted names of every registered transport backend."""
    return sorted(_REGISTRY)


def transport_entries() -> list[TransportEntry]:
    """All registered entries, sorted by name — the ``list`` feed."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
