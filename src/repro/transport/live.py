"""The live backend: real worker processes, real UDP datagrams.

``LiveTransport`` runs the round loop's device training in ``workers``
OS processes (one coordinator endpoint + N worker endpoints exchanging
framed datagrams over loopback, :mod:`repro.transport.frames`) while the
coordinator keeps executing the *identical* virtual-clock, metering,
drop and aggregation code the simulator runs.  That shared math is the
cross-validation contract:

* under the identity codec a clean live run is **bit-identical** to the
  ``sim`` transport (same meter calls, same clock charges, same
  training streams, same aggregation order — only the bytes physically
  move);
* under lossy codecs the bytes on the wire are exactly the bytes the
  simulator charges (``Encoded.to_bytes`` ↔ ``nbytes``), and accuracy
  tracks the simulated run within stochastic-rounding tolerance.

Failure handling mirrors PR 7's heartbeat semantics at process
granularity: every worker beats on a timer; a worker silent past
``heartbeat_interval * miss_limit`` is *parked* (counted as one
injected + detected crash — the external kill is real, and the detector
caught it), its devices excluded from subsequent dispatch, its partial
transfers discarded.  A parked worker that speaks again rejoins
(``false_suspicions += 1``).  Every round additionally carries a wall
``round_timeout`` so a killed worker can never hang the run: the round
completes with the updates that arrived, exactly like a PR 7 round
deadline.

Supported specs: the synchronous FedAvg family (``fedavg``,
``fedprox``, ``tfedavg``) on drop-free environments without injected
faults — everything else raises at spec-validation time.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.compression.base import PAYLOAD_KIND_CODES, PAYLOAD_KINDS, Encoded
from repro.transport.base import LiveTransportStats, Transport
from repro.transport.endpoint import Addr, Endpoint
from repro.transport.frames import (
    COORDINATOR_RANK,
    MSG_BYE,
    MSG_HEARTBEAT,
    MSG_JOIN,
    MSG_JOIN_ACK,
    MSG_MODEL,
    MSG_ROUND,
    MSG_SHUTDOWN,
    MSG_UPDATE,
    NO_DEVICE,
    Frame,
)
from repro.transport.registry import register_transport
from repro.transport.worker import worker_main

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.server import FederatedServer
    from repro.device.device import Device

__all__ = ["LiveTransport", "LIVE_CAPABLE_METHODS"]

#: Methods whose round loop runs entirely through the three transport
#: hooks.  Async/semi-async/gossip methods drive the channel at event
#: granularity and stay sim-only for now.
LIVE_CAPABLE_METHODS = frozenset({"fedavg", "fedprox", "tfedavg"})


@register_transport(
    "live",
    "real OS worker processes over loopback UDP, cross-validated "
    "against the simulator",
)
class LiveTransport(Transport):
    name = "live"
    is_sim = False
    description = (
        "coordinator + N worker processes exchanging framed UDP "
        "datagrams; sim-identical metering and aggregation"
    )

    def __init__(
        self,
        workers: int = 2,
        chunk_bytes: int = 1200,
        rto: float = 0.05,
        max_attempts: int = 20,
        heartbeat_interval: float = 0.25,
        miss_limit: int = 8,
        round_timeout: float = 60.0,
        join_timeout: float = 15.0,
        idle_timeout: float = 60.0,
        kill_rank: int | None = None,
        kill_round: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"live transport needs >= 1 worker, got {workers}")
        self.workers = int(workers)
        self.chunk_bytes = int(chunk_bytes)
        self.rto = float(rto)
        self.max_attempts = int(max_attempts)
        self.heartbeat_interval = float(heartbeat_interval)
        self.miss_limit = int(miss_limit)
        self.round_timeout = float(round_timeout)
        self.join_timeout = float(join_timeout)
        self.idle_timeout = float(idle_timeout)
        # Chaos knobs (tests/CI): SIGKILL worker ``kill_rank`` right after
        # round ``kill_round`` is dispatched to it.
        self.kill_rank = kill_rank
        self.kill_round = kill_round

        self.live_stats = LiveTransportStats()
        self.ep: Endpoint | None = None
        self._procs: list[multiprocessing.Process] = []
        self._addrs: dict[int, Addr] = {}
        self._last_seen: dict[int, float] = {}
        self._parked: set[int] = set()
        self._started = False
        self._down = False
        # (round_idx, device_id) -> (kind_code, param, payload bytes)
        self._updates: dict[tuple[int, int], tuple[int, int, bytes]] = {}
        self._last_view: np.ndarray | None = None

    # ----------------------------------------------------------- validation

    def validate_spec(self, spec: Any) -> None:
        from repro.env.registry import make_environment

        if spec.method not in LIVE_CAPABLE_METHODS:
            raise ValueError(
                f"transport 'live' supports methods "
                f"{sorted(LIVE_CAPABLE_METHODS)}, got {spec.method!r}"
            )
        env = make_environment(spec.env, **spec.env_kwargs)
        drop_prob = getattr(env.network, "drop_prob", 0.0)
        if drop_prob > 0.0:
            raise ValueError(
                "transport 'live' needs a drop-free environment "
                f"(env {spec.env!r} has drop_prob={drop_prob}); real loss "
                "is handled by the datagram layer, not simulated drops"
            )
        if spec.faults != "none":
            raise ValueError(
                "transport 'live' cannot run injected fault models "
                f"(faults={spec.faults!r}); kill real workers instead "
                "(kill_rank/kill_round transport kwargs)"
            )

    # ------------------------------------------------------------ lifecycle

    def _spec_dict(self) -> dict:
        spec = self.spec
        if spec is None:
            raise RuntimeError("live transport was never bound to a spec")
        return spec.to_dict()

    def start(self) -> None:
        """Spawn the worker fleet and wait for every rank to join."""
        if self._started:
            return
        self._started = True
        self.ep = Endpoint(
            COORDINATOR_RANK,
            stats=self.live_stats,
            chunk_bytes=self.chunk_bytes,
            rto=self.rto,
            max_attempts=self.max_attempts,
        )
        self.ep.on(MSG_JOIN, self._on_join)
        self.ep.on(MSG_HEARTBEAT, self._on_heartbeat)
        self.ep.on(MSG_UPDATE, self._on_update)
        self.ep.on(MSG_BYE, self._on_bye)

        spec_dict = self._spec_dict()
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            ctx = multiprocessing.get_context("spawn")
        for rank in range(self.workers):
            proc = ctx.Process(
                target=worker_main,
                args=(
                    spec_dict,
                    rank,
                    self.workers,
                    self.ep.port,
                    self.chunk_bytes,
                    self.rto,
                    self.max_attempts,
                    self.heartbeat_interval,
                    self.join_timeout,
                    self.idle_timeout,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

        deadline = time.monotonic() + self.join_timeout
        while len(self._addrs) < self.workers:
            if time.monotonic() > deadline:
                missing = sorted(set(range(self.workers)) - set(self._addrs))
                self.shutdown()
                raise RuntimeError(
                    f"live transport: workers {missing} never joined "
                    f"within {self.join_timeout}s"
                )
            self.ep.pump(timeout=0.05)

    def shutdown(self) -> None:
        """Stop workers and close the endpoint; idempotent, never raises."""
        if self._down:
            return
        self._down = True
        if self.ep is not None:
            for addr in self._addrs.values():
                self.ep.send_control(MSG_SHUTDOWN, addr)
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stubborn worker
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover
                proc.kill()
                proc.join(timeout=1.0)
        self._procs.clear()
        if self.ep is not None:
            self.ep.close()
            self.ep = None

    def __del__(self) -> None:  # pragma: no cover - last-resort cleanup
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------- handlers

    def _on_join(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        self._addrs[frame.rank] = addr
        self._last_seen[frame.rank] = time.monotonic()
        assert self.ep is not None
        self.ep.send_control(MSG_JOIN_ACK, addr)

    def _on_heartbeat(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        self._last_seen[frame.rank] = time.monotonic()

    def _on_update(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        self._last_seen[frame.rank] = time.monotonic()
        self._updates[(frame.round_idx, frame.device_id)] = (
            frame.kind, frame.param, payload,
        )

    def _on_bye(self, frame: Frame, payload: bytes, addr: Addr) -> None:
        if not self._down:
            # A worker leaving mid-run is a crash in all but name.
            self._park(frame.rank)

    # -------------------------------------------------- failure bookkeeping

    def _park(self, rank: int) -> None:
        if rank in self._parked or rank not in self._addrs:
            return
        self._parked.add(rank)
        self.live_stats.workers_parked += 1
        self.live_stats.heartbeat_misses += self.miss_limit
        # The kill was external and real; the detector caught it — one
        # injected, one detected crash, mirroring PR 7's ledger.
        res = self.server.resilience
        res.injected_crashes += 1
        res.detected_crashes += 1
        if self.ep is not None:
            self.ep.forget_peer(self._addrs[rank], rank)

    def _rejoin(self, rank: int) -> None:
        self._parked.discard(rank)
        self.live_stats.workers_rejoined += 1
        self.server.resilience.false_suspicions += 1

    def _check_liveness(self, baseline: dict[int, float]) -> None:
        now = time.monotonic()
        window = self.heartbeat_interval * self.miss_limit
        for rank in range(self.workers):
            seen = self._last_seen.get(rank, 0.0)
            if rank in self._parked:
                if seen > baseline.get(rank, 0.0):
                    self._rejoin(rank)
            elif now - max(seen, baseline.get(rank, 0.0)) > window:
                self._park(rank)

    def _owner(self, device_id: int) -> int:
        return int(device_id) % self.workers

    # ---------------------------------------------------------- round legs

    def broadcast_model(
        self,
        server: "FederatedServer",
        receivers: "list[Device]",
        weights: np.ndarray,
        extra_units: float = 0.0,
        ensure_one: bool = True,
    ) -> "tuple[list[Device], np.ndarray]":
        """The sim's downlink leg, plus real MODEL transfers.

        Metering/clock/drop calls are copied verbatim from the server's
        own ``broadcast``/``broadcast_model`` so a clean identity-codec
        run charges bit-identically; the encoded payload additionally
        ships to every non-parked worker as one chunked UDP transfer.
        """
        if not receivers:
            return [], weights
        self.start()
        codec = server.codec
        round_idx = int(getattr(server, "current_round", 0))
        if codec.is_identity:
            blob = np.ascontiguousarray(weights, dtype=np.float64).tobytes()
            kind_code, param = PAYLOAD_KIND_CODES["raw"], 0
            units = 1.0 + extra_units
            server.meter.record_download(len(receivers), units)
            server._charge_transfer(receivers, units)
            delivered = server._apply_drops(receivers, ensure_one)
            view = weights
        else:
            enc = codec.encode(
                weights, key="server-down", reference=server._codec_down_ref
            )
            blob = enc.to_bytes()
            kind_code, param = PAYLOAD_KIND_CODES[enc.kind], enc.param
            units = enc.model_units + extra_units
            server.meter.record_download(
                len(receivers), units, raw_units=1.0 + extra_units
            )
            server._charge_transfer(receivers, units)
            delivered = server._apply_drops(receivers, ensure_one)
            view = codec.decode(enc)
            server._codec_down_ref = view
        self._last_view = view
        assert self.ep is not None
        for rank, addr in self._addrs.items():
            if rank in self._parked:
                continue
            self.ep.send_blob(
                MSG_MODEL,
                addr,
                blob,
                kind=kind_code,
                param=param,
                round_idx=round_idx,
                device_id=NO_DEVICE,
                dim=weights.size,
            )
        return delivered, view

    def train_round(
        self,
        server: "FederatedServer",
        receivers: "list[Device]",
        stack: np.ndarray,
        epochs: np.ndarray,
        round_idx: int,
        global_weights: np.ndarray,
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
    ) -> None:
        """Dispatch ROUND control to the owning workers, reassemble their
        UPDATE transfers into ``stack``, decode in place.

        Lossy-proximal anchors other than the broadcast view would need
        their own transfer leg; the live-capable methods never produce
        one (fedprox anchors on the view).
        """
        self.start()
        assert self.ep is not None
        if anchor is not None and anchor is not self._last_view:
            raise RuntimeError(
                "live transport only supports anchoring on the broadcast "
                "view (fedprox); got a foreign anchor vector"
            )
        ids = server.ids_of(receivers).tolist()
        index_of = {int(dev_id): i for i, dev_id in enumerate(ids)}

        by_rank: dict[int, list[list[int]]] = {}
        for i, dev_id in enumerate(ids):
            by_rank.setdefault(self._owner(dev_id), []).append(
                [int(dev_id), int(epochs[i])]
            )
        expected: set[int] = set()
        for rank, devices in by_rank.items():
            if rank in self._parked or rank not in self._addrs:
                continue
            control = json.dumps(
                {"devices": devices, "mu": float(mu), "anchor": anchor is not None}
            ).encode("utf-8")
            self.ep.send_blob(
                MSG_ROUND,
                self._addrs[rank],
                control,
                round_idx=round_idx,
                device_id=NO_DEVICE,
            )
            expected.update(dev_id for dev_id, _ in devices)
        self.live_stats.rounds_dispatched += 1

        if (
            self.kill_rank is not None
            and round_idx == self.kill_round
            and 0 <= self.kill_rank < len(self._procs)
            and self._procs[self.kill_rank].is_alive()
        ):
            self._procs[self.kill_rank].kill()

        # Liveness baseline: a coordinator-side stall (eval between
        # rounds) must not read as worker silence, so the park window
        # starts at loop entry, not at the last pre-stall datagram.
        now = time.monotonic()
        baseline = {rank: now for rank in range(self.workers)}
        deadline = now + self.round_timeout
        arrived: dict[int, float] = {}  # device_id -> wire model_units
        codec = server.codec
        while True:
            self.ep.pump(timeout=0.02)
            for dev_id in list(expected):
                entry = self._updates.pop((round_idx, dev_id), None)
                if entry is None:
                    continue
                kind_code, param, blob = entry
                i = index_of[dev_id]
                if codec.is_identity:
                    stack[i] = np.frombuffer(blob, dtype=np.float64)
                    arrived[dev_id] = 1.0
                else:
                    enc = Encoded.from_bytes(
                        blob,
                        PAYLOAD_KINDS[kind_code],
                        global_weights.size,
                        reference=self._last_view,
                        param=param,
                    )
                    stack[i] = codec.decode(enc)
                    arrived[dev_id] = enc.model_units
                expected.discard(dev_id)
            if not expected:
                break
            self._check_liveness(baseline)
            still_live = {
                dev_id
                for dev_id in expected
                if self._owner(dev_id) not in self._parked
            }
            if not still_live:
                break  # every missing update belongs to a dead worker
            if time.monotonic() > deadline:
                self.server.resilience.deadline_hits += 1
                break
        self._pending_collect = (round_idx, arrived)

    def collect_models(
        self,
        server: "FederatedServer",
        senders: "list[Device]",
        stack: np.ndarray,
        reference: np.ndarray | dict[int, np.ndarray] | None = None,
        extra_units: float = 0.0,
        ensure_one: bool = True,
    ) -> "tuple[list[int], np.ndarray]":
        """The sim's uplink leg over the updates that really arrived.

        ``train_round`` already decoded each arriving update into its
        ``stack`` row; this leg reproduces the simulator's metering and
        clock charges over exactly those senders and returns their
        ascending indices — a killed worker's devices simply never make
        the list (the PR 7 deadline-fallback shape).
        """
        if not senders:
            return [], stack
        pending = getattr(self, "_pending_collect", None)
        if pending is None:
            raise RuntimeError("collect_models before train_round on live")
        self._pending_collect = None
        _round_idx, arrived_units = pending
        codec = server.codec
        arrived = [
            i
            for i, dev in enumerate(senders)
            if int(dev.device_id) in arrived_units
        ]
        if not arrived:
            raise RuntimeError(
                "live round produced no updates (all workers dead?)"
            )
        arrived_devs = [senders[i] for i in arrived]
        if codec.is_identity:
            units = 1.0 + extra_units
            server.meter.record_upload(len(arrived_devs), units)
            server._charge_transfer(arrived_devs, units)
        else:
            unit_vec = np.array(
                [
                    arrived_units[int(dev.device_id)] + extra_units
                    for dev in arrived_devs
                ]
            )
            server.meter.record_upload(
                1,
                float(unit_vec.sum()),
                raw_units=len(arrived_devs) * (1.0 + extra_units),
            )
            server._charge_transfer(arrived_devs, unit_vec)
        return arrived, stack

    # ---------------------------------------------------------------- stats

    def stats(self) -> dict[str, float]:
        return self.live_stats.snapshot()
