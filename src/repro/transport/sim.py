"""The default transport: in-process training, simulated channels.

``SimTransport`` is the bit-identical no-op backend: the server's own
channel methods keep doing all the work (metering, clock charges, codec
transforms, simulated drops) and only the round's training loop is
delegated here — the exact loop the server ran before the transport
layer existed, moved verbatim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.transport.base import Transport
from repro.transport.registry import register_transport

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.server import FederatedServer
    from repro.device.device import Device

__all__ = ["SimTransport"]


@register_transport(
    "sim", "discrete-event simulator (default): in-process, bit-identical"
)
class SimTransport(Transport):
    """Everything stays inside the coordinator process."""

    name = "sim"
    is_sim = True
    description = (
        "in-process discrete-event execution; the no-op default, "
        "bit-identical to pre-transport runs"
    )

    def train_round(
        self,
        server: "FederatedServer",
        receivers: "list[Device]",
        stack: np.ndarray,
        epochs: np.ndarray,
        round_idx: int,
        global_weights: np.ndarray,
        anchor: np.ndarray | None = None,
        mu: float = 0.0,
    ) -> None:
        """One training unit per receiver, results into ``stack`` rows.

        The FedAvg-family inner loop.  With live fleet rows the loop runs
        straight against the trainer — shard slices and stream keys come
        from fleet arrays, no facade attribute chasing, and the trained
        vector lands in the device's registered row — which is where the
        per-object path spent its per-device time.  Otherwise the
        classic ``run_unit`` choreography keeps every Device contract
        intact (including the ``weights`` snapshot for drop-fallback).

        When the server carries a :class:`~repro.device.batched.BatchedTrainer`
        (``device_batching="auto"`` on a batchable model), the whole round
        trains as stacked GEMMs in one call; under retained fleet storage the
        per-device ``weights`` snapshots are synced afterwards, exactly as
        ``run_unit`` would have.
        """
        bt = server.batched_trainer
        if bt is not None:
            bt.train_round(
                server.ids_of(receivers),
                epochs,
                round_idx,
                global_weights,
                out=stack,
                anchor=anchor,
                mu=mu,
            )
            if not server.rows_live:
                for i, dev in enumerate(receivers):
                    dev.weights = stack[i]
            return
        if server.rows_live:
            train = server.trainer.train
            shard = server.fleet.shard
            for i, dev_id in enumerate(server.ids_of(receivers).tolist()):
                train(
                    global_weights,
                    shard(dev_id),
                    int(epochs[i]),
                    stream_key=(dev_id, round_idx, 0),
                    anchor=anchor,
                    mu=mu,
                    out=stack[i],
                )
            return
        for i, dev in enumerate(receivers):
            dev.run_unit(
                global_weights,
                int(epochs[i]),
                round_idx,
                0,
                anchor=anchor,
                mu=mu,
                out=stack[i],
            )
