"""The live transport's framed datagram protocol.

Every UDP datagram is one fixed 28-byte header plus a chunk payload::

    !4s B  B    B     B    I         I          I    I          H          H
    magic typ  kind  param rank round_idx device_id  dim  total_len  chunk_idx chunk_count

* ``magic`` pins protocol + version (``b"RFT1"``) so stray datagrams are
  dropped, never mis-parsed.
* ``typ`` is the message type (:data:`MSG_NAMES`).
* ``kind``/``param``/``dim`` carry the codec payload's out-of-band
  metadata (:data:`repro.compression.base.PAYLOAD_KIND_CODES`, qsgd's bit
  width, the flat model dimension) for MODEL/UPDATE transfers; for an
  ACK, ``kind`` holds the *acked* message type instead.
* ``rank`` identifies the sender (worker rank; 255 = coordinator).
* ``round_idx``/``device_id`` scope the transfer: a transfer is keyed by
  ``(typ, sender rank, round_idx, device_id)``, so a late retransmit from
  a previous round can never corrupt the current one.
* ``total_len``/``chunk_idx``/``chunk_count`` drive chunked reassembly:
  payloads larger than one datagram are split into ``chunk_count``
  pieces of at most ``chunk_bytes``; every chunk is individually acked
  and retransmitted until acked (see :mod:`repro.transport.endpoint`).

:class:`Reassembler` rebuilds inbound transfers chunk by chunk and
guards against mixed-metadata corruption; the sender-side ack/retransmit
state lives with the :class:`~repro.transport.endpoint.Endpoint`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

__all__ = [
    "MAGIC",
    "HEADER_FMT",
    "HEADER_SIZE",
    "COORDINATOR_RANK",
    "NO_DEVICE",
    "MSG_JOIN",
    "MSG_JOIN_ACK",
    "MSG_ROUND",
    "MSG_MODEL",
    "MSG_UPDATE",
    "MSG_ACK",
    "MSG_HEARTBEAT",
    "MSG_SHUTDOWN",
    "MSG_BYE",
    "MSG_NAMES",
    "Frame",
    "pack_frame",
    "unpack_frame",
    "chunk_payload",
    "Reassembler",
]

MAGIC = b"RFT1"
HEADER_FMT = "!4sBBBBIIIIHH"
HEADER_SIZE = struct.calcsize(HEADER_FMT)  # 28 bytes

#: Sender ranks are worker indices; the coordinator claims the top value.
COORDINATOR_RANK = 255
#: ``device_id`` sentinel for transfers not scoped to one device.
NO_DEVICE = 0xFFFFFFFF

MSG_JOIN = 1  # worker -> coordinator: here I am (retried until acked)
MSG_JOIN_ACK = 2  # coordinator -> worker: registered
MSG_ROUND = 3  # coordinator -> worker: round control JSON (chunked)
MSG_MODEL = 4  # coordinator -> worker: encoded global model (chunked)
MSG_UPDATE = 5  # worker -> coordinator: one device's encoded update (chunked)
MSG_ACK = 6  # either way: ack of one chunk of a reliable transfer
MSG_HEARTBEAT = 7  # worker -> coordinator liveness beat (and back)
MSG_SHUTDOWN = 8  # coordinator -> worker: drain and exit
MSG_BYE = 9  # worker -> coordinator: exiting

MSG_NAMES = {
    MSG_JOIN: "join",
    MSG_JOIN_ACK: "join_ack",
    MSG_ROUND: "round",
    MSG_MODEL: "model",
    MSG_UPDATE: "update",
    MSG_ACK: "ack",
    MSG_HEARTBEAT: "heartbeat",
    MSG_SHUTDOWN: "shutdown",
    MSG_BYE: "bye",
}

#: Reliable (chunked + acked + retransmitted) message types; everything
#: else is fire-and-forget control traffic with app-level retry where it
#: matters (JOIN) or none where it does not (heartbeats).
RELIABLE_TYPES = frozenset({MSG_ROUND, MSG_MODEL, MSG_UPDATE})


@dataclass(frozen=True)
class Frame:
    """One parsed datagram: header fields plus the chunk payload."""

    msg_type: int
    kind: int
    param: int
    rank: int
    round_idx: int
    device_id: int
    dim: int
    total_len: int
    chunk_idx: int
    chunk_count: int
    payload: bytes

    @property
    def transfer_key(self) -> tuple[int, int, int, int]:
        """(msg_type, sender rank, round, device) — the reassembly key."""
        return (self.msg_type, self.rank, self.round_idx, self.device_id)


def pack_frame(
    msg_type: int,
    *,
    kind: int = 0,
    param: int = 0,
    rank: int = 0,
    round_idx: int = 0,
    device_id: int = NO_DEVICE,
    dim: int = 0,
    total_len: int = 0,
    chunk_idx: int = 0,
    chunk_count: int = 1,
    payload: bytes = b"",
) -> bytes:
    """Serialize one datagram."""
    return (
        struct.pack(
            HEADER_FMT,
            MAGIC,
            msg_type,
            kind,
            param,
            rank,
            round_idx,
            device_id,
            dim,
            total_len,
            chunk_idx,
            chunk_count,
        )
        + payload
    )


def unpack_frame(data: bytes) -> Frame | None:
    """Parse one datagram; None for anything that is not ours."""
    if len(data) < HEADER_SIZE:
        return None
    (magic, msg_type, kind, param, rank, round_idx, device_id, dim,
     total_len, chunk_idx, chunk_count) = struct.unpack_from(HEADER_FMT, data)
    if magic != MAGIC or msg_type not in MSG_NAMES:
        return None
    return Frame(
        msg_type=msg_type,
        kind=kind,
        param=param,
        rank=rank,
        round_idx=round_idx,
        device_id=device_id,
        dim=dim,
        total_len=total_len,
        chunk_idx=chunk_idx,
        chunk_count=chunk_count,
        payload=data[HEADER_SIZE:],
    )


def chunk_payload(data: bytes, chunk_bytes: int) -> list[bytes]:
    """Split ``data`` into at-most-``chunk_bytes`` pieces (>= 1 piece —
    an empty payload still travels as one empty chunk)."""
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    if not data:
        return [b""]
    return [data[i:i + chunk_bytes] for i in range(0, len(data), chunk_bytes)]


@dataclass
class _Partial:
    """One in-flight inbound transfer."""

    kind: int
    param: int
    dim: int
    total_len: int
    chunk_count: int
    parts: dict[int, bytes] = field(default_factory=dict)

    def matches(self, frame: Frame) -> bool:
        return (
            self.kind == frame.kind
            and self.param == frame.param
            and self.dim == frame.dim
            and self.total_len == frame.total_len
            and self.chunk_count == frame.chunk_count
        )


class Reassembler:
    """Rebuilds chunked transfers; duplicate chunks are idempotent.

    ``add(frame)`` returns the completed payload bytes when ``frame``
    finishes its transfer, else None.  A frame whose metadata disagrees
    with the partial transfer it claims to extend (a corrupted or
    protocol-confused sender) drops the partial and counts a failure —
    the transfer restarts cleanly from the conflicting frame.
    """

    def __init__(self) -> None:
        self._partials: dict[tuple[int, int, int, int], _Partial] = {}
        self.failures = 0

    def __len__(self) -> int:
        return len(self._partials)

    def add(self, frame: Frame) -> bytes | None:
        key = frame.transfer_key
        partial = self._partials.get(key)
        if partial is not None and not partial.matches(frame):
            self.failures += 1
            del self._partials[key]
            partial = None
        if partial is None:
            partial = _Partial(
                kind=frame.kind,
                param=frame.param,
                dim=frame.dim,
                total_len=frame.total_len,
                chunk_count=frame.chunk_count,
            )
            self._partials[key] = partial
        if frame.chunk_idx >= frame.chunk_count:
            self.failures += 1
            del self._partials[key]
            return None
        partial.parts[frame.chunk_idx] = frame.payload
        if len(partial.parts) < partial.chunk_count:
            return None
        del self._partials[key]
        blob = b"".join(partial.parts[i] for i in range(partial.chunk_count))
        if len(blob) != partial.total_len:
            self.failures += 1
            return None
        return blob

    def discard(self, key: tuple[int, int, int, int]) -> None:
        """Drop a partial transfer (its sender was declared dead)."""
        if key in self._partials:
            self._partials.pop(key)
            self.failures += 1

    def discard_rank(self, rank: int) -> None:
        """Drop every partial transfer from ``rank``."""
        for key in [k for k in self._partials if k[1] == rank]:
            self.discard(key)
