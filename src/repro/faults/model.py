"""Pluggable fault models: what goes wrong, injected reproducibly.

A :class:`FaultModel` is the single authority on *what* failures occur —
device crashes with mid-unit work loss, heavy-tail straggler slowdowns,
byzantine update corruption — while the servers own *how the system
reacts* (round deadlines, upload retries, the heartbeat failure
detector).  Models are pure functions of the rng streams the server hands
them, so a faulty run is exactly as reproducible and campaign-cacheable
as a clean one.

Two injection surfaces, matching the two runtimes:

* **Barrier rounds** (synchronous methods): :meth:`FaultModel.round_effects`
  returns per-participant completion-delay factors and additive delays in
  one vectorized draw; the server turns them into completion times,
  applies the round deadline, and charges the clock.
* **Event loop** (async methods): :meth:`FaultModel.unit_slowdown` and
  :meth:`FaultModel.unit_crash` are drawn per training unit from a
  persistent stream, so crashes land as real ``device_crash`` /
  ``device_restart`` scheduler events.

Byzantine corruption (:meth:`FaultModel.is_byzantine` /
:meth:`FaultModel.corrupt`) applies at upload time on both runtimes: a
malicious device trains honestly but lies on the wire, so its *local*
state stays consistent while the server receives garbage.

``is_null`` is the bit-identity fast path: the servers skip every fault
draw, copy and event when it is True, so ``faults="none"`` runs are
byte-for-byte the pre-fault runs.  All fault draws come from dedicated
rng streams (see ``repro.core.server``), so an *armed* model that happens
to inject nothing still perturbs no training/selection/codec randomness.

Fault-aware surfaces: the FedAvg family (fedavg, fedprox) on the barrier
runtime and the async family (fedasync, fedbuff) on the event loop.  The
remaining methods (scaffold, fedat, fedhisyn, ...) ignore an injected
model — their round engines predate the fault layer — which
``build_experiment`` surfaces rather than letting a sweep silently run
clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.config import validate_fraction, validate_positive

__all__ = [
    "ATTACKS",
    "RoundEffects",
    "FaultModel",
    "NoFaults",
    "CrashFaults",
    "StragglerFaults",
    "ByzantineFaults",
    "CompoundFaults",
]

#: Byzantine corruption modes: ``sign_flip`` uploads ``-scale * w`` (the
#: classic model-poisoning attack), ``gaussian`` adds ``sigma * N(0, I)``
#: noise, ``scaled`` uploads ``scale * w`` (magnitude inflation).
ATTACKS = ("sign_flip", "gaussian", "scaled")


@dataclass
class RoundEffects:
    """One barrier round's injected delays over the participant vector.

    ``completion_i = duration * factors_i + extra_i`` — multiplicative
    slowdowns (stragglers, crash-and-redo) compose by product across
    compound models, absolute delays (restart downtime) by sum.
    ``lost_time`` is device-time burned on work that never produced an
    update (the partial unit a crash destroyed).
    """

    factors: np.ndarray
    extra: np.ndarray
    crashes: int = 0
    slowdowns: int = 0
    lost_time: float = 0.0

    @classmethod
    def neutral(cls, n: int) -> "RoundEffects":
        return cls(factors=np.ones(n), extra=np.zeros(n))

    def merge(self, other: "RoundEffects") -> "RoundEffects":
        return RoundEffects(
            factors=self.factors * other.factors,
            extra=self.extra + other.extra,
            crashes=self.crashes + other.crashes,
            slowdowns=self.slowdowns + other.slowdowns,
            lost_time=self.lost_time + other.lost_time,
        )


class FaultModel:
    """Interface: every hook is a no-op, so subclasses override only the
    failure modes they model and compose cleanly under
    :class:`CompoundFaults`."""

    name = "base"

    #: True only for :class:`NoFaults` — the servers' fast-path flag: no
    #: fault rng streams are opened, no events armed, no stacks copied.
    is_null = False

    def attach(self, num_devices: int, rng: np.random.Generator) -> None:
        """One-time population-level draws (byzantine membership).  Called
        by the server with the dedicated membership stream before any
        round or event runs."""

    # ------------------------------------------------ barrier-round surface

    def round_effects(
        self, device_ids: np.ndarray, duration: float, rng: np.random.Generator
    ) -> RoundEffects:
        """Per-participant delay draws for one synchronous round."""
        return RoundEffects.neutral(len(device_ids))

    # -------------------------------------------------- event-loop surface

    def unit_slowdown(self, dev_id: int, rng: np.random.Generator) -> float:
        """Multiplier (>= 1) on one training unit's duration."""
        return 1.0

    def unit_crash(
        self, dev_id: int, rng: np.random.Generator
    ) -> tuple[float, float] | None:
        """Crash draw for one training unit: ``(fraction, downtime)`` —
        the device dies ``fraction`` of the way through the unit (losing
        that partial work) and restarts after ``downtime`` — or None."""
        return None

    # --------------------------------------------------- byzantine surface

    def is_byzantine(self, dev_id: int) -> bool:
        return False

    def corrupt(
        self, update: np.ndarray, dev_id: int, rng: np.random.Generator
    ) -> np.ndarray:
        """The update a byzantine device actually uploads (a new array —
        the device's honest local state is never mutated)."""
        return update


class NoFaults(FaultModel):
    """The fault-free world — and the only model with ``is_null=True``."""

    name = "none"
    is_null = True


class CrashFaults(FaultModel):
    """Fail-stop crashes with mid-unit work loss and restart.

    Each participant crashes with ``crash_prob`` per round (per unit on
    the event loop), at a uniform point through its work — the partial
    unit is lost — then restarts after ``downtime`` (jittered ±50%) and
    redoes the work.  A synchronous participant's completion becomes
    ``duration * (1 + frac) + downtime``.
    """

    name = "crash"

    def __init__(self, crash_prob: float = 0.05, downtime: float = 1.0) -> None:
        validate_fraction(crash_prob, "crash_prob", inclusive_low=True)
        validate_positive(downtime, "downtime")
        self.crash_prob = float(crash_prob)
        self.downtime = float(downtime)

    def round_effects(self, device_ids, duration, rng):
        n = len(device_ids)
        mask = rng.random(n) < self.crash_prob
        frac = rng.random(n)
        down = self.downtime * (0.5 + rng.random(n))
        return RoundEffects(
            factors=np.where(mask, 1.0 + frac, 1.0),
            extra=np.where(mask, down, 0.0),
            crashes=int(mask.sum()),
            lost_time=float(duration * frac[mask].sum()),
        )

    def unit_crash(self, dev_id, rng):
        if rng.random() >= self.crash_prob:
            return None
        # Crash strictly inside the unit so the pending unit_complete is
        # always still cancellable — the timer-revocation path under test.
        frac = 0.05 + 0.9 * rng.random()
        down = self.downtime * (0.5 + rng.random())
        return frac, down


class StragglerFaults(FaultModel):
    """Heavy-tail slowdowns: the straggler problem, not mere heterogeneity.

    Each participant straggles with ``straggle_prob``; a straggler's work
    takes ``1 + Pareto(tail_exponent)`` times as long, clipped at
    ``max_slowdown`` so one draw cannot stall a run unboundedly.  This is
    the preset the round-deadline + over-selection mechanism is built to
    beat: without a deadline the barrier waits for the slowest draw.
    """

    name = "straggler"

    def __init__(
        self,
        straggle_prob: float = 0.2,
        tail_exponent: float = 1.5,
        max_slowdown: float = 25.0,
    ) -> None:
        validate_fraction(straggle_prob, "straggle_prob", inclusive_low=True)
        validate_positive(tail_exponent, "tail_exponent")
        if max_slowdown <= 1.0:
            raise ValueError(f"max_slowdown must be > 1, got {max_slowdown}")
        self.straggle_prob = float(straggle_prob)
        self.tail_exponent = float(tail_exponent)
        self.max_slowdown = float(max_slowdown)

    def _slowdowns(self, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        mask = rng.random(n) < self.straggle_prob
        tail = rng.pareto(self.tail_exponent, n)
        slow = 1.0 + np.minimum(tail, self.max_slowdown - 1.0)
        return mask, slow

    def round_effects(self, device_ids, duration, rng):
        n = len(device_ids)
        mask, slow = self._slowdowns(n, rng)
        return RoundEffects(
            factors=np.where(mask, slow, 1.0),
            extra=np.zeros(n),
            slowdowns=int(mask.sum()),
        )

    def unit_slowdown(self, dev_id, rng):
        if rng.random() >= self.straggle_prob:
            return 1.0
        return 1.0 + float(min(rng.pareto(self.tail_exponent), self.max_slowdown - 1.0))


class ByzantineFaults(FaultModel):
    """A fixed malicious fraction of the population corrupts its uploads.

    Membership is drawn once in :meth:`attach` (a permutation of device
    ids on the dedicated membership stream), so the same devices lie
    every round — the standard byzantine threat model the robust
    aggregators (Krum, trimmed mean, median) are analyzed under.
    """

    name = "byzantine"

    def __init__(
        self,
        fraction: float = 0.2,
        attack: str = "sign_flip",
        scale: float = 10.0,
        sigma: float = 1.0,
    ) -> None:
        validate_fraction(fraction, "fraction", inclusive_low=True)
        if attack not in ATTACKS:
            raise ValueError(f"attack must be one of {ATTACKS}, got {attack!r}")
        validate_positive(scale, "scale")
        validate_positive(sigma, "sigma")
        self.fraction = float(fraction)
        self.attack = attack
        self.scale = float(scale)
        self.sigma = float(sigma)
        self._byzantine: frozenset[int] = frozenset()

    def attach(self, num_devices, rng):
        count = int(self.fraction * num_devices)
        if count <= 0:
            self._byzantine = frozenset()
            return
        perm = rng.permutation(num_devices)
        self._byzantine = frozenset(int(i) for i in perm[:count])

    def is_byzantine(self, dev_id):
        return dev_id in self._byzantine

    def corrupt(self, update, dev_id, rng):
        if self.attack == "sign_flip":
            return -self.scale * update
        if self.attack == "gaussian":
            return update + self.sigma * rng.standard_normal(update.shape)
        return self.scale * update


class CompoundFaults(FaultModel):
    """Several fault models active at once, drawn in fixed child order.

    Delay factors compose by product, absolute delays by sum; the first
    child to report a crash on a unit wins; corruption chains through
    every byzantine child claiming the device.
    """

    name = "compound"

    def __init__(self, models: Sequence[FaultModel]) -> None:
        if not models:
            raise ValueError("CompoundFaults needs at least one child model")
        self.models = list(models)

    def attach(self, num_devices, rng):
        for m in self.models:
            m.attach(num_devices, rng)

    def round_effects(self, device_ids, duration, rng):
        effects = RoundEffects.neutral(len(device_ids))
        for m in self.models:
            effects = effects.merge(m.round_effects(device_ids, duration, rng))
        return effects

    def unit_slowdown(self, dev_id, rng):
        slow = 1.0
        for m in self.models:
            slow *= m.unit_slowdown(dev_id, rng)
        return slow

    def unit_crash(self, dev_id, rng):
        crash = None
        for m in self.models:
            # Every child draws (fixed rng consumption); first crash wins.
            c = m.unit_crash(dev_id, rng)
            if crash is None:
                crash = c
        return crash

    def is_byzantine(self, dev_id):
        return any(m.is_byzantine(dev_id) for m in self.models)

    def corrupt(self, update, dev_id, rng):
        for m in self.models:
            if m.is_byzantine(dev_id):
                update = m.corrupt(update, dev_id, rng)
        return update
