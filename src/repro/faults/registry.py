"""Named fault-model presets: the sweepable robustness axis.

Mirrors :mod:`repro.env.registry`: every preset is a factory keyed by a
short name, accepts keyword overrides (the ``ExperimentSpec.fault_kwargs``
/ ``--byzantine-frac`` path), and fails early with ``ValueError`` for an
unknown name or override — so a bad campaign grid dies at sweep-expansion
time, not mid-run.

Override keys by preset:

``crash``
    ``crash_prob``, ``downtime``.
``straggler``
    ``straggle_prob``, ``tail_exponent``, ``max_slowdown``.
``byzantine``
    ``fraction``, ``attack`` (``sign_flip`` | ``gaussian`` | ``scaled``),
    ``scale``, ``sigma``.
``compound``
    All of the above (crash + straggler + byzantine active together,
    each dialed down from its solo-preset default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.faults.model import (
    ByzantineFaults,
    CompoundFaults,
    CrashFaults,
    FaultModel,
    NoFaults,
    StragglerFaults,
)

__all__ = [
    "FaultEntry",
    "register_fault_model",
    "make_fault_model",
    "available_fault_models",
    "fault_entries",
]


@dataclass(frozen=True)
class FaultEntry:
    """One registered preset: its factory plus the ``list faults`` blurb."""

    name: str
    factory: Callable[..., FaultModel]
    description: str = ""


_REGISTRY: dict[str, FaultEntry] = {}


def register_fault_model(
    name: str, description: str = ""
) -> Callable[[Callable[..., FaultModel]], Callable[..., FaultModel]]:
    """Decorator registering a fault-model factory under ``name``."""
    if not name or not name.replace("_", "").islower() or not name.isidentifier():
        raise ValueError(
            f"fault-model name must be a lowercase identifier, got {name!r}"
        )

    def decorate(factory: Callable[..., FaultModel]) -> Callable[..., FaultModel]:
        if name in _REGISTRY and _REGISTRY[name].factory is not factory:
            raise ValueError(f"fault model {name!r} is already registered")
        _REGISTRY[name] = FaultEntry(name, factory, description)
        return factory

    return decorate


def make_fault_model(name: str, **overrides: Any) -> FaultModel:
    """Instantiate a registered preset, applying keyword overrides."""
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r}; known: {available_fault_models()}"
        ) from None
    try:
        return entry.factory(**overrides)
    except TypeError as exc:
        raise ValueError(
            f"bad fault_kwargs for fault model {name!r}: {exc}"
        ) from None


def available_fault_models() -> list[str]:
    """Sorted names of every registered fault-model preset."""
    return sorted(_REGISTRY)


def fault_entries() -> list[FaultEntry]:
    """All registered entries, sorted by name — the ``list faults`` feed."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ----------------------------------------------------------------- presets


@register_fault_model("none", "fault-free world (the bit-identity fast path)")
def _none() -> FaultModel:
    return NoFaults()


@register_fault_model(
    "crash", "fail-stop crashes: mid-unit work loss, restart after downtime"
)
def _crash(**overrides: Any) -> FaultModel:
    return CrashFaults(**overrides)


@register_fault_model(
    "straggler", "heavy-tail (Pareto) slowdowns on a fraction of participants"
)
def _straggler(**overrides: Any) -> FaultModel:
    return StragglerFaults(**overrides)


@register_fault_model(
    "byzantine",
    "a fixed malicious fraction corrupts uploads (sign_flip/gaussian/scaled)",
)
def _byzantine(**overrides: Any) -> FaultModel:
    return ByzantineFaults(**overrides)


@register_fault_model(
    "compound", "crashes + stragglers + byzantine devices active together"
)
def _compound(
    crash_prob: float = 0.03,
    downtime: float = 1.0,
    straggle_prob: float = 0.1,
    tail_exponent: float = 1.5,
    max_slowdown: float = 25.0,
    fraction: float = 0.1,
    attack: str = "sign_flip",
    scale: float = 10.0,
    sigma: float = 1.0,
) -> FaultModel:
    return CompoundFaults(
        [
            CrashFaults(crash_prob=crash_prob, downtime=downtime),
            StragglerFaults(
                straggle_prob=straggle_prob,
                tail_exponent=tail_exponent,
                max_slowdown=max_slowdown,
            ),
            ByzantineFaults(
                fraction=fraction, attack=attack, scale=scale, sigma=sigma
            ),
        ]
    )
