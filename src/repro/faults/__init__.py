"""Fault injection and the robustness scenario axis.

See :mod:`repro.faults.model` for the failure modes and
:mod:`repro.faults.registry` for the named presets the
``ExperimentSpec.faults`` field sweeps over.
"""

from repro.faults.model import (
    ATTACKS,
    ByzantineFaults,
    CompoundFaults,
    CrashFaults,
    FaultModel,
    NoFaults,
    RoundEffects,
    StragglerFaults,
)
from repro.faults.registry import (
    FaultEntry,
    available_fault_models,
    fault_entries,
    make_fault_model,
    register_fault_model,
)

__all__ = [
    "ATTACKS",
    "FaultModel",
    "RoundEffects",
    "NoFaults",
    "CrashFaults",
    "StragglerFaults",
    "ByzantineFaults",
    "CompoundFaults",
    "FaultEntry",
    "register_fault_model",
    "make_fault_model",
    "available_fault_models",
    "fault_entries",
]
