"""Shared utilities: seeded RNG management, configuration, logging, tables."""

from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators
from repro.utils.config import freeze, validate_fraction, validate_positive

__all__ = [
    "SeedSequenceFactory",
    "as_generator",
    "spawn_generators",
    "freeze",
    "validate_fraction",
    "validate_positive",
]
