"""Lightweight structured logging for simulation runs.

A :class:`RunLogger` accumulates per-round records in memory (cheap append of
plain dicts) and can render them as text tables.  It deliberately does not
use :mod:`logging` handlers: benchmark loops call it millions of times and a
plain list append is an order of magnitude cheaper than a formatted emit.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

__all__ = ["RunLogger", "NullLogger"]


class RunLogger:
    """Accumulates structured per-round records for one simulation run."""

    def __init__(self, name: str = "run", stream: TextIO | None = None, verbose: bool = False):
        self.name = name
        self.records: list[dict[str, Any]] = []
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self._t0 = time.perf_counter()

    def log(self, **fields: Any) -> None:
        """Append one record; echo it when ``verbose``."""
        fields.setdefault("wall_s", round(time.perf_counter() - self._t0, 3))
        self.records.append(fields)
        if self.verbose:
            parts = " ".join(f"{k}={v}" for k, v in fields.items())
            print(f"[{self.name}] {parts}", file=self.stream)

    def column(self, key: str) -> list[Any]:
        """Extract one field across all records (missing entries skipped)."""
        return [r[key] for r in self.records if key in r]

    def last(self, key: str, default: Any = None) -> Any:
        """The most recent value logged under ``key``."""
        for record in reversed(self.records):
            if key in record:
                return record[key]
        return default

    def __len__(self) -> int:
        return len(self.records)


class NullLogger(RunLogger):
    """A logger that drops everything — for hot benchmark loops."""

    def __init__(self) -> None:
        super().__init__(name="null")

    def log(self, **fields: Any) -> None:  # noqa: D102 - intentionally empty
        pass
