"""Small validation and configuration helpers used across the library."""

from __future__ import annotations

import dataclasses
import numbers
from typing import Any

__all__ = ["validate_fraction", "validate_positive", "validate_non_negative", "freeze"]


def _require_number(value: Any, name: str) -> None:
    # numbers.Real admits numpy scalars; bool is technically an int but a
    # True that reaches a numeric knob is always a caller mistake.
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise ValueError(f"{name} must be a number, got {value!r}")


def validate_fraction(value: float, name: str, *, inclusive_low: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1]`` (or ``[0, 1]``)."""
    _require_number(value, name)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bracket = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValueError(f"{name} must be in {bracket}, got {value}")
    return float(value)


def validate_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    _require_number(value, name)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def validate_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0."""
    _require_number(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def freeze(obj: Any) -> Any:
    """Recursively convert dataclasses/dicts/lists into hashable tuples.

    Used to derive cache keys from experiment configurations.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return tuple(
            (f.name, freeze(getattr(obj, f.name))) for f in dataclasses.fields(obj)
        )
    if isinstance(obj, dict):
        return tuple(sorted((k, freeze(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(freeze(v) for v in obj)
    if isinstance(obj, set):
        return tuple(sorted(freeze(v) for v in obj))
    return obj
