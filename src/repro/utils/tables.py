"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows the paper's Table 1 and figures
report; this module renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_cell"]


def format_cell(value: Any, float_fmt: str = "{:.2f}") -> str:
    """Render a single table value (floats formatted, None blank)."""
    if value is None:
        return ""
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = "{:.2f}",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have the same arity as headers")
    cells = [[format_cell(v, float_fmt) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
