"""Terminal sparklines for accuracy/loss curves.

No plotting stack is available offline; a Unicode sparkline is enough to
eyeball convergence curves in CLI output and bench logs.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["sparkline", "labelled_curve"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """Render ``values`` as one character per point.

    ``lo``/``hi`` pin the scale (e.g. 0..1 for accuracies); by default the
    data's own range is used.  Constant data renders at mid height.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo = min(vals) if lo is None else float(lo)
    hi = max(vals) if hi is None else float(hi)
    if hi < lo:
        raise ValueError(f"hi ({hi}) must be >= lo ({lo})")
    span = hi - lo
    if span == 0:
        return _BARS[len(_BARS) // 2] * len(vals)
    out = []
    top = len(_BARS) - 1
    for v in vals:
        frac = (min(max(v, lo), hi) - lo) / span
        out.append(_BARS[round(frac * top)])
    return "".join(out)


def labelled_curve(label: str, values: Sequence[float],
                   lo: float | None = 0.0, hi: float | None = 1.0) -> str:
    """``label  ▁▂▄▆█  0.123 -> 0.789`` one-liner for logs."""
    vals = [float(v) for v in values]
    if not vals:
        return f"{label}: (no data)"
    return (f"{label:14s} {sparkline(vals, lo, hi)} "
            f"{vals[0]:.3f} -> {vals[-1]:.3f}")
