"""Deterministic random-number management.

Every stochastic component in this library accepts either an integer seed or
a :class:`numpy.random.Generator`.  Components that need several independent
streams (one per device, one per round, ...) derive them through
:class:`SeedSequenceFactory` so that

* results are bit-for-bit reproducible given a root seed, and
* adding a consumer never perturbs the streams of existing consumers
  (streams are keyed, not drawn in sequence).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "SeedSequenceFactory"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a nondeterministically seeded generator; an existing
    generator is returned unchanged (not copied).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, n: int
) -> list[np.random.Generator]:
    """Return ``n`` statistically independent generators derived from ``seed``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream.
        children = seed.spawn(n)
        return list(children)
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


class SeedSequenceFactory:
    """Keyed derivation of independent random streams from one root seed.

    Unlike sequential ``spawn`` calls, streams are derived from a *key* (any
    sequence of integers), so the stream observed by a consumer depends only
    on its key, never on how many other consumers exist or the order in which
    they were created.

    Example
    -------
    >>> factory = SeedSequenceFactory(42)
    >>> rng_device_3_round_7 = factory.generator(3, 7)
    >>> rng_device_3_round_7.integers(10)  # doctest: +SKIP
    """

    def __init__(self, root_seed: int | None = 0) -> None:
        if root_seed is not None and root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self.root_seed = root_seed

    def seed_sequence(self, *key: int) -> np.random.SeedSequence:
        """Return the :class:`~numpy.random.SeedSequence` for ``key``."""
        base = self.root_seed if self.root_seed is not None else 0
        return np.random.SeedSequence(entropy=base, spawn_key=tuple(key))

    def generator(self, *key: int) -> np.random.Generator:
        """Return an independent generator keyed by ``key``."""
        return np.random.default_rng(self.seed_sequence(*key))

    def generators(self, keys: Iterable[Sequence[int]]) -> list[np.random.Generator]:
        """Return one generator per key in ``keys``."""
        return [self.generator(*k) for k in keys]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self.root_seed!r})"
