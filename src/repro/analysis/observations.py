"""The motivating experiments of Section 3.2 (Figures 2, 3 and 4).

These are *decentralized* experiments — no server aggregation — measuring
the mean overall-test accuracy of the per-device models, the paper's proxy
for the divergence D of Eq. (4):

* **Figure 2** — five device-communication modes on homogeneous devices:
  ``none``, ``random``, ``random_avg``, ``ring``, ``ring_avg``
  (``_avg`` = average the received model with the own model before
  training; otherwise train the received model directly).
* **Figure 3** — ring orderings under heterogeneous resources:
  ``random``, ``small_to_large``, ``large_to_small``.
* **Figure 4** — number of capacity clusters under heterogeneous
  resources; reports the mean accuracy of the *fastest* class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import cluster_by_capacity
from repro.core.ring import build_ring
from repro.datasets.core import ClassificationDataset
from repro.device.device import Device
from repro.nn.serialization import set_flat_params
from repro.simulation.engine import RingRoundEngine
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "COMMUNICATION_MODES",
    "ObservationResult",
    "communication_mode_experiment",
    "ring_order_experiment",
    "cluster_count_experiment",
]

COMMUNICATION_MODES = ("none", "random", "random_avg", "ring", "ring_avg")


@dataclass
class ObservationResult:
    """Mean device-model accuracy per round, plus the setting label."""

    label: str
    round_accuracies: list[float] = field(default_factory=list)

    @property
    def final(self) -> float:
        if not self.round_accuracies:
            raise ValueError("empty result")
        return self.round_accuracies[-1]


def _mean_device_accuracy(
    devices: list[Device], test_set: ClassificationDataset
) -> float:
    model = devices[0].trainer.model
    accs = []
    for d in devices:
        set_flat_params(model, d.weights)
        accs.append(model.accuracy(test_set.x, test_set.y))
    return float(np.mean(accs))


def communication_mode_experiment(
    mode: str,
    devices: list[Device],
    test_set: ClassificationDataset,
    initial_weights: np.ndarray,
    rounds: int = 10,
    epochs_per_round: int = 1,
    seed: int = 0,
    eval_every: int = 1,
) -> ObservationResult:
    """Figure 2: one decentralized run under the given communication mode.

    Devices are assumed homogeneous (the paper's setting).  Each round every
    device trains once; then, depending on the mode, models move between
    devices (ring neighbour or a random permutation partner) and are either
    used directly or averaged with the recipient's own model.
    """
    if mode not in COMMUNICATION_MODES:
        raise ValueError(f"mode must be one of {COMMUNICATION_MODES}, got {mode!r}")
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    seeds = SeedSequenceFactory(seed)
    n = len(devices)
    weights = [initial_weights.copy() for _ in devices]
    result = ObservationResult(label=mode)

    for r in range(rounds):
        # Local training step for every device on its current model.
        for i, dev in enumerate(devices):
            weights[i] = dev.run_unit(weights[i], epochs_per_round, r, 0)
        # Communication step.
        if mode != "none":
            if mode.startswith("ring"):
                # neighbour i -> i+1 (fixed ring; homogeneous order = id).
                incoming = [weights[(i - 1) % n] for i in range(n)]
            else:
                # fresh random permutation partner each round
                perm = seeds.generator(r).permutation(n)
                incoming = [weights[perm[i]] for i in range(n)]
            if mode.endswith("_avg"):
                weights = [
                    0.5 * (weights[i] + incoming[i]) for i in range(n)
                ]
            else:
                weights = [incoming[i].copy() for i in range(n)]
        if (r + 1) % eval_every == 0 or r == rounds - 1:
            for i, dev in enumerate(devices):
                dev.weights = weights[i]
            result.round_accuracies.append(_mean_device_accuracy(devices, test_set))
    return result


def ring_order_experiment(
    order: str,
    devices: list[Device],
    test_set: ClassificationDataset,
    initial_weights: np.ndarray,
    rounds: int = 10,
    epochs_per_unit: int = 1,
    seed: int = 0,
) -> ObservationResult:
    """Figure 3: decentralized single-ring training under an ordering.

    All devices form ONE ring (no clustering, no server); each round lasts
    the slowest device's unit time, so fast devices complete several hops.
    Devices carry their own models across rounds (decentralized — no
    periodic re-broadcast).
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    engine = RingRoundEngine(devices, epochs_per_unit=epochs_per_unit)
    ids = [d.device_id for d in devices]
    times = [d.unit_time for d in devices]
    ring = build_ring(ids, times, order=order, seed=seed)
    duration = max(times)
    result = ObservationResult(label=order)

    current: dict[int, np.ndarray] = {
        d.device_id: initial_weights.copy() for d in devices
    }
    for r in range(rounds):
        engine.run_round([ring], current, duration, r)
        current = {d.device_id: d.weights for d in devices}
        result.round_accuracies.append(_mean_device_accuracy(devices, test_set))
    return result


def cluster_count_experiment(
    num_clusters: int,
    devices: list[Device],
    test_set: ClassificationDataset,
    initial_weights: np.ndarray,
    rounds: int = 10,
    epochs_per_unit: int = 1,
    seed: int = 0,
) -> ObservationResult:
    """Figure 4: cluster into ``num_clusters`` capacity classes, ring per
    class, decentralized training; report the fastest class's mean accuracy
    per round.  Devices carry their models across rounds."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    times = np.array([d.unit_time for d in devices])
    ids = [d.device_id for d in devices]
    classes = cluster_by_capacity(times, num_clusters)
    rings = [
        build_ring([ids[i] for i in cls], times[cls], order="small_to_large")
        for cls in classes
    ]
    by_id = {d.device_id: d for d in devices}
    fastest = [by_id[ids[i]] for i in classes[0]]
    engine = RingRoundEngine(devices, epochs_per_unit=epochs_per_unit)
    duration = float(times.max())
    result = ObservationResult(label=f"K={num_clusters}")
    current: dict[int, np.ndarray] = {
        d.device_id: initial_weights.copy() for d in devices
    }
    for r in range(rounds):
        engine.run_round(rings, current, duration, r)
        current = {d.device_id: d.weights for d in devices}
        result.round_accuracies.append(_mean_device_accuracy(fastest, test_set))
    return result
