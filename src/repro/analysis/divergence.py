"""The paper's Non-IID divergence metric (Section 3.2, Eq. 4).

``D = sum_i sum_j | p_i(y=j) - p(y=j) |`` measures how far each device's
label distribution sits from the global one; the paper argues final-model
accuracy falls as D grows, and — because D is uncomputable on private data
— proposes the *empirical proxy*: the overall-test-set accuracy of a model
trained only on one device ("the higher the accuracy ... the closer the
data label distribution of the device is to the overall distribution").
Both forms are implemented.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.core import ClassificationDataset
from repro.device.device import Device
from repro.nn.serialization import set_flat_params

__all__ = ["per_device_divergence", "label_divergence", "empirical_divergence_proxy"]


def _distributions(label_hist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    label_hist = np.asarray(label_hist, dtype=np.float64)
    if label_hist.ndim != 2:
        raise ValueError(f"expected (devices, classes) histogram, got {label_hist.shape}")
    totals = label_hist.sum(axis=1, keepdims=True)
    if np.any(totals == 0):
        raise ValueError("every device needs at least one sample")
    p_i = label_hist / totals
    p_global = label_hist.sum(axis=0) / label_hist.sum()
    return p_i, p_global


def per_device_divergence(label_hist: np.ndarray) -> np.ndarray:
    """L1 distance of each device's label distribution from the global."""
    p_i, p_global = _distributions(label_hist)
    return np.abs(p_i - p_global).sum(axis=1)


def label_divergence(label_hist: np.ndarray) -> float:
    """Eq. (4): total divergence across devices."""
    return float(per_device_divergence(label_hist).sum())


def empirical_divergence_proxy(
    devices: list[Device],
    test_set: ClassificationDataset,
    weight_stacks: np.ndarray,
) -> float:
    """Mean overall-test accuracy of per-device models (higher = closer to
    the global distribution = smaller effective D).

    ``weight_stacks`` is (num_devices, dim): each device's fully trained
    flat model.  All devices share one trainer/model template.
    """
    if weight_stacks.shape[0] != len(devices):
        raise ValueError("one weight vector per device required")
    model = devices[0].trainer.model
    accs = np.empty(len(devices))
    for i, w in enumerate(weight_stacks):
        set_flat_params(model, w)
        accs[i] = model.accuracy(test_set.x, test_set.y)
    return float(accs.mean())
