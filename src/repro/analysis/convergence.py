"""Theorem 5.1: FedHiSyn's convergence machinery for strongly convex
objectives.

The theorem transplants the FedAvg-on-Non-IID bound of Li et al. (2020):
with L-smooth, mu-strongly-convex device objectives, learning rate
``eta_t = 2 / (mu (gamma + t))`` and ``gamma = max(8 L / mu, E)``,

    E[F(w_R)] - F* <= 2 kappa / (gamma + R - 1)
                      * (12 L Gamma / mu + mu gamma / 2 * ||w_0 - w*||^2 / 2)

FedHiSyn's claim is not a new bound shape but a smaller ``Gamma``: a model
reaching the server has traversed several devices, so its effective risk
``F~_i`` (Eq. 8) is closer to the global ``F`` than any single ``F_i``,
shrinking ``Gamma = F* - sum_i p_i F_i*``.  Lemma 5.1 is the companion
gradient-norm inflation: ``||grad F~_i||^2 <= (|Omega_i| - 1) G^2``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.optim import InverseTimeLR

__all__ = [
    "gamma_heterogeneity",
    "theorem51_bound",
    "ring_gradient_norm_bound",
    "fedavg_theory_lr",
]


def gamma_heterogeneity(
    f_star: float, device_f_stars: np.ndarray, device_weights: np.ndarray | None = None
) -> float:
    """``Gamma = F* - sum_i p_i F_i*`` — the paper's Non-IID degree.

    Zero for IID data (in the large-sample limit); grows with label skew.
    Weights default to uniform.
    """
    device_f_stars = np.asarray(device_f_stars, dtype=np.float64)
    if device_f_stars.ndim != 1 or device_f_stars.size == 0:
        raise ValueError("device_f_stars must be a non-empty vector")
    if device_weights is None:
        device_weights = np.full(device_f_stars.size, 1.0 / device_f_stars.size)
    else:
        device_weights = np.asarray(device_weights, dtype=np.float64)
        if device_weights.shape != device_f_stars.shape:
            raise ValueError("weights and f_stars disagree in shape")
        if np.any(device_weights < 0) or not np.isclose(device_weights.sum(), 1.0):
            raise ValueError("weights must be a probability vector")
    gamma = f_star - float(device_weights @ device_f_stars)
    # F* >= sum p_i F_i* always (Jensen on min); numerical noise can dip
    # slightly below zero, clamp.
    return max(gamma, 0.0)


def theorem51_bound(
    smoothness: float,
    strong_convexity: float,
    gamma_noniid: float,
    init_distance_sq: float,
    rounds: int,
    local_epochs: int = 1,
) -> float:
    """Right-hand side of Eq. (12) after ``rounds`` rounds."""
    if smoothness <= 0 or strong_convexity <= 0:
        raise ValueError("smoothness and strong_convexity must be positive")
    if smoothness < strong_convexity:
        raise ValueError("need L >= mu")
    if gamma_noniid < 0 or init_distance_sq < 0:
        raise ValueError("gamma_noniid and init_distance_sq must be non-negative")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    kappa = smoothness / strong_convexity
    gamma = max(8.0 * kappa, float(local_epochs))
    coeff = 2.0 * kappa / (gamma + rounds - 1.0)
    inner = (
        12.0 * smoothness * gamma_noniid / strong_convexity
        + strong_convexity * gamma / 2.0 * init_distance_sq
    )
    return coeff * inner


def ring_gradient_norm_bound(num_devices_traversed: int, grad_bound_sq: float) -> float:
    """Lemma 5.1: ``||grad F~_i||^2 <= (|Omega_i| - 1) G^2`` (|Omega_i| >= 2)."""
    if num_devices_traversed < 1:
        raise ValueError("a model traverses at least one device")
    if grad_bound_sq < 0:
        raise ValueError("grad_bound_sq must be non-negative")
    return max(num_devices_traversed - 1, 1) * grad_bound_sq


def fedavg_theory_lr(
    smoothness: float, strong_convexity: float, local_epochs: int = 1
) -> InverseTimeLR:
    """The schedule of Theorem 5.1: ``eta_t = 2 / (mu (gamma + t))``."""
    if smoothness <= 0 or strong_convexity <= 0:
        raise ValueError("smoothness and strong_convexity must be positive")
    kappa = smoothness / strong_convexity
    gamma = max(8.0 * kappa, float(local_epochs))
    return InverseTimeLR(numerator=2.0 / strong_convexity, offset=gamma)
