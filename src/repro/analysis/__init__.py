"""Analysis tools: the paper's Non-IID divergence metric (Eq. 4), the
Theorem 5.1 convergence bound, and method-comparison sweep helpers."""

from repro.analysis.convergence import (
    fedavg_theory_lr,
    gamma_heterogeneity,
    ring_gradient_norm_bound,
    theorem51_bound,
)
from repro.analysis.divergence import (
    empirical_divergence_proxy,
    label_divergence,
    per_device_divergence,
)
from repro.analysis.comparison import compare_methods, format_comparison, table1_cells

__all__ = [
    "format_comparison",
    "label_divergence",
    "per_device_divergence",
    "empirical_divergence_proxy",
    "gamma_heterogeneity",
    "theorem51_bound",
    "ring_gradient_norm_bound",
    "fedavg_theory_lr",
    "compare_methods",
    "table1_cells",
]
