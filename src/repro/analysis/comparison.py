"""Method-comparison sweeps: run several algorithms on one shared setup.

Feeds Table 1 and every figure bench: same dataset, same partition, same
heterogeneity draw, same model init — only the algorithm differs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.experiments import ExperimentSpec
from repro.simulation.results import RunResult
from repro.utils.tables import format_table

__all__ = ["compare_methods", "table1_cells", "format_comparison"]


def compare_methods(
    spec: ExperimentSpec,
    methods: Sequence[str] | None = None,
    method_kwargs: dict[str, dict] | None = None,
    workers: int = 1,
    cache_dir: str | Path | None = None,
) -> dict[str, RunResult]:
    """Run each method on the identical experiment; returns name -> result.

    ``spec.seed`` fixes the dataset, the partition, the heterogeneity draw
    and the model init across methods, so differences are algorithmic.

    Thin wrapper over :class:`repro.campaign.Campaign`: ``workers`` fans
    the methods out to a process pool and ``cache_dir`` memoises each run
    on disk, so repeated comparisons (e.g. bench re-runs) are free.
    """
    from repro.campaign import Campaign, sweep

    methods = list(methods) if methods is not None else [
        "fedhisyn", "fedavg", "fedprox", "fedat", "scaffold", "tafedavg", "tfedavg",
    ]
    base = spec.with_method(methods[0]) if methods else spec
    specs = sweep(base, {"method": methods}, method_kwargs=method_kwargs)
    campaign_result = Campaign(specs, cache_dir=cache_dir).run(workers=workers)
    return {e.spec.method: e.result for e in campaign_result}


def table1_cells(results: dict[str, RunResult], target: float) -> dict[str, str]:
    """Render each method's Table 1 cell: "relative-cost(final-acc%)"."""
    return {name: res.table_cell(target) for name, res in results.items()}


def format_comparison(
    results: dict[str, RunResult], target: float, title: str = ""
) -> str:
    """Tabulate cost-to-target / final / best accuracy for each method."""
    rows = []
    for name, res in sorted(results.items()):
        cost = res.cost_to_target(target)
        rows.append(
            [
                name,
                "X" if cost is None else f"{cost:.1f}",
                f"{res.final_accuracy * 100:.2f}%",
                f"{res.best_accuracy * 100:.2f}%",
            ]
        )
    return format_table(
        ["method", f"cost@{target:.0%}", "final acc", "best acc"], rows, title=title
    )
