"""FedHiSyn reproduction (ICPP 2022) — hierarchical synchronous federated
learning for resource and data heterogeneity, built entirely on NumPy.

Quick start
-----------
>>> from repro import ExperimentSpec, run_experiment
>>> spec = ExperimentSpec(method="fedhisyn", dataset="mnist_like",
...                       num_devices=10, rounds=5)
>>> result = run_experiment(spec)          # doctest: +SKIP
>>> result.final_accuracy                  # doctest: +SKIP

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.core` — FedHiSyn itself (clustering, rings, aggregation,
  Algorithm 1) and the shared server scaffolding.
- :mod:`repro.baselines` — FedAvg, TFedAvg, TAFedAvg, FedProx, FedAT,
  SCAFFOLD, plus the event-driven async pair FedAsync and FedBuff.
- :mod:`repro.nn` — pure-NumPy neural networks (the paper's MLP and CNN).
- :mod:`repro.datasets` — synthetic dataset generators + partitioners.
- :mod:`repro.device` — device model, heterogeneity, link delays.
- :mod:`repro.env` — pluggable environments: network latency/bandwidth,
  message loss, device availability, named presets (``ideal`` … ``wan``).
- :mod:`repro.compression` — update codecs (top-k sparsification with
  error feedback, QSGD quantization, delta encoding) on the channel API,
  with exact on-wire byte accounting.
- :mod:`repro.simulation` — the discrete-event scheduler (virtual clock
  + event queue) every method runs on, ring engine, transmission
  metering, time-to-accuracy histories.
- :mod:`repro.analysis` — Eq. 4 divergence, Theorem 5.1 bound, sweeps.
- :mod:`repro.experiments` — one-config experiment assembly.
- :mod:`repro.campaign` — sweep expansion, parallel cached campaigns,
  seed aggregation.

Methods self-register via :func:`repro.core.registry.register_method`;
``METHODS`` is a live view over that registry.
"""

from repro.campaign import Campaign, CampaignResult, sweep
from repro.compression import UpdateCodec, available_codecs, make_codec, register_codec
from repro.core.fedhisyn import FedHiSynConfig, FedHiSynServer
from repro.core.registry import register_method
from repro.env import Environment, make_environment, register_environment
from repro.experiments import ExperimentSpec, METHODS, build_experiment, run_experiment
from repro.simulation.results import RunResult
from repro.simulation.scheduler import Scheduler

__version__ = "1.3.0"

__all__ = [
    "FedHiSynServer",
    "FedHiSynConfig",
    "ExperimentSpec",
    "build_experiment",
    "run_experiment",
    "RunResult",
    "Scheduler",
    "METHODS",
    "register_method",
    "Environment",
    "make_environment",
    "register_environment",
    "UpdateCodec",
    "make_codec",
    "register_codec",
    "available_codecs",
    "sweep",
    "Campaign",
    "CampaignResult",
    "__version__",
]
